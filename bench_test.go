package cmvrp

// One benchmark per reproduced thesis artifact E1..E10 (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the recorded outputs), plus
// ablation benchmarks for the design choices DESIGN.md calls out. Each
// bench drives the same code path as cmd/experiments, so `go test -bench=.`
// regenerates the published evidence.

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/baseline"
	"repro/internal/demand"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/lpchar"
	"repro/internal/offline"
	"repro/internal/online"
)

func benchTable(b *testing.B, build func() (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := build()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkE1SquareScaling regenerates Example 1 / Fig 2.1(a).
func BenchmarkE1SquareScaling(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E1Square([]int{4, 16, 64, 256}, 32)
	})
}

// BenchmarkE2LineScaling regenerates Example 2 / Fig 2.1(b)+2.2.
func BenchmarkE2LineScaling(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E2Line([]int64{8, 32, 128, 512}, 256)
	})
}

// BenchmarkE3PointScaling regenerates Example 3 / Fig 2.1(c)+2.3.
func BenchmarkE3PointScaling(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E3Point([]int64{64, 1024, 16384, 262144})
	})
}

// BenchmarkE4LPDuality regenerates the Lemma 2.2.1-2.2.3 verification.
func BenchmarkE4LPDuality(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E4Duality(10, 2008, 1)
	})
}

// BenchmarkE5ApproxQuality regenerates the Theorem 1.4.1 / Algorithm 1
// approximation measurement.
func BenchmarkE5ApproxQuality(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E5ApproxQuality(32, 800, 2008, 1)
	})
}

// BenchmarkE6Alg1Runtime times Algorithm 1 directly at several arena sizes
// (the Section 2.3 linear-time claim): ns/op should scale with n^2.
func BenchmarkE6Alg1Runtime(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		b.Run(sizeName(n), func(b *testing.B) {
			arena := grid.MustNew(n, n)
			rng := rand.New(rand.NewSource(2008))
			inner, err := grid.NewBox(2, grid.P(n/4, n/4), grid.P(3*n/4-1, 3*n/4-1))
			if err != nil {
				b.Fatal(err)
			}
			m, err := demand.Uniform(rng, inner, int64(n)*int64(n))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := offline.Algorithm1(m, arena); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveOffline times the full public offline pipeline —
// characterize, estimate, construct, verify — which since the warm-start LP
// core densifies the demand exactly once and characterizes once.
func BenchmarkSolveOffline(b *testing.B) {
	arena := grid.MustNew(64, 64)
	rng := rand.New(rand.NewSource(2008))
	inner, err := grid.NewBox(2, grid.P(16, 16), grid.P(47, 47))
	if err != nil {
		b.Fatal(err)
	}
	m, err := demand.Uniform(rng, inner, 3000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveOffline(m, arena); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7OnlineVsOffline regenerates the Theorem 1.4.2 measurement.
func BenchmarkE7OnlineVsOffline(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E7Online(8, 80, 2008, 1, 0)
	})
}

// BenchmarkE8DiffusionCost regenerates the Algorithm 2 message-complexity
// measurement.
func BenchmarkE8DiffusionCost(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E8Diffusion([]int{2, 4, 6, 8}, 2008, 0)
	})
}

// BenchmarkE9BrokenGap regenerates the Figure 4.1 gap measurement.
func BenchmarkE9BrokenGap(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E9Broken([]int{2, 4, 8, 16})
	})
}

// BenchmarkE10Transfers regenerates the Chapter 5 convoy measurement.
func BenchmarkE10Transfers(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E10Transfers([]int{128, 512, 2048}, 2500)
	})
}

// BenchmarkE11Ablations regenerates the cube-granularity and monitoring
// ablation table.
func BenchmarkE11Ablations(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E11Ablations(8, 80, 2008, 1, 0)
	})
}

// BenchmarkE12DimensionSweep regenerates the dimension-constant table
// (thesis Chapter 6's open question).
func BenchmarkE12DimensionSweep(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E12DimensionSweep(4000)
	})
}

// BenchmarkE13Robustness regenerates the failure-robustness sweep
// (Section 3.2.5 scenario 2).
func BenchmarkE13Robustness(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E13Robustness([]float64{0, 0.5, 1}, 2008, 1, 0)
	})
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationCubeGranularity compares the exact all-sizes cube sweep
// against Algorithm 1's power-of-two doubling: the doubling loses at most a
// factor 2 in omega while scanning exponentially fewer sizes.
func BenchmarkAblationCubeGranularity(b *testing.B) {
	arena := grid.MustNew(64, 64)
	rng := rand.New(rand.NewSource(2008))
	inner, err := grid.NewBox(2, grid.P(16, 16), grid.P(47, 47))
	if err != nil {
		b.Fatal(err)
	}
	m, err := demand.Clusters(rng, inner, 4, 800, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("all-sizes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lpchar.OmegaStarCubes(m, arena); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("doubling", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lpchar.OmegaStarCubesDoubling(m, arena); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMonitoring measures the heartbeat ring's message
// overhead: the same workload with and without Section 3.2.5 monitoring.
func BenchmarkAblationMonitoring(b *testing.B) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 40)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	for _, monitoring := range []bool{false, true} {
		name := "off"
		if monitoring {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := online.NewRunner(online.Options{
					Arena: arena, CubeSide: 4, Capacity: 20, Seed: 2008,
					Monitoring: monitoring,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run(seq)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatal("run failed")
				}
			}
		})
	}
}

// BenchmarkAblationGreedyVsStrategy compares the capacity search cost of
// the centralized greedy dispatcher against the thesis' distributed
// strategy on an adversarial point workload.
func BenchmarkAblationGreedyVsStrategy(b *testing.B) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.GreedyMinCapacity(seq, arena, 0.05); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("thesis-online", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := online.MinCapacity(seq, online.Options{
				Arena: arena, CubeSide: 4, Seed: 2008,
			}, 1, 0.05)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func sizeName(n int) string {
	return "n=" + strconv.Itoa(n)
}
