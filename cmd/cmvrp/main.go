// Command cmvrp solves a CMVRP instance described by a JSON demand spec:
// it computes the offline characterization omega_c, the Algorithm 1
// capacity estimate, builds and verifies a concrete vehicle schedule, and
// optionally measures the online capacity Won by simulation.
//
// Usage:
//
//	cmvrp -spec demand.json [-online] [-show] [-trace] [-seed 1] [-search gossip] [-fanout 3] [-shards S]
//
// -show renders ASCII heat maps of the demand and schedule (2-D arenas);
// -trace streams the online simulation's event log. -shards selects the
// simulator scheduler for -online/-trace runs: 0 (default) is the legacy
// scheduler, S >= 1 the sealed-round sharded scheduler whose output is
// identical for every S.
//
// The spec format:
//
//	{
//	  "arena": [64, 64],
//	  "demands": [ {"at": [32, 32], "jobs": 500}, ... ]
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/demand"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cmvrp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cmvrp", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the JSON demand spec (required)")
	onlineRun := fs.Bool("online", false, "also measure the online capacity Won")
	show := fs.Bool("show", false, "render demand and schedule heat maps (2-D only)")
	trace := fs.Bool("trace", false, "stream the online event log (implies -online)")
	seed := fs.Int64("seed", 1, "determinism seed for the online simulation")
	search := fs.String("search", "diffuse", "Phase I dissemination protocol: diffuse or gossip")
	fanout := fs.Int("fanout", 0, "gossip fanout bound (0 = full flood; requires -search gossip)")
	shards := fs.Int("shards", 0, "simulator shards: 0 = legacy scheduler, >= 1 = sealed-round scheduler")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d must be >= 0", *shards)
	}
	var protocol online.SearchProtocol
	switch *search {
	case "diffuse":
		protocol = online.SearchDiffuse
	case "gossip":
		protocol = online.SearchGossip
	default:
		return fmt.Errorf("-search must be diffuse or gossip, got %q", *search)
	}
	if *fanout != 0 && protocol != online.SearchGossip {
		return fmt.Errorf("-fanout requires -search gossip")
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	arena, m, err := demand.ParseSpec(raw)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "instance: %d-D arena, %d jobs at %d positions (max %d per position)\n",
		arena.Dim(), m.Total(), m.SupportSize(), m.Max())

	if *show && arena.Dim() == 2 {
		hm, err := render.DemandHeatmap(m, arena)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\ndemand heat map:\n%s\n", hm)
	}

	// One dense view drives the whole offline pipeline: characterize once,
	// estimate, and construct from the same characterization.
	dense, err := offline.NewDense(m, arena)
	if err != nil {
		return err
	}
	char, err := dense.OmegaC()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "omega_c (Cor 2.2.7 lower-bound characterization): %.4g (cube side %d)\n",
		char.Omega, char.Side)
	if res, err := dense.Algorithm1(); err == nil {
		fmt.Fprintf(out, "Algorithm 1 capacity estimate: %.4g (branch %s)\n", res.W, res.Branch)
	} else {
		fmt.Fprintf(out, "Algorithm 1 skipped: %v\n", err)
	}
	sched, err := dense.BuildSchedule(char)
	if err != nil {
		return err
	}
	if _, err := offline.VerifySchedule(m, sched, sched.W); err != nil {
		return fmt.Errorf("schedule failed verification: %w", err)
	}
	fmt.Fprintf(out, "verified offline schedule: W = %.4g with %d active vehicles\n",
		sched.W, len(sched.Plans))
	if *show && arena.Dim() == 2 {
		sm, err := render.ScheduleMap(sched, arena)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nschedule map:\n%s\n", sm)
	}

	if *onlineRun || *trace {
		seq, err := demand.SequenceOf(m, demand.OrderSorted, nil)
		if err != nil {
			return err
		}
		// One partition serves the trace run and every capacity-search probe.
		part, err := online.NewPartition(arena, char.Side)
		if err != nil {
			return err
		}
		if *trace {
			w := float64(4*9+2) * math.Max(char.Omega, 1)
			fmt.Fprintf(out, "\nonline event trace at W = %.4g:\n", w)
			r, err := online.NewRunner(online.Options{
				Arena: arena, CubeSide: char.Side, Partition: part,
				Capacity: w, Seed: *seed, SimShards: *shards,
				Search: protocol, GossipFanout: *fanout,
				Tracer: &online.WriterTracer{W: out},
			})
			if err != nil {
				return err
			}
			res, err := r.Run(seq)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "served %d/%d jobs, %d replacements, %d messages\n",
				res.Served, seq.Len(), res.Replacements, res.Messages)
		}
		// Pinned worker count: the parallel search's answer depends on the
		// probe grid, so a fixed pool keeps the printed Won machine-
		// independent for a given seed.
		won, err := online.MinCapacityParallel(seq, online.Options{
			Arena: arena, CubeSide: char.Side, Partition: part,
			Seed: *seed, SearchWorkers: 4, SimShards: *shards,
			Search: protocol, GossipFanout: *fanout,
		}, 1, 0.05)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "measured Won (online, sorted arrivals): %.4g (%.2fx omega_c)\n",
			won, won/math.Max(char.Omega, 1))
	}
	return nil
}
