package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSolvesSpec(t *testing.T) {
	spec := `{
		"arena": [16, 16],
		"demands": [
			{"at": [8, 8], "jobs": 120},
			{"at": [4, 4], "jobs": 30}
		]
	}`
	var out bytes.Buffer
	if err := run([]string{"-spec", writeSpec(t, spec)}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"omega_c", "Algorithm 1", "verified offline schedule", "150 jobs"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunOnlineFlag(t *testing.T) {
	spec := `{"arena": [8, 8], "demands": [{"at": [4, 4], "jobs": 40}]}`
	var out bytes.Buffer
	if err := run([]string{"-spec", writeSpec(t, spec), "-online"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "measured Won") {
		t.Errorf("missing online measurement:\n%s", out.String())
	}
}

func TestRunShowFlag(t *testing.T) {
	spec := `{"arena": [8, 8], "demands": [{"at": [4, 4], "jobs": 40}]}`
	var out bytes.Buffer
	if err := run([]string{"-spec", writeSpec(t, spec), "-show"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "demand heat map") || !strings.Contains(text, "schedule map") {
		t.Errorf("missing renders:\n%s", text)
	}
	if !strings.Contains(text, "@") {
		t.Errorf("heat map missing hotspot:\n%s", text)
	}
}

func TestRunTraceFlag(t *testing.T) {
	spec := `{"arena": [4, 4], "demands": [{"at": [2, 2], "jobs": 20}]}`
	var out bytes.Buffer
	if err := run([]string{"-spec", writeSpec(t, spec), "-trace"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "online event trace") || !strings.Contains(text, "serve") {
		t.Errorf("missing trace:\n%s", text)
	}
	if !strings.Contains(text, "measured Won") {
		t.Errorf("-trace should imply the online measurement:\n%s", text)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -spec should fail")
	}
	if err := run([]string{"-spec", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-spec", writeSpec(t, "{nope")}, &out); err == nil {
		t.Error("bad JSON should fail")
	}
	bad := `{"arena": [8, 8], "demands": [{"at": [1], "jobs": 5}]}`
	if err := run([]string{"-spec", writeSpec(t, bad)}, &out); err == nil {
		t.Error("dimension mismatch should fail")
	}
	neg := `{"arena": [8, 8], "demands": [{"at": [1, 1], "jobs": -5}]}`
	if err := run([]string{"-spec", writeSpec(t, neg)}, &out); err == nil {
		t.Error("negative jobs should fail")
	}
	noArena := `{"arena": [], "demands": []}`
	if err := run([]string{"-spec", writeSpec(t, noArena)}, &out); err == nil {
		t.Error("empty arena should fail")
	}
}
