// Command experiments regenerates every reproduction table E1..E15 (see
// DESIGN.md for the index, EXPERIMENTS.md for the recorded outputs) and
// prints them as markdown.
//
// Usage:
//
//	experiments [-quick] [-run E7] [-workers N] [-shards S]
//
// -quick shrinks instance sizes for a fast smoke run; -run selects a single
// experiment by id; -workers sets the sweep fan-out width (every table is
// byte-identical for every width — the default is pinned rather than
// runtime.NumCPU() so runs on different hosts do the same thing by default).
// -shards selects the simulator scheduler for the simulator-backed
// experiments: 0 (the default) is the legacy scheduler that produced the
// recorded EXPERIMENTS.md tables; S >= 1 is the sealed-round sharded
// scheduler, whose tables are byte-identical for every S — CI diffs
// -shards 1/2/4/8 outputs against each other as the determinism gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

// defaultSweepWorkers pins the sweep width (like E7 pins its search
// workers): not for reproducible values — those are width-independent — but
// so the shipped command behaves identically on every host by default.
const defaultSweepWorkers = 4

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink instance sizes for a fast run")
	only := fs.String("run", "", "run a single experiment id (e.g. E7)")
	workers := fs.Int("workers", defaultSweepWorkers,
		"sweep fan-out width (tables are byte-identical for every value)")
	shards := fs.Int("shards", 0,
		"simulator shards: 0 = legacy scheduler, >= 1 = sealed-round scheduler (tables are byte-identical for every value >= 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers %d must be >= 1", *workers)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d must be >= 0", *shards)
	}
	want := strings.ToUpper(strings.TrimSpace(*only))
	// Only the selected experiment is computed (-run E7 does not pay for the
	// other twelve).
	tables, err := experiments.Some(want, *quick, *workers, *shards)
	if err != nil {
		return err
	}
	if len(tables) == 0 {
		return fmt.Errorf("no experiment matches %q (valid: E1..E15)", *only)
	}
	for _, t := range tables {
		fmt.Fprintln(out, t.Markdown())
	}
	return nil
}
