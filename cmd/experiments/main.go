// Command experiments regenerates every reproduction table E1..E10 (see
// DESIGN.md for the index, EXPERIMENTS.md for the recorded outputs) and
// prints them as markdown.
//
// Usage:
//
//	experiments [-quick] [-run E7]
//
// -quick shrinks instance sizes for a fast smoke run; -run selects a single
// experiment by id.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink instance sizes for a fast run")
	only := fs.String("run", "", "run a single experiment id (e.g. E7)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tables, err := experiments.All(*quick)
	if err != nil {
		return err
	}
	want := strings.ToUpper(strings.TrimSpace(*only))
	printed := 0
	for _, t := range tables {
		if want != "" && t.ID != want {
			continue
		}
		fmt.Fprintln(out, t.Markdown())
		printed++
	}
	if printed == 0 {
		return fmt.Errorf("no experiment matches %q (valid: E1..E10)", *only)
	}
	return nil
}
