package main

import (
	"bytes"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	runErr := run(args, &buf)
	return buf.String(), runErr
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, []string{"-quick", "-run", "E9"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E9") || strings.Contains(out, "E4") {
		t.Errorf("expected only E9:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := capture(t, []string{"-quick", "-run", "E42"}); err == nil {
		t.Error("unknown experiment id should fail")
	}
}

func TestRunQuickAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-all still runs every experiment")
	}
	out, err := capture(t, []string{"-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "### E") {
		t.Fatalf("missing experiment headers:\n%s", out[:200])
	}
	if got := strings.Count(out, "### E"); got != 15 {
		t.Errorf("expected 15 experiment sections, got %d", got)
	}
}

func TestBadFlag(t *testing.T) {
	if _, err := capture(t, []string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag should fail")
	}
}

// TestWorkersFlagByteIdentical pins the command-level contract: the sweep
// experiments emit byte-identical markdown for any -workers value (E6 is
// excluded from the default comparison set because its rows are wall-clock
// measurements that vary per run regardless of width).
func TestWorkersFlagByteIdentical(t *testing.T) {
	for _, id := range []string{"E4", "E11", "E13"} {
		serial, err := capture(t, []string{"-quick", "-run", id, "-workers", "1"})
		if err != nil {
			t.Fatal(err)
		}
		wide, err := capture(t, []string{"-quick", "-run", id, "-workers", "8"})
		if err != nil {
			t.Fatal(err)
		}
		if serial != wide {
			t.Errorf("%s output differs between -workers 1 and 8:\n%s\nvs\n%s", id, serial, wide)
		}
	}
}

func TestWorkersFlagValidation(t *testing.T) {
	if _, err := capture(t, []string{"-quick", "-workers", "0"}); err == nil {
		t.Error("-workers 0 should fail")
	}
}
