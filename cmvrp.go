// Package cmvrp is the public API of this reproduction of "On A Capacitated
// Multivehicle Routing Problem" (Xiaojie Gao, Caltech Ph.D. thesis, 2008).
//
// CMVRP places one vehicle with energy capacity W at every vertex of the
// grid Z^l; moving one step and serving one job each cost one unit. The
// library answers the thesis' central question — how small can W be? — and
// ships the thesis' machinery:
//
//   - SolveOffline: the cube characterization omega_c (Corollary 2.2.7),
//     the linear-time Algorithm 1 estimate, and a constructively verified
//     vehicle schedule realizing Lemma 2.2.5's upper bound;
//   - ExactLowerBound: the exact LP (2.1) value omega* = max_T omega_T via
//     max-flow (small instances);
//   - RunOnline / MeasureWon: the decentralized Chapter 3 strategy built on
//     Dijkstra-Scholten diffusing computations, with optional monitoring
//     (Section 3.2.5) and failure injection;
//   - RunSweep: the deterministic parallel episode-sweep engine — many
//     scenarios fanned over pooled warm runners, results ordered by
//     scenario index so output never depends on the worker count;
//   - the Chapter 4 broken-vehicle bounds and the Chapter 5 energy-transfer
//     analyses, re-exported from their subpackages via thin wrappers.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction record.
package cmvrp

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/broken"
	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/lpchar"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sweep"
	"repro/internal/transfer"
)

// Core vocabulary, aliased from the implementation packages so that all
// public entry points speak the same types.
type (
	// Point is a lattice point of Z^l.
	Point = grid.Point
	// Box is an axis-aligned box of lattice points.
	Box = grid.Box
	// Arena is a finite simulation grid.
	Arena = grid.Grid
	// Demand is a job-count function over lattice points.
	Demand = demand.Map
	// Sequence is an ordered stream of unit-job arrivals (the online input).
	Sequence = demand.Sequence
	// Schedule is a verified offline vehicle plan.
	Schedule = offline.Schedule
	// OnlineOptions configures the Chapter 3 strategy. Its SimShards field
	// selects the simulator scheduler: 0 is the legacy sequential scheduler
	// (the historical golden schedules), any value >= 1 the sealed-round
	// sharded scheduler, whose results are bit-identical for every shard
	// count and which runs shards in parallel when SimShards > 1.
	OnlineOptions = online.Options
	// OnlineResult reports an online run's outcome and cost metrics.
	OnlineResult = online.Result
	// OnlinePartition is the immutable cube/pair geometry of the Chapter 3
	// strategy. Build it once per sweep with NewOnlinePartition and share it
	// across any number of runs via OnlineOptions.Partition.
	OnlinePartition = online.Partition
	// FailureModel is the pluggable failure configuration for online runs:
	// the three crash knobs plus the Byzantine keep-beaconing mode.
	FailureModel = online.FailureModel
	// VehicleClass scales one fleet class's speed/energy/capacity.
	VehicleClass = online.VehicleClass
	// Fleet makes the online fleet heterogeneous (per-vehicle classes with
	// partition-aware assignment).
	Fleet = online.Fleet
	// SearchProtocol selects the Phase I dissemination protocol.
	SearchProtocol = online.SearchProtocol
	// Longevity holds the Chapter 4 breakdown parameters p_i.
	Longevity = broken.Longevity
	// ConvoyParams configures the Section 5.2.1 transfer convoy.
	ConvoyParams = transfer.ConvoyParams
	// ConvoyResult reports the convoy's closed form and simulation check.
	ConvoyResult = transfer.ConvoyResult
)

// Transfer accounting methods (Chapter 5).
const (
	FixedCost    = transfer.FixedCost
	VariableCost = transfer.VariableCost
)

// Phase I dissemination protocols for OnlineOptions.Search.
const (
	SearchDiffuse = online.SearchDiffuse
	SearchGossip  = online.SearchGossip
)

// P builds a Point from coordinates.
func P(coords ...int) Point { return grid.P(coords...) }

// NewArena builds a finite grid with the given per-axis sizes.
func NewArena(sizes ...int) (*Arena, error) { return grid.New(sizes...) }

// NewDemand creates an empty demand function over Z^dim.
func NewDemand(dim int) *Demand { return demand.NewMap(dim) }

// Manhattan returns the L1 distance (the thesis' travel-cost metric).
func Manhattan(a, b Point) int { return grid.Manhattan(a, b) }

// Workload generators (thesis Section 2.1 examples and synthetic stress
// shapes). All are deterministic given the caller's rng.
var (
	// SquareDemand is Example 1 (Fig 2.1a): demand d at each point of an
	// a x a square.
	SquareDemand = demand.Square
	// LineDemand is Example 2 (Fig 2.1b): demand d along a line.
	LineDemand = demand.Line
	// PointDemand is Example 3 (Fig 2.1c): demand d at one point.
	PointDemand = demand.PointMass
	// UniformDemand scatters unit jobs uniformly in a box.
	UniformDemand = demand.Uniform
	// ClusterDemand scatters jobs into localized clusters.
	ClusterDemand = demand.Clusters
	// ZipfDemand spreads jobs with a heavy-tailed rank-size law.
	ZipfDemand = demand.Zipf
)

// Arrival-order policies for ToSequence.
const (
	OrderSorted     = demand.OrderSorted
	OrderShuffled   = demand.OrderShuffled
	OrderRoundRobin = demand.OrderRoundRobin
)

// ToSequence expands a demand function into an arrival sequence.
func ToSequence(m *Demand, order demand.Order, rng *rand.Rand) (*Sequence, error) {
	return demand.SequenceOf(m, order, rng)
}

// NewSequence builds a sequence from explicit arrivals.
func NewSequence(arrivals []Point) *Sequence { return demand.NewSequence(arrivals) }

// OfflineSolution is SolveOffline's answer.
type OfflineSolution struct {
	// OmegaC is the Corollary 2.2.7 cube characterization — a lower bound
	// on Woff up to the dimension constant.
	OmegaC float64
	// CubeSide is the partition granularity OmegaC certified.
	CubeSide int
	// Alg1W is the thesis Algorithm 1 capacity estimate (power-of-two
	// arenas only; 0 when the arena shape does not admit it).
	Alg1W float64
	// Schedule is a concrete, verifier-checked vehicle plan serving all
	// demand; Schedule.W is the capacity it certifies as sufficient.
	Schedule *Schedule
}

// SolveOffline runs the full offline pipeline of Chapter 2 on a demand
// function: characterize, estimate, construct, and verify. The demand is
// densified exactly once (offline.Dense): the characterization, the
// Algorithm 1 estimate, and the schedule construction all share one value
// array and summed-area table, and the schedule is built from the already-
// computed characterization instead of re-deriving it.
func SolveOffline(m *Demand, arena *Arena) (*OfflineSolution, error) {
	d, err := offline.NewDense(m, arena)
	if err != nil {
		return nil, err
	}
	char, err := d.OmegaC()
	if err != nil {
		return nil, err
	}
	sol := &OfflineSolution{OmegaC: char.Omega, CubeSide: char.Side}
	if res, err := d.Algorithm1(); err == nil {
		sol.Alg1W = res.W
	}
	sched, err := d.BuildSchedule(char)
	if err != nil {
		return nil, err
	}
	if _, err := offline.VerifySchedule(m, sched, sched.W); err != nil {
		return nil, err
	}
	sol.Schedule = sched
	return sol, nil
}

// ExactLowerBound computes omega* = max_T omega_T, the exact value of the
// thesis' self-consistent program (2.8), via max-flow. Cost grows with the
// demand's spatial spread; intended for small instances and validation.
func ExactLowerBound(m *Demand) (float64, error) {
	return lpchar.OmegaStarFlow(m)
}

// LPSolver is the reusable warm-start solver for the thesis' LP (2.1): built
// once per (demand, radius), it answers any number of FeasibleAt capacity
// probes construction-free (each probe rewrites only source capacities on
// reset residual state), and Value() runs the exact bisection on warm
// probes. Bind rebuilds it in place for a new instance, reusing all retained
// storage — keep one per worker in custom sweeps, mirroring the
// one-runner-per-worker rule of the online layer. Not safe for concurrent
// use; results are bit-identical to fresh construction per probe.
type LPSolver = lpchar.Solver

// NewLPSolver builds a warm-reusable LP (2.1) solver for (m, r).
func NewLPSolver(m *Demand, r int) (*LPSolver, error) {
	return lpchar.NewSolver(m, r)
}

// NewOnlinePartition builds the online strategy's static geometry — the cube
// decomposition, vertex pairing, and communication graph — once, so that
// repeated runs over the same arena (experiment sweeps, capacity searches)
// can share it through OnlineOptions.Partition instead of rebuilding it per
// run. The partition is immutable and safe to share across goroutines.
func NewOnlinePartition(arena *Arena, cubeSide int) (*OnlinePartition, error) {
	return online.NewPartition(arena, cubeSide)
}

// RunOnline executes the Chapter 3 decentralized strategy on an arrival
// sequence. Each call builds (or, via opts.Partition, reuses) the geometry
// and plays one episode. For many episodes, use RunSweep.
func RunOnline(seq *Sequence, opts OnlineOptions) (*OnlineResult, error) {
	r, err := online.NewRunner(opts)
	if err != nil {
		return nil, err
	}
	return r.Run(seq)
}

// SweepScenario is one cell of an episode sweep: the options and arrival
// sequence of one online run.
type SweepScenario = sweep.Scenario

// RunSweep plays one online episode per scenario on a deterministic parallel
// worker pool — the engine behind the experiments tables — and returns the
// results ordered by scenario index. Each worker owns long-lived warm
// runners keyed by geometry (arena pointer + cube side), so scenarios that
// share a geometry replay construction-free; scenarios are independent
// fixed-seed simulations, so the results are bit-for-bit identical for every
// worker count. workers <= 0 uses runtime.NumCPU(); 1 runs serially.
func RunSweep(scenarios []SweepScenario, workers int) ([]*OnlineResult, error) {
	return sweep.Episodes(sweep.Config{Workers: workers}, scenarios)
}

// MeasureWon finds the smallest capacity (within relative tol) at which the
// online strategy serves the whole sequence — the empirical Won. The
// feasibility probes are independent fixed-seed runs sharing one immutable
// partition and warm-started runners (each probe resets a long-lived runner
// instead of rebuilding the world); set opts.SearchWorkers >= 2 to race
// that many concurrently (online.MinCapacityParallel), each worker owning
// one such runner. The default is the serial bisection, whose answer
// depends only on the inputs — never on the host's core count.
// The parallel path ignores opts.Tracer: probes run concurrently and a
// shared tracer would race.
func MeasureWon(seq *Sequence, opts OnlineOptions, tol float64) (float64, error) {
	if opts.SearchWorkers > 1 {
		return online.MinCapacityParallel(seq, opts, 1, tol)
	}
	return online.MinCapacity(seq, opts, 1, tol)
}

// BrokenLowerBound computes the Theorem 4.1.1 capacity lower bound when
// vehicles break down according to the longevity parameters.
func BrokenLowerBound(m *Demand, lon Longevity) (float64, error) {
	return broken.LowerBound(m, lon)
}

// Convoy evaluates the Section 5.2.1 transfer convoy on a line and verifies
// the thesis' closed forms by step-by-step simulation.
func Convoy(p ConvoyParams) (*ConvoyResult, error) { return transfer.Convoy(p) }

// TransferLowerBound is the Theorem 5.1.1 decay bound on Wtrans-off (2-D).
func TransferLowerBound(m *Demand) (float64, error) {
	return transfer.LowerBoundSquares(m)
}

// GreedyBaseline runs the centralized nearest-available dispatcher for
// comparison with the thesis strategy.
func GreedyBaseline(seq *Sequence, arena *Arena, capacity float64) (*baseline.GreedyResult, error) {
	return baseline.Greedy(seq, arena, capacity)
}
