package cmvrp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lpchar"
	"repro/internal/offline"
)

func TestPublicOfflinePipeline(t *testing.T) {
	arena, err := NewArena(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := PointDemand(2, P(8, 8), 300)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveOffline(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OmegaC <= 0 || sol.CubeSide < 1 || sol.Schedule == nil {
		t.Fatalf("solution %+v", sol)
	}
	if sol.Schedule.W < sol.OmegaC {
		t.Errorf("schedule W %v below the lower bound %v", sol.Schedule.W, sol.OmegaC)
	}
	lb, err := ExactLowerBound(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Schedule.W < lb*(1-1e-6) {
		t.Errorf("schedule W %v below exact omega* %v", sol.Schedule.W, lb)
	}
}

// TestSolveOfflineSingleCharacterization is the regression test for the
// double-OmegaC bug: SolveOffline characterizes once and feeds that
// characterization to the schedule construction, and the result is
// identical to running each stage standalone (which is what the old
// characterize-twice pipeline did).
func TestSolveOfflineSingleCharacterization(t *testing.T) {
	arena, err := NewArena(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	m, err := UniformDemand(rng, Box{Lo: P(4, 4), Hi: P(11, 11), Dim: 2}, 400)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveOffline(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	char, err := offline.OmegaC(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OmegaC != char.Omega || sol.CubeSide != char.Side {
		t.Errorf("solution characterization (%v, %d) != standalone (%v, %d)",
			sol.OmegaC, sol.CubeSide, char.Omega, char.Side)
	}
	res, err := offline.Algorithm1(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Alg1W != res.W {
		t.Errorf("solution Alg1W %v != standalone %v", sol.Alg1W, res.W)
	}
	sched, err := offline.BuildSchedule(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.Schedule, sched) {
		t.Error("solution schedule differs from standalone BuildSchedule")
	}
	if sol.Schedule.OmegaC != sol.OmegaC || sol.Schedule.CubeSide != sol.CubeSide {
		t.Errorf("schedule characterization (%v, %d) drifted from solution (%v, %d)",
			sol.Schedule.OmegaC, sol.Schedule.CubeSide, sol.OmegaC, sol.CubeSide)
	}
}

// TestLPSolverFacade exercises the exported warm solver: probes match the
// one-shot entry points bit-for-bit.
func TestLPSolverFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := UniformDemand(rng, mustBox(t), 60)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewLPSolver(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Value()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := lpchar.FlowValue(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Errorf("LPSolver value %v != FlowValue %v", warm, cold)
	}
	if err := s.Bind(m, 3); err != nil {
		t.Fatal(err)
	}
	rebound, err := s.Value()
	if err != nil {
		t.Fatal(err)
	}
	coldR3, err := lpchar.FlowValue(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rebound != coldR3 {
		t.Errorf("rebound value %v != FlowValue %v", rebound, coldR3)
	}
}

func TestPublicOnlinePipeline(t *testing.T) {
	arena, err := NewArena(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	m, err := UniformDemand(rng, mustBox(t), 100)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveOffline(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ToSequence(m, OrderShuffled, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := 38 * math.Max(sol.OmegaC, 1)
	res, err := RunOnline(seq, OnlineOptions{
		Arena: arena, CubeSide: sol.CubeSide, Capacity: w, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("online failures: %v", res.Failures)
	}
	g, err := GreedyBaseline(seq, arena, w)
	if err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Error("greedy baseline should also succeed at the theorem capacity")
	}
}

func mustBox(t *testing.T) Box {
	t.Helper()
	return Box{Lo: P(2, 2), Hi: P(5, 5), Dim: 2}
}

func TestManhattanExport(t *testing.T) {
	if Manhattan(P(0, 0), P(3, 4)) != 7 {
		t.Error("Manhattan export broken")
	}
}

func TestBrokenAndTransferExports(t *testing.T) {
	m, err := PointDemand(2, P(0, 0), 50)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := BrokenLowerBound(m, Longevity{Default: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Error("broken lower bound should be positive")
	}
	tb, err := TransferLowerBound(m)
	if err != nil {
		t.Fatal(err)
	}
	if tb <= 0 {
		t.Error("transfer lower bound should be positive")
	}
	res, err := Convoy(ConvoyParams{
		Demands: []int64{5, 5, 5, 5}, Accounting: FixedCost, A1: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.W <= 0 || res.Slack < -1e-6 {
		t.Errorf("convoy %+v", res)
	}
}

func TestMeasureWonSmall(t *testing.T) {
	arena, err := NewArena(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewSequence([]Point{P(0, 0), P(1, 1), P(2, 2), P(3, 3)})
	won, err := MeasureWon(seq, OnlineOptions{Arena: arena, CubeSide: 2, Seed: 3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if won < 2 || won > 10 {
		t.Errorf("Won %v out of sane range for 4 spread jobs", won)
	}
}

// TestSharedPartitionAcrossRuns exercises the sweep pattern the warm-start
// work enables at the facade: build the geometry once, reuse it for both a
// direct run and a capacity search, and get the same answers as without
// sharing.
func TestSharedPartitionAcrossRuns(t *testing.T) {
	arena, err := NewArena(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewOnlinePartition(arena, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewSequence([]Point{P(0, 0), P(1, 1), P(2, 2), P(3, 3)})
	shared := OnlineOptions{Arena: arena, CubeSide: 2, Partition: part, Seed: 3}
	plain := OnlineOptions{Arena: arena, CubeSide: 2, Seed: 3}

	sharedOpts, plainOpts := shared, plain
	sharedOpts.Capacity, plainOpts.Capacity = 8, 8
	a, err := RunOnline(seq, sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnline(seq, plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != b.Served || a.Messages != b.Messages || a.MaxEnergy != b.MaxEnergy {
		t.Errorf("shared partition changed the run: %+v vs %+v", a, b)
	}

	wonShared, err := MeasureWon(seq, shared, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	wonPlain, err := MeasureWon(seq, plain, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if wonShared != wonPlain {
		t.Errorf("MeasureWon with shared partition %v != %v without", wonShared, wonPlain)
	}
}

func TestRunSweepMatchesRunOnline(t *testing.T) {
	arena, err := NewArena(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Point, 40)
	for i := range jobs {
		jobs[i] = P(4, 4)
	}
	seq := NewSequence(jobs)
	var scenarios []SweepScenario
	for seed := int64(1); seed <= 4; seed++ {
		scenarios = append(scenarios, SweepScenario{
			Opts: OnlineOptions{Arena: arena, CubeSide: 8, Capacity: 24, Seed: seed},
			Seq:  seq,
		})
	}
	// The sweep must agree with per-episode RunOnline for every worker
	// count (the pooled warm runners replay bit-for-bit like fresh ones).
	for _, workers := range []int{1, 3} {
		results, err := RunSweep(scenarios, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(scenarios) {
			t.Fatalf("got %d results", len(results))
		}
		for i, sc := range scenarios {
			solo, err := RunOnline(seq, sc.Opts)
			if err != nil {
				t.Fatal(err)
			}
			got := results[i]
			if got.Served != solo.Served || got.Messages != solo.Messages ||
				got.Replacements != solo.Replacements || got.MaxEnergy != solo.MaxEnergy {
				t.Errorf("workers=%d scenario %d: sweep %+v, solo %+v", workers, i, got, solo)
			}
		}
	}
}
