package cmvrp_test

import (
	"fmt"
	"math"

	cmvrp "repro"
)

// ExampleSolveOffline characterizes and schedules a point-demand instance
// (thesis Example 3: an earthquake site all vehicles converge on).
func ExampleSolveOffline() {
	arena, err := cmvrp.NewArena(16, 16)
	if err != nil {
		fmt.Println(err)
		return
	}
	dem, err := cmvrp.PointDemand(2, cmvrp.P(8, 8), 300)
	if err != nil {
		fmt.Println(err)
		return
	}
	sol, err := cmvrp.SolveOffline(dem, arena)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cube side %d, schedule feasible within capacity %.0f\n",
		sol.CubeSide, sol.Schedule.W)
	// Output: cube side 4, schedule feasible within capacity 54
}

// ExampleRunOnline replays jobs through the Chapter 3 distributed strategy
// at the Theorem 1.4.2 capacity.
func ExampleRunOnline() {
	arena, err := cmvrp.NewArena(8, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	dem, err := cmvrp.PointDemand(2, cmvrp.P(4, 4), 60)
	if err != nil {
		fmt.Println(err)
		return
	}
	sol, err := cmvrp.SolveOffline(dem, arena)
	if err != nil {
		fmt.Println(err)
		return
	}
	seq, err := cmvrp.ToSequence(dem, cmvrp.OrderSorted, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := cmvrp.RunOnline(seq, cmvrp.OnlineOptions{
		Arena:    arena,
		CubeSide: sol.CubeSide,
		Capacity: 38 * math.Max(sol.OmegaC, 1),
		Seed:     1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("served %d/60, all jobs ok: %v\n", res.Served, res.OK())
	// Output: served 60/60, all jobs ok: true
}

// ExampleConvoy evaluates the Chapter 5 transfer convoy on a pipeline whose
// far end concentrates all the demand.
func ExampleConvoy() {
	demands := make([]int64, 100)
	demands[99] = 1000
	res, err := cmvrp.Convoy(cmvrp.ConvoyParams{
		Demands:    demands,
		Accounting: cmvrp.FixedCost,
		A1:         1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("per-vehicle charge %.2f covers 1000 units of demand (avg 10.00)\n", res.W)
	// Output: per-vehicle charge 13.95 covers 1000 units of demand (avg 10.00)
}

// ExampleRunSweep fans a seed-grid of episodes over the deterministic sweep
// engine: results come back ordered by scenario index and are identical for
// any worker count.
func ExampleRunSweep() {
	arena, err := cmvrp.NewArena(8, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	dem, err := cmvrp.PointDemand(2, cmvrp.P(4, 4), 60)
	if err != nil {
		fmt.Println(err)
		return
	}
	seq, err := cmvrp.ToSequence(dem, cmvrp.OrderSorted, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	var scenarios []cmvrp.SweepScenario
	for seed := int64(1); seed <= 3; seed++ {
		scenarios = append(scenarios, cmvrp.SweepScenario{
			Opts: cmvrp.OnlineOptions{Arena: arena, CubeSide: 8, Capacity: 24, Seed: seed},
			Seq:  seq,
		})
	}
	results, err := cmvrp.RunSweep(scenarios, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, res := range results {
		fmt.Printf("seed %d: served %d/60, replacements %d\n",
			scenarios[i].Opts.Seed, res.Served, res.Replacements)
	}
	// Output:
	// seed 1: served 60/60, replacements 2
	// seed 2: served 60/60, replacements 2
	// seed 3: served 60/60, replacements 2
}
