// Convoy: thesis Chapter 5 — inter-vehicle energy transfers. A chain of
// sensor relays along a pipeline must funnel energy to an inspection site at
// the far end. Without transfers, only vehicles within travel range can
// contribute and the required per-vehicle charge scales as sqrt(d). With
// transfers and unbounded tanks, one vehicle sweeps the line, consolidates
// everyone's energy, and delivers it — needing only about 2 + d/N per
// vehicle (Section 5.2.1), under either transfer-accounting model.
package main

import (
	"fmt"
	"log"

	cmvrp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const totalDemand = 2500
	fmt.Println("inspection site demands", totalDemand, "units at the end of an N-relay pipeline")
	fmt.Println()

	// No-transfer reference: the thesis' omega* for the same concentration.
	dem, err := cmvrp.PointDemand(1, cmvrp.P(0), totalDemand)
	if err != nil {
		return err
	}
	omega, err := cmvrp.ExactLowerBound(dem)
	if err != nil {
		return err
	}
	fmt.Printf("no transfers: every vehicle needs W = %.1f (omega*, Thm 1.4.1 in 1-D)\n\n", omega)

	fmt.Println("   N    fixed-cost W   variable-cost W   avg demand   gain vs no-transfer")
	for _, n := range []int{128, 512, 2048} {
		demands := make([]int64, n)
		demands[n-1] = totalDemand
		var ws [2]float64
		for i, acct := range []cmvrp.ConvoyParams{
			{Demands: demands, Accounting: cmvrp.FixedCost, A1: 1},
			{Demands: demands, Accounting: cmvrp.VariableCost, A2: 0.01},
		} {
			res, err := cmvrp.Convoy(acct)
			if err != nil {
				return err
			}
			if res.Slack < -1e-6 {
				return fmt.Errorf("convoy infeasible at N=%d", n)
			}
			ws[i] = res.W
		}
		avg := float64(totalDemand) / float64(n)
		fmt.Printf("%5d   %12.2f   %15.2f   %10.2f   %12.1fx\n",
			n, ws[0], ws[1], avg, omega/ws[0])
	}

	fmt.Println("\nwith tanks capped at the initial charge (C = W), Theorem 5.1.1's decay")
	dem2, err := cmvrp.PointDemand(2, cmvrp.P(0, 0), totalDemand)
	if err != nil {
		return err
	}
	bound, err := cmvrp.TransferLowerBound(dem2)
	if err != nil {
		return err
	}
	omega2, err := cmvrp.ExactLowerBound(dem2)
	if err != nil {
		return err
	}
	fmt.Printf("bound keeps Wtrans = %.2f — same order as the no-transfer omega* = %.2f:\n", bound, omega2)
	fmt.Println("transfers alone buy at most a constant; the convoy's win comes from big tanks.")
	return nil
}
