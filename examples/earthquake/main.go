// Earthquake: thesis Example 3 (Fig 2.1c) plus Chapter 4 — all demand
// erupts at a single point (an earthquake site every sensor must converge
// on), and a blast radius of broken vehicles separates the site from the
// healthy fleet. The example shows the cube-root capacity law of the
// healthy case and the Figure 4.1 breakdown gap: once vehicles can break,
// the LP lower bound stops being achievable and the true requirement grows
// quadratically.
package main

import (
	"fmt"
	"log"
	"math"

	cmvrp "repro"
	"repro/internal/broken"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	arena, err := cmvrp.NewArena(64, 64)
	if err != nil {
		return err
	}
	// Healthy case: capacity follows the cube-root law W3 ~ (d/4)^(1/3).
	fmt.Println("healthy fleet (Example 3):")
	fmt.Println("  jobs    W3=(d/4)^(1/3)   omega_c   schedule W")
	for _, d := range []int64{64, 512, 4096} {
		dem, err := cmvrp.PointDemand(2, cmvrp.P(32, 32), d)
		if err != nil {
			return err
		}
		sol, err := cmvrp.SolveOffline(dem, arena)
		if err != nil {
			return err
		}
		fmt.Printf("  %5d   %14.2f   %7.2f   %10.2f\n",
			d, math.Cbrt(float64(d)/4), sol.OmegaC, sol.Schedule.W)
	}

	// Broken fleet: the Figure 4.1 scenario. The LP bound stays 2*r1 while
	// the lone healthy vehicle must shuttle, needing ~4*r1^2.
	fmt.Println("\nbroken fleet (Figure 4.1): lone healthy vehicle between two sites")
	fmt.Println("  r1    LP bound (Thm 4.1.1)   true requirement   gap")
	for _, r1 := range []int{4, 8, 16} {
		f, err := broken.NewFig41(r1, 8*r1)
		if err != nil {
			return err
		}
		lp, err := f.LPBound()
		if err != nil {
			return err
		}
		truth := f.TrueRequirement()
		fmt.Printf("  %2d    %20.1f   %16.1f   %4.1fx\n", r1, lp, truth, truth/lp)
	}
	fmt.Println("\nthe gap grows ~linearly in r1: arrival order matters once vehicles break (Ch 4)")
	return nil
}
