// Highway: thesis Example 2 (Fig 2.1b) as an application — mobile sensors
// monitoring traffic flow along a highway. Demand is uniform along a line;
// the thesis predicts the required capacity scales as sqrt(d) (W2 solves
// W(2W+1) = d) because a widening band of vehicles around the road can
// contribute. The example sweeps the traffic intensity and compares the
// measured offline schedule against the prediction, then runs one online
// replay.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	cmvrp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	arena, err := cmvrp.NewArena(64, 64)
	if err != nil {
		return err
	}
	fmt.Println("traffic   W2=root of W(2W+1)=d   omega_c   schedule W")
	for _, d := range []int64{8, 32, 128} {
		dem, err := cmvrp.LineDemand(cmvrp.P(8, 32), 48, d)
		if err != nil {
			return err
		}
		sol, err := cmvrp.SolveOffline(dem, arena)
		if err != nil {
			return err
		}
		w2 := math.Sqrt(float64(d) / 2) // asymptotic root of W(2W+1)=d
		fmt.Printf("%7d   %20.2f   %7.2f   %10.2f\n", d, w2, sol.OmegaC, sol.Schedule.W)
	}

	// Online replay at the heaviest traffic level.
	dem, err := cmvrp.LineDemand(cmvrp.P(8, 32), 48, 128)
	if err != nil {
		return err
	}
	sol, err := cmvrp.SolveOffline(dem, arena)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(3))
	seq, err := cmvrp.ToSequence(dem, cmvrp.OrderShuffled, rng)
	if err != nil {
		return err
	}
	won, err := cmvrp.MeasureWon(seq, cmvrp.OnlineOptions{
		Arena: arena, CubeSide: sol.CubeSide, Seed: 3,
	}, 0.05)
	if err != nil {
		return err
	}
	fmt.Printf("\nonline: measured Won = %.1f (%.1fx omega_c; theorem allows %dx)\n",
		won, won/math.Max(sol.OmegaC, 1), 4*9+2)
	return nil
}
