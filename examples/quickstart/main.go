// Quickstart: the smallest end-to-end CMVRP session. Build a demand
// function, characterize the minimal vehicle capacity offline, construct a
// verified schedule, then replay the same jobs online through the
// decentralized Chapter 3 strategy.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	cmvrp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 32x32 arena: one vehicle at every cell.
	arena, err := cmvrp.NewArena(32, 32)
	if err != nil {
		return err
	}

	// 600 jobs scattered uniformly in the arena's interior.
	rng := rand.New(rand.NewSource(7))
	inner := cmvrp.Box{Lo: cmvrp.P(8, 8), Hi: cmvrp.P(23, 23), Dim: 2}
	dem, err := cmvrp.UniformDemand(rng, inner, 600)
	if err != nil {
		return err
	}

	// Offline: how much energy must each vehicle carry?
	sol, err := cmvrp.SolveOffline(dem, arena)
	if err != nil {
		return err
	}
	fmt.Printf("omega_c lower-bound characterization: %.2f\n", sol.OmegaC)
	fmt.Printf("Algorithm 1 estimate:                 %.2f\n", sol.Alg1W)
	fmt.Printf("verified schedule capacity:           %.2f (%d vehicles active)\n",
		sol.Schedule.W, len(sol.Schedule.Plans))

	// Online: same jobs arriving one at a time, served by the distributed
	// strategy at the Theorem 1.4.2 capacity.
	seq, err := cmvrp.ToSequence(dem, cmvrp.OrderShuffled, rng)
	if err != nil {
		return err
	}
	w := (4*9 + 2) * math.Max(sol.OmegaC, 1)
	res, err := cmvrp.RunOnline(seq, cmvrp.OnlineOptions{
		Arena:    arena,
		CubeSide: sol.CubeSide,
		Capacity: w,
		Seed:     7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("online at W=%.1f: served %d/%d jobs, %d replacements, %d messages\n",
		w, res.Served, seq.Len(), res.Replacements, res.Messages)
	if !res.OK() {
		return fmt.Errorf("online run failed: %v", res.Failures[0])
	}
	fmt.Printf("peak per-vehicle energy used: %.1f (%.1f%% of W)\n",
		res.MaxEnergy, 100*res.MaxEnergy/w)
	return nil
}
