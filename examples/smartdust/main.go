// Smartdust: the thesis' motivating scenario (Section 1.2). A field of
// mobile micro-sensors monitors an area; sensing events arrive in localized
// bursts (clusters), and the network must keep serving them as individual
// sensors drain — robustness through replacement, the property the thesis
// highlights over static Smart Dust. The example also injects failures:
// some sensors die outright and some fail to call for help, exercising the
// Section 3.2.5 monitoring ring.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	cmvrp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	arena, err := cmvrp.NewArena(24, 24)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))

	// Three event bursts (e.g. seismic activity at three sites).
	field := cmvrp.Box{Lo: cmvrp.P(6, 6), Hi: cmvrp.P(17, 17), Dim: 2}
	dem, err := cmvrp.ClusterDemand(rng, field, 3, 120, 2)
	if err != nil {
		return err
	}
	sol, err := cmvrp.SolveOffline(dem, arena)
	if err != nil {
		return err
	}
	seq, err := cmvrp.ToSequence(dem, cmvrp.OrderShuffled, rng)
	if err != nil {
		return err
	}
	w := (4*9 + 2) * math.Max(sol.OmegaC, 1)

	// Failure injection: two sensors die mid-run; every sensor in one burst
	// region is too damaged to initiate its own replacement search.
	dead := map[cmvrp.Point]int{
		cmvrp.P(8, 8):   seq.Len() / 3,
		cmvrp.P(14, 14): seq.Len() / 2,
	}
	failInit := map[cmvrp.Point]bool{}
	for x := 6; x <= 11; x++ {
		for y := 6; y <= 11; y++ {
			failInit[cmvrp.P(x, y)] = true
		}
	}

	res, err := cmvrp.RunOnline(seq, cmvrp.OnlineOptions{
		Arena:             arena,
		CubeSide:          sol.CubeSide,
		Capacity:          w,
		Seed:              42,
		Monitoring:        true,
		DeadBeforeArrival: dead,
		FailInitiate:      failInit,
	})
	if err != nil {
		return err
	}
	fmt.Printf("sensor field %dx%d, %d events in 3 bursts\n", 24, 24, seq.Len())
	fmt.Printf("capacity W = %.1f (omega_c %.2f, cube side %d)\n", w, sol.OmegaC, sol.CubeSide)
	fmt.Printf("served %d/%d events despite 2 dead sensors and a no-initiate region\n",
		res.Served, seq.Len())
	fmt.Printf("replacements: %d (of which %d monitor-initiated rescues)\n",
		res.Replacements, res.MonitorRescues)
	fmt.Printf("protocol messages: %d\n", res.Messages)
	// With monitoring, only events arriving in the one-round detection gap
	// of a dead sensor can be lost.
	if len(res.Failures) > 2 {
		return fmt.Errorf("too many lost events: %v", res.Failures)
	}
	fmt.Printf("lost events (dead-sensor detection gap): %d\n", len(res.Failures))
	return nil
}
