// Package baseline provides comparison strategies for CMVRP: a centralized
// greedy nearest-vehicle dispatcher (the natural heuristic a practitioner
// would try first) and a no-movement strawman. The thesis' online strategy
// is compared against these in experiment E7's ablation: greedy needs
// capacity that can exceed the thesis strategy's by more than a constant on
// adversarial workloads, because it drains the vehicles nearest a hot spot
// before recruiting farther ones evenly.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/grid"
)

// GreedyResult reports a greedy run's outcome.
type GreedyResult struct {
	Served    int64
	Failed    int64
	MaxEnergy float64
}

// OK reports whether every job was served.
func (r *GreedyResult) OK() bool { return r.Failed == 0 }

// Greedy simulates the centralized nearest-available dispatcher: each
// arrival is served by the vehicle (one per arena cell initially) whose
// current position is closest among those with enough remaining energy to
// walk there and serve; the vehicle remains at the job site. Ties break by
// arena index for determinism.
func Greedy(seq *demand.Sequence, arena *grid.Grid, capacity float64) (*GreedyResult, error) {
	if arena == nil {
		return nil, errors.New("baseline: arena is required")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("baseline: capacity %v must be positive", capacity)
	}
	type veh struct {
		pos  grid.Point
		used float64
	}
	vehicles := make([]veh, arena.Len())
	for idx := int64(0); idx < arena.Len(); idx++ {
		vehicles[idx] = veh{pos: arena.PointAt(idx)}
	}
	res := &GreedyResult{}
	for i := 0; i < seq.Len(); i++ {
		pos := seq.At(i)
		if !arena.Contains(pos) {
			return nil, fmt.Errorf("baseline: arrival %v outside arena", pos)
		}
		best := -1
		bestDist := math.MaxInt64
		for vi := range vehicles {
			v := &vehicles[vi]
			d := grid.Manhattan(v.pos, pos)
			if float64(d)+1 > capacity-v.used {
				continue
			}
			if d < bestDist {
				bestDist, best = d, vi
			}
		}
		if best < 0 {
			res.Failed++
			continue
		}
		v := &vehicles[best]
		v.used += float64(bestDist) + 1
		v.pos = pos
		res.Served++
		if v.used > res.MaxEnergy {
			res.MaxEnergy = v.used
		}
	}
	return res, nil
}

// GreedyMinCapacity measures the smallest capacity (within relative tol) for
// which Greedy serves the whole sequence.
func GreedyMinCapacity(seq *demand.Sequence, arena *grid.Grid, tol float64) (float64, error) {
	run := func(w float64) (bool, error) {
		r, err := Greedy(seq, arena, w)
		if err != nil {
			return false, err
		}
		return r.OK(), nil
	}
	lo, hi := 1.0, 2.0
	for {
		ok, err := run(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		hi *= 2
		if hi > 1e12 {
			return 0, errors.New("baseline: no feasible greedy capacity below 1e12")
		}
	}
	for hi-lo > tol*math.Max(1, hi) {
		mid := (lo + hi) / 2
		ok, err := run(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// LocalOnly returns the capacity required when vehicles cannot move at all:
// exactly the maximum demand D (thesis Property 2.3.2's regime). The gap
// between this and Woff quantifies the value of mobility.
func LocalOnly(m *demand.Map) float64 {
	return float64(m.Max())
}
