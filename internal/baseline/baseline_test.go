package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

func TestGreedyValidation(t *testing.T) {
	seq := demand.NewSequence([]grid.Point{grid.P(0, 0)})
	if _, err := Greedy(seq, nil, 5); err == nil {
		t.Error("nil arena should fail")
	}
	if _, err := Greedy(seq, grid.MustNew(2, 2), 0); err == nil {
		t.Error("zero capacity should fail")
	}
	out := demand.NewSequence([]grid.Point{grid.P(9, 9)})
	if _, err := Greedy(out, grid.MustNew(2, 2), 5); err == nil {
		t.Error("out-of-arena arrival should fail")
	}
}

func TestGreedyServesLocalJobFirst(t *testing.T) {
	arena := grid.MustNew(3, 3)
	seq := demand.NewSequence([]grid.Point{grid.P(1, 1)})
	res, err := Greedy(seq, arena, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.MaxEnergy != 1 {
		t.Fatalf("result %+v", res)
	}
}

func TestGreedyExhaustsAndRecruitsNeighbors(t *testing.T) {
	arena := grid.MustNew(3, 3)
	jobs := make([]grid.Point, 12)
	for i := range jobs {
		jobs[i] = grid.P(1, 1)
	}
	res, err := Greedy(demand.NewSequence(jobs), arena, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Center vehicle serves 4 (energy 4), then 4 neighbors at distance 1
	// serve 2 more each at cost 2 (walk 1 + serve 1, then serve 1 more each
	// after relocating)... capacity 4 allows walk+3 serves.
	if !res.OK() {
		t.Fatalf("failed %d of 12", res.Failed)
	}
	if res.MaxEnergy > 4 {
		t.Errorf("max energy %v exceeds capacity", res.MaxEnergy)
	}
}

func TestGreedyReportsFailures(t *testing.T) {
	arena := grid.MustNew(2, 2)
	jobs := make([]grid.Point, 100)
	for i := range jobs {
		jobs[i] = grid.P(0, 0)
	}
	res, err := Greedy(demand.NewSequence(jobs), arena, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("100 jobs cannot fit in 4 vehicles x capacity 3")
	}
	if res.Served == 0 {
		t.Error("some jobs should be served")
	}
	if res.Served+res.Failed != 100 {
		t.Error("served + failed must equal arrivals")
	}
}

func TestGreedyMinCapacityPointDemand(t *testing.T) {
	// Point demand d on an n x n arena: greedy's requirement should be
	// within a constant of the omega ~ (d/2)^(1/3) scale.
	arena := grid.MustNew(17, 17)
	jobs := make([]grid.Point, 200)
	for i := range jobs {
		jobs[i] = grid.P(8, 8)
	}
	w, err := GreedyMinCapacity(demand.NewSequence(jobs), arena, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Cbrt(200.0 / 2)
	if w < scale/2 || w > scale*8 {
		t.Errorf("greedy min capacity %v, omega scale %v", w, scale)
	}
}

func TestGreedyDeterminism(t *testing.T) {
	arena := grid.MustNew(6, 6)
	rng := rand.New(rand.NewSource(5))
	b, err := grid.NewBox(2, grid.P(0, 0), grid.P(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	m, err := demand.Uniform(rng, b, 80)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := demand.SequenceOf(m, demand.OrderShuffled, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Greedy(seq, arena, 9)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Greedy(seq, arena, 9)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b2 {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b2)
	}
}

func TestLocalOnly(t *testing.T) {
	m, err := demand.PointMass(2, grid.P(0, 0), 42)
	if err != nil {
		t.Fatal(err)
	}
	if LocalOnly(m) != 42 {
		t.Error("local-only requirement must be max demand")
	}
}
