// Package broken reproduces thesis Chapter 4: CMVRP when vehicles may break
// down. Each vehicle i has a longevity parameter p_i in [0,1] and dies after
// spending a fraction p_i of its initial energy. The package computes the
// linear-programming lower bound of Theorem 4.1.1 (supply p_i*omega within
// radius p_i*omega) and reconstructs the Figure 4.1 example showing that —
// unlike the healthy case — the LP bound is not tight: arrival *order*
// matters, and the true requirement grows quadratically while the LP bound
// stays linear.
package broken

import (
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/flow"
	"repro/internal/grid"
)

// Longevity maps positions to p_i. Positions absent from Override get
// Default. Default covers the infinitely many unlisted vehicles.
type Longevity struct {
	Default  float64
	Override map[grid.Point]float64
}

// At returns p_i for the vehicle at x.
func (l Longevity) At(x grid.Point) float64 {
	if v, ok := l.Override[x]; ok {
		return v
	}
	return l.Default
}

// Validate checks all parameters lie in [0,1].
func (l Longevity) Validate() error {
	if l.Default < 0 || l.Default > 1 {
		return fmt.Errorf("broken: default longevity %v outside [0,1]", l.Default)
	}
	for p, v := range l.Override {
		if v < 0 || v > 1 {
			return fmt.Errorf("broken: longevity %v at %v outside [0,1]", v, p)
		}
	}
	return nil
}

// feasible reports whether capacity omega satisfies LP (4.1): every vehicle
// i supplies at most p_i*omega within radius p_i*omega.
func feasible(m *demand.Map, lon Longevity, omega float64) (bool, error) {
	total := float64(m.Total())
	if total == 0 {
		return true, nil
	}
	if omega <= 0 {
		return false, nil
	}
	support := m.Support()
	// Suppliers: lattice points i with p_i*omega >= dist(i, some demand).
	// The candidate region is the support's neighborhoods of radius
	// maxP*omega.
	maxP := lon.Default
	for _, v := range lon.Override {
		if v > maxP {
			maxP = v
		}
	}
	maxR := int(math.Floor(maxP * omega))
	seen := make(map[grid.Point]bool)
	var suppliers []grid.Point
	for _, s := range support {
		b, err := grid.NewBox(m.Dim(), s, s)
		if err != nil {
			return false, err
		}
		for _, p := range grid.NeighborhoodPoints(b, maxR) {
			if seen[p] {
				continue
			}
			seen[p] = true
			if lon.At(p) > 0 {
				suppliers = append(suppliers, p)
			}
		}
	}
	n := 2 + len(suppliers) + len(support)
	nw, err := flow.NewNetwork(n)
	if err != nil {
		return false, err
	}
	src, sink := 0, n-1
	for i, p := range suppliers {
		if _, err := nw.AddEdge(src, 1+i, lon.At(p)*omega); err != nil {
			return false, err
		}
	}
	for j, q := range support {
		dj := 1 + len(suppliers) + j
		if _, err := nw.AddEdge(dj, sink, float64(m.At(q))); err != nil {
			return false, err
		}
		for i, p := range suppliers {
			if float64(grid.Manhattan(p, q)) <= lon.At(p)*omega {
				if _, err := nw.AddEdge(1+i, dj, math.Inf(1)); err != nil {
					return false, err
				}
			}
		}
	}
	val, err := nw.MaxFlow(src, sink)
	if err != nil {
		return false, err
	}
	return val >= total*(1-1e-9)-1e-9, nil
}

// LowerBound computes the Theorem 4.1.1 lower bound on Woff-b: the value of
// LP (4.1), found by binary search on omega with the flow feasibility
// oracle. The search bracket doubles from 1 until feasible.
func LowerBound(m *demand.Map, lon Longevity) (float64, error) {
	if err := lon.Validate(); err != nil {
		return 0, err
	}
	if m.Total() == 0 {
		return 0, nil
	}
	hi := 1.0
	for {
		ok, err := feasible(m, lon, hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("broken: no feasible omega below 1e12 (all longevities zero near demand?)")
		}
	}
	lo := 0.0
	for iter := 0; iter < 60 && hi-lo > 1e-9*math.Max(1, hi); iter++ {
		mid := (lo + hi) / 2
		ok, err := feasible(m, lon, mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// Fig41 is the thesis Figure 4.1 scenario: demand points i and j at mutual
// distance 2*r1 with the only usable vehicle k midway between them; all
// other vehicles within distance r2 of k are broken from the start (p=0) and
// vehicles beyond the circle (p=1) are too far to matter when r2 >> r1.
// Requests alternate i, j, i, j, ... with r1 jobs at each point.
type Fig41 struct {
	R1, R2  int
	I, J, K grid.Point
	Demand  *demand.Map
	Arrival *demand.Sequence
	Lon     Longevity
}

// NewFig41 constructs the scenario in 2-D, centered at the origin.
func NewFig41(r1, r2 int) (*Fig41, error) {
	if r1 < 1 {
		return nil, fmt.Errorf("broken: r1 %d must be >= 1", r1)
	}
	if r2 < 6*r1 {
		// The thesis needs r2 >> r1 so that healthy vehicles outside the
		// circle stay unreachable at omega ~ r1 scale; 6*r1 keeps them out
		// of reach even for the binary search's doubling overshoot.
		return nil, fmt.Errorf("broken: r2 %d must be at least 6*r1 (thesis needs r2 >> r1)", r2)
	}
	k := grid.P(0, 0)
	i := grid.P(-r1, 0)
	j := grid.P(r1, 0)
	m, seq, err := demand.Alternating(2, i, j, int64(r1))
	if err != nil {
		return nil, err
	}
	// Vehicles inside the circle of radius r2 around k are broken (p=0),
	// except k itself.
	over := make(map[grid.Point]float64)
	kb, err := grid.NewBox(2, k, k)
	if err != nil {
		return nil, err
	}
	for _, p := range grid.NeighborhoodPoints(kb, r2) {
		over[p] = 0
	}
	over[k] = 1
	return &Fig41{
		R1: r1, R2: r2, I: i, J: j, K: k,
		Demand:  m,
		Arrival: seq,
		Lon:     Longevity{Default: 1, Override: over},
	}, nil
}

// LPBound returns the Theorem 4.1.1 lower bound for the scenario. The thesis
// shows it equals 2*r1 (vehicle k ships r1 to each of i and j).
func (f *Fig41) LPBound() (float64, error) {
	return LowerBound(f.Demand, f.Lon)
}

// TrueRequirement simulates the only strategy available to vehicle k —
// walking back and forth between i and j as requests alternate — and returns
// the exact energy it needs: travel plus 2*r1 service units. The thesis
// computes the travel as r1 + (2*r1 - 1) * 2*r1, quadratic in r1 while the
// LP bound is linear: the bound is not tight once breakdowns are allowed.
func (f *Fig41) TrueRequirement() float64 {
	pos := f.K
	energy := 0.0
	for idx := 0; idx < f.Arrival.Len(); idx++ {
		target := f.Arrival.At(idx)
		energy += float64(grid.Manhattan(pos, target)) // walk
		energy++                                       // serve
		pos = target
	}
	return energy
}

// TravelFormula returns the closed-form travel distance from the thesis'
// Section 4.2 analysis: r1 + (2*r1 - 1) * 2*r1.
func (f *Fig41) TravelFormula() float64 {
	r1 := float64(f.R1)
	return r1 + (2*r1-1)*2*r1
}
