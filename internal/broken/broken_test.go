package broken

import (
	"math"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/lpchar"
)

func TestLongevityValidate(t *testing.T) {
	if err := (Longevity{Default: 1}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Longevity{Default: 1.5}).Validate(); err == nil {
		t.Error("default > 1 should fail")
	}
	bad := Longevity{Default: 1, Override: map[grid.Point]float64{grid.P(0, 0): -0.1}}
	if err := bad.Validate(); err == nil {
		t.Error("negative override should fail")
	}
}

func TestLongevityAt(t *testing.T) {
	l := Longevity{Default: 0.5, Override: map[grid.Point]float64{grid.P(1, 1): 0.9}}
	if l.At(grid.P(1, 1)) != 0.9 || l.At(grid.P(2, 2)) != 0.5 {
		t.Error("At lookup wrong")
	}
}

func TestLowerBoundReducesToHealthyLP(t *testing.T) {
	// With all p_i = 1, LP (4.1) is exactly the self-consistent program
	// (2.8), so LowerBound must agree with lpchar.OmegaStarFlow.
	m, err := demand.PointMass(2, grid.P(0, 0), 40)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := LowerBound(m, Longevity{Default: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lpchar.OmegaStarFlow(m)
	if err != nil {
		t.Fatal(err)
	}
	// Program (2.8) uses radius floor(omega); LP (4.1) with p=1 uses radius
	// omega. Both characterize the same crossing within one radius step, so
	// compare loosely.
	if healthy < want*0.7 || healthy > want*1.5 {
		t.Errorf("healthy LowerBound %v vs omega* %v", healthy, want)
	}
}

func TestLowerBoundAllBrokenFails(t *testing.T) {
	m, err := demand.PointMass(2, grid.P(0, 0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LowerBound(m, Longevity{Default: 0}); err == nil {
		t.Error("demand with all vehicles broken should be infeasible")
	}
}

func TestLowerBoundEmpty(t *testing.T) {
	if v, err := LowerBound(demand.NewMap(2), Longevity{Default: 1}); err != nil || v != 0 {
		t.Errorf("empty: %v %v", v, err)
	}
}

func TestLowerBoundMonotoneInLongevity(t *testing.T) {
	// Shrinking every p_i can only increase the required omega.
	m, err := demand.PointMass(2, grid.P(0, 0), 60)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range []float64{1, 0.5, 0.25} {
		v, err := LowerBound(m, Longevity{Default: p})
		if err != nil {
			t.Fatal(err)
		}
		if v < prev*(1-1e-9) {
			t.Fatalf("bound decreased when longevity shrank: p=%v gives %v after %v",
				p, v, prev)
		}
		prev = v
	}
}

func TestNewFig41Validation(t *testing.T) {
	if _, err := NewFig41(0, 100); err == nil {
		t.Error("r1 0 should fail")
	}
	if _, err := NewFig41(4, 8); err == nil {
		t.Error("r2 < 6*r1 should fail")
	}
}

// TestFig41GapGrowsQuadratically reproduces Section 4.2: the LP bound is
// 2*r1 while the only feasible strategy needs Theta(r1^2) energy, so the
// ratio grows linearly in r1 — the Theorem 4.1.1 bound is not tight.
func TestFig41GapGrowsQuadratically(t *testing.T) {
	var prevRatio float64
	for _, r1 := range []int{2, 4, 8, 16} {
		f, err := NewFig41(r1, 8*r1)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := f.LPBound()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lp-2*float64(r1)) > 0.01*float64(r1)+0.5 {
			t.Errorf("r1=%d: LP bound %v, thesis says 2*r1=%d", r1, lp, 2*r1)
		}
		truth := f.TrueRequirement()
		// Travel alone matches the thesis closed form; TrueRequirement adds
		// the 2*r1 service units.
		wantTravel := f.TravelFormula()
		if math.Abs(truth-(wantTravel+2*float64(r1))) > 1e-9 {
			t.Errorf("r1=%d: simulated %v, formula travel %v + serve %d",
				r1, truth, wantTravel, 2*r1)
		}
		ratio := truth / lp
		if ratio <= prevRatio {
			t.Errorf("r1=%d: gap ratio %v did not grow (prev %v)", r1, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio < 8 {
		t.Errorf("final gap ratio %v too small to demonstrate non-tightness", prevRatio)
	}
}

func TestFig41GeometryAndArrivals(t *testing.T) {
	f, err := NewFig41(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Manhattan(f.I, f.J) != 6 {
		t.Error("i and j must be 2*r1 apart")
	}
	if grid.Manhattan(f.I, f.K) != 3 || grid.Manhattan(f.J, f.K) != 3 {
		t.Error("k must be midway")
	}
	if f.Lon.At(f.K) != 1 {
		t.Error("k must be healthy")
	}
	if f.Lon.At(grid.P(1, 1)) != 0 {
		t.Error("in-circle vehicles must be broken")
	}
	if f.Lon.At(grid.P(100, 100)) != 1 {
		t.Error("outside vehicles must be healthy")
	}
	if f.Arrival.Len() != 6 {
		t.Errorf("arrivals %d, want 2*r1", f.Arrival.Len())
	}
	if f.Arrival.At(0) != f.I || f.Arrival.At(1) != f.J {
		t.Error("arrivals must alternate starting at i")
	}
}
