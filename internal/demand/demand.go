// Package demand models CMVRP workloads: a demand function d(x) over lattice
// points plus an arrival order for the online case. It also provides the
// synthetic workload generators used throughout the experiments — including
// the three worked examples of thesis Section 2.1 (square, line, point).
package demand

import (
	"fmt"
	"sort"

	"repro/internal/grid"
)

// Map is a demand function d: Z^l -> Z (jobs per position), sparse.
type Map struct {
	dim   int
	d     map[grid.Point]int64
	total int64
}

// NewMap creates an empty demand map over Z^dim.
func NewMap(dim int) *Map {
	return &Map{dim: dim, d: make(map[grid.Point]int64)}
}

// Dim returns the lattice dimension.
func (m *Map) Dim() int { return m.dim }

// Add adds n jobs at p. Negative n is rejected.
func (m *Map) Add(p grid.Point, n int64) error {
	if n < 0 {
		return fmt.Errorf("demand: negative job count %d at %v", n, p)
	}
	if n == 0 {
		return nil
	}
	m.d[p] += n
	m.total += n
	return nil
}

// At returns d(p).
func (m *Map) At(p grid.Point) int64 { return m.d[p] }

// Total returns the total number of jobs.
func (m *Map) Total() int64 { return m.total }

// Max returns the maximum demand D = max_x d(x) (thesis Section 2.3).
func (m *Map) Max() int64 {
	var best int64
	for _, v := range m.d {
		if v > best {
			best = v
		}
	}
	return best
}

// Support returns the demand positions in deterministic (sorted) order.
func (m *Map) Support() []grid.Point {
	pts := make([]grid.Point, 0, len(m.d))
	for p := range m.d {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool { return lessPoint(pts[i], pts[j]) })
	return pts
}

// SupportSize returns the number of positions with nonzero demand.
func (m *Map) SupportSize() int { return len(m.d) }

// BoundingBox returns the smallest box containing the support, or ok=false
// for an empty map.
func (m *Map) BoundingBox() (grid.Box, bool) {
	if len(m.d) == 0 {
		return grid.Box{}, false
	}
	first := true
	var lo, hi grid.Point
	for p := range m.d {
		if first {
			lo, hi = p, p
			first = false
			continue
		}
		for i := 0; i < m.dim; i++ {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
	}
	b, err := grid.NewBox(m.dim, lo, hi)
	if err != nil {
		return grid.Box{}, false
	}
	return b, true
}

// SumIn returns the total demand inside box b.
func (m *Map) SumIn(b grid.Box) int64 {
	var s int64
	for p, v := range m.d {
		if b.Contains(p) {
			s += v
		}
	}
	return s
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	c := NewMap(m.dim)
	for p, v := range m.d {
		c.d[p] = v
	}
	c.total = m.total
	return c
}

// Values renders the demand onto a finite grid as a dense slice indexed by
// g.Index, for prefix-sum machinery. Demand outside the grid is an error —
// experiments must size arenas to contain their workloads.
func (m *Map) Values(g *grid.Grid) ([]int64, error) {
	vals := make([]int64, g.Len())
	for p, v := range m.d {
		if !g.Contains(p) {
			return nil, fmt.Errorf("demand: position %v outside %dx... arena", p, g.Size(0))
		}
		vals[g.Index(p)] = v
	}
	return vals, nil
}

func lessPoint(a, b grid.Point) bool { return a.Less(b) }
