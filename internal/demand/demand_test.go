package demand

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func TestMapBasics(t *testing.T) {
	m := NewMap(2)
	if m.Dim() != 2 || m.Total() != 0 || m.Max() != 0 {
		t.Fatal("empty map invariants")
	}
	if err := m.Add(grid.P(1, 2), 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(grid.P(1, 2), 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(grid.P(0, 0), 2); err != nil {
		t.Fatal(err)
	}
	if m.At(grid.P(1, 2)) != 8 || m.Total() != 10 || m.Max() != 8 {
		t.Fatalf("At=%d Total=%d Max=%d", m.At(grid.P(1, 2)), m.Total(), m.Max())
	}
	if m.At(grid.P(9, 9)) != 0 {
		t.Error("missing point should read 0")
	}
	if err := m.Add(grid.P(0, 0), -1); err == nil {
		t.Error("negative add should fail")
	}
	if err := m.Add(grid.P(3, 3), 0); err != nil || m.SupportSize() != 2 {
		t.Error("zero add should be a no-op")
	}
}

func TestSupportSortedAndClone(t *testing.T) {
	m := NewMap(2)
	pts := []grid.Point{grid.P(3, 1), grid.P(0, 2), grid.P(3, 0), grid.P(0, 1)}
	for _, p := range pts {
		if err := m.Add(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	sup := m.Support()
	for i := 1; i < len(sup); i++ {
		if !lessPoint(sup[i-1], sup[i]) {
			t.Fatalf("support not sorted: %v", sup)
		}
	}
	c := m.Clone()
	if err := c.Add(grid.P(9, 9), 7); err != nil {
		t.Fatal(err)
	}
	if m.At(grid.P(9, 9)) != 0 || m.Total() != 4 {
		t.Error("clone mutation leaked into original")
	}
}

func TestBoundingBox(t *testing.T) {
	m := NewMap(2)
	if _, ok := m.BoundingBox(); ok {
		t.Error("empty map should have no bbox")
	}
	for _, p := range []grid.Point{grid.P(2, 5), grid.P(-1, 3), grid.P(4, 4)} {
		if err := m.Add(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	b, ok := m.BoundingBox()
	if !ok || b.Lo != grid.P(-1, 3) || b.Hi != grid.P(4, 5) {
		t.Fatalf("bbox %v..%v ok=%v", b.Lo, b.Hi, ok)
	}
}

func TestSumIn(t *testing.T) {
	m, err := Square(grid.P(0, 0), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := grid.NewBox(2, grid.P(1, 1), grid.P(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SumIn(inner); got != 8 {
		t.Errorf("SumIn inner = %d, want 8", got)
	}
	if got := m.SumIn(m.mustBBox(t)); got != m.Total() {
		t.Errorf("SumIn bbox = %d, want %d", got, m.Total())
	}
}

func (m *Map) mustBBox(t *testing.T) grid.Box {
	t.Helper()
	b, ok := m.BoundingBox()
	if !ok {
		t.Fatal("no bbox")
	}
	return b
}

func TestValues(t *testing.T) {
	g := grid.MustNew(4, 4)
	m := NewMap(2)
	if err := m.Add(grid.P(1, 2), 7); err != nil {
		t.Fatal(err)
	}
	vals, err := m.Values(g)
	if err != nil {
		t.Fatal(err)
	}
	if vals[g.Index(grid.P(1, 2))] != 7 {
		t.Error("value not placed")
	}
	if err := m.Add(grid.P(10, 10), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Values(g); err == nil {
		t.Error("out-of-arena demand should fail")
	}
}

func TestGenerators(t *testing.T) {
	t.Run("square", func(t *testing.T) {
		m, err := Square(grid.P(2, 3), 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if m.Total() != 9*4 || m.SupportSize() != 9 || m.At(grid.P(4, 5)) != 4 {
			t.Errorf("square: total=%d support=%d", m.Total(), m.SupportSize())
		}
		if _, err := Square(grid.P(0, 0), 0, 1); err == nil {
			t.Error("side 0 should fail")
		}
	})
	t.Run("line", func(t *testing.T) {
		m, err := Line(grid.P(1, 1), 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		if m.Total() != 15 || m.At(grid.P(5, 1)) != 3 || m.At(grid.P(6, 1)) != 0 {
			t.Error("line shape wrong")
		}
		if _, err := Line(grid.P(0, 0), 0, 1); err == nil {
			t.Error("length 0 should fail")
		}
	})
	t.Run("point", func(t *testing.T) {
		m, err := PointMass(2, grid.P(7, 7), 100)
		if err != nil {
			t.Fatal(err)
		}
		if m.Total() != 100 || m.SupportSize() != 1 {
			t.Error("point mass wrong")
		}
	})
	t.Run("uniform", func(t *testing.T) {
		b, err := grid.NewBox(2, grid.P(0, 0), grid.P(9, 9))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Uniform(rand.New(rand.NewSource(1)), b, 500)
		if err != nil {
			t.Fatal(err)
		}
		if m.Total() != 500 {
			t.Errorf("uniform total %d", m.Total())
		}
		for _, p := range m.Support() {
			if !b.Contains(p) {
				t.Errorf("point %v escaped the box", p)
			}
		}
	})
	t.Run("clusters", func(t *testing.T) {
		b, err := grid.NewBox(2, grid.P(0, 0), grid.P(31, 31))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Clusters(rand.New(rand.NewSource(2)), b, 3, 100, 4)
		if err != nil {
			t.Fatal(err)
		}
		if m.Total() != 300 {
			t.Errorf("clusters total %d", m.Total())
		}
		if _, err := Clusters(rand.New(rand.NewSource(2)), b, 0, 1, 1); err == nil {
			t.Error("0 clusters should fail")
		}
		if _, err := Clusters(rand.New(rand.NewSource(2)), b, 1, 1, -1); err == nil {
			t.Error("negative spread should fail")
		}
	})
	t.Run("zipf", func(t *testing.T) {
		b, err := grid.NewBox(2, grid.P(0, 0), grid.P(15, 15))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Zipf(rand.New(rand.NewSource(3)), b, 1000, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if m.Total() != 1000 {
			t.Errorf("zipf total %d", m.Total())
		}
		if m.Max() < 50 {
			t.Errorf("zipf should have a hot spot, max=%d", m.Max())
		}
		if _, err := Zipf(rand.New(rand.NewSource(3)), b, 10, 1.0); err == nil {
			t.Error("skew <= 1 should fail")
		}
	})
	t.Run("alternating", func(t *testing.T) {
		m, seq, err := Alternating(2, grid.P(0, 0), grid.P(4, 0), 3)
		if err != nil {
			t.Fatal(err)
		}
		if m.Total() != 6 || seq.Len() != 6 {
			t.Error("alternating sizes wrong")
		}
		for i := 0; i < seq.Len(); i++ {
			want := grid.P(0, 0)
			if i%2 == 1 {
				want = grid.P(4, 0)
			}
			if seq.At(i) != want {
				t.Fatalf("arrival %d = %v", i, seq.At(i))
			}
		}
	})
}

func TestSequenceOfPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b, err := grid.NewBox(2, grid.P(0, 0), grid.P(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Uniform(rng, b, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []Order{OrderSorted, OrderShuffled, OrderRoundRobin} {
		seq, err := SequenceOf(m, order, rng)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		back, err := seq.ToMap(2)
		if err != nil {
			t.Fatal(err)
		}
		if back.Total() != m.Total() {
			t.Fatalf("%v: total %d != %d", order, back.Total(), m.Total())
		}
		for _, p := range m.Support() {
			if back.At(p) != m.At(p) {
				t.Fatalf("%v: demand at %v %d != %d", order, p, back.At(p), m.At(p))
			}
		}
	}
	if _, err := SequenceOf(m, OrderShuffled, nil); err == nil {
		t.Error("shuffled without rng should fail")
	}
	if _, err := SequenceOf(m, Order(42), rng); err == nil {
		t.Error("unknown order should fail")
	}
}

func TestRoundRobinInterleaves(t *testing.T) {
	m := NewMap(2)
	a, b := grid.P(0, 0), grid.P(5, 0)
	if err := m.Add(a, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(b, 3); err != nil {
		t.Fatal(err)
	}
	seq, err := SequenceOf(m, OrderRoundRobin, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seq.Len()-1; i++ {
		if seq.At(i) == seq.At(i+1) {
			t.Fatalf("round robin emitted same position twice in a row at %d", i)
		}
	}
}

func TestOrderString(t *testing.T) {
	for _, o := range []Order{OrderSorted, OrderShuffled, OrderRoundRobin, Order(9)} {
		if o.String() == "" {
			t.Errorf("empty string for %d", int(o))
		}
	}
}

func TestNewSequenceCopies(t *testing.T) {
	src := []grid.Point{grid.P(1, 1)}
	s := NewSequence(src)
	src[0] = grid.P(9, 9)
	if s.At(0) != grid.P(1, 1) {
		t.Error("NewSequence must copy its input")
	}
	pos := s.Positions()
	pos[0] = grid.P(8, 8)
	if s.At(0) != grid.P(1, 1) {
		t.Error("Positions must return a copy")
	}
}
