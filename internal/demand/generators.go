package demand

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
)

// Square returns the workload of thesis Example 1 (Fig 2.1a): demand d at
// every point of an a x a square whose lower corner is at `corner`.
func Square(corner grid.Point, a int, d int64) (*Map, error) {
	if a < 1 {
		return nil, fmt.Errorf("demand: square side %d must be >= 1", a)
	}
	m := NewMap(2)
	box, err := grid.Cube(2, corner, a)
	if err != nil {
		return nil, err
	}
	for _, p := range box.Points() {
		if err := m.Add(p, d); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Line returns the workload of thesis Example 2 (Fig 2.1b): demand d at
// every point of a horizontal line of length n starting at `start`. This
// models mobile vehicles monitoring traffic flow on a highway.
func Line(start grid.Point, n int, d int64) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("demand: line length %d must be >= 1", n)
	}
	m := NewMap(2)
	for i := 0; i < n; i++ {
		p := start
		p[0] += int32(i)
		if err := m.Add(p, d); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// PointMass returns the workload of thesis Example 3 (Fig 2.1c): demand d at
// the single point p. This models vehicles converging on an earthquake site.
func PointMass(dim int, p grid.Point, d int64) (*Map, error) {
	m := NewMap(dim)
	if err := m.Add(p, d); err != nil {
		return nil, err
	}
	return m, nil
}

// Uniform scatters `jobs` unit jobs uniformly at random over the box.
func Uniform(rng *rand.Rand, b grid.Box, jobs int64) (*Map, error) {
	m := NewMap(b.Dim)
	for j := int64(0); j < jobs; j++ {
		var p grid.Point
		for i := 0; i < b.Dim; i++ {
			p[i] = b.Lo[i] + int32(rng.Int63n(b.Side(i)))
		}
		if err := m.Add(p, 1); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Clusters scatters jobs into k Gaussian-ish clusters inside the box: each
// cluster has a uniformly random center and geometric radius spread. This
// models the "Smart Dust" scenario of localized sensing events.
func Clusters(rng *rand.Rand, b grid.Box, k int, jobsPerCluster int64, spread int) (*Map, error) {
	if k < 1 {
		return nil, fmt.Errorf("demand: cluster count %d must be >= 1", k)
	}
	if spread < 0 {
		return nil, fmt.Errorf("demand: spread %d must be >= 0", spread)
	}
	m := NewMap(b.Dim)
	for c := 0; c < k; c++ {
		var center grid.Point
		for i := 0; i < b.Dim; i++ {
			center[i] = b.Lo[i] + int32(rng.Int63n(b.Side(i)))
		}
		for j := int64(0); j < jobsPerCluster; j++ {
			p := center
			for i := 0; i < b.Dim; i++ {
				// Two-sided geometric jitter, clamped to the box.
				off := int32(0)
				for rng.Intn(3) != 0 && off < int32(spread) {
					off++
				}
				if rng.Intn(2) == 0 {
					off = -off
				}
				p[i] += off
				if p[i] < b.Lo[i] {
					p[i] = b.Lo[i]
				}
				if p[i] > b.Hi[i] {
					p[i] = b.Hi[i]
				}
			}
			if err := m.Add(p, 1); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// Zipf assigns total jobs across the box's points with a Zipfian rank-size
// law (skew s > 1): heavy hot spots plus a long tail, a standard stress
// shape for capacitated assignment.
func Zipf(rng *rand.Rand, b grid.Box, jobs int64, s float64) (*Map, error) {
	if s <= 1 {
		return nil, fmt.Errorf("demand: zipf skew %v must be > 1", s)
	}
	vol := b.Volume()
	if vol > 1<<20 {
		return nil, fmt.Errorf("demand: zipf box too large (%d points)", vol)
	}
	z := rand.NewZipf(rng, s, 1, uint64(vol-1))
	pts := b.Points()
	// Shuffle so rank 0 lands at a random position, not always the corner.
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	m := NewMap(b.Dim)
	for j := int64(0); j < jobs; j++ {
		if err := m.Add(pts[z.Uint64()], 1); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Alternating returns the adversarial two-point workload of thesis Figure
// 4.1: jobs arrive alternately at two points at mutual distance 2*r1, d jobs
// at each. Used by the broken-vehicle study where arrival order matters.
func Alternating(dim int, a, b grid.Point, d int64) (*Map, *Sequence, error) {
	m := NewMap(dim)
	if err := m.Add(a, d); err != nil {
		return nil, nil, err
	}
	if err := m.Add(b, d); err != nil {
		return nil, nil, err
	}
	arrivals := make([]grid.Point, 0, 2*d)
	for i := int64(0); i < d; i++ {
		arrivals = append(arrivals, a, b)
	}
	return m, &Sequence{arrivals: arrivals}, nil
}
