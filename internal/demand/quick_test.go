package demand

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

// TestQuickSequencePreservesMultiset property-checks, over randomly
// generated demand maps and every order policy, that expansion to an
// arrival sequence is demand-preserving.
func TestQuickSequencePreservesMultiset(t *testing.T) {
	f := func(seed int64, nPoints uint8, orderPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMap(2)
		for i := 0; i < int(nPoints%12)+1; i++ {
			p := grid.P(rng.Intn(8), rng.Intn(8))
			if err := m.Add(p, rng.Int63n(9)+1); err != nil {
				return false
			}
		}
		orders := []Order{OrderSorted, OrderShuffled, OrderRoundRobin}
		order := orders[int(orderPick)%len(orders)]
		seq, err := SequenceOf(m, order, rng)
		if err != nil {
			return false
		}
		back, err := seq.ToMap(2)
		if err != nil {
			return false
		}
		if back.Total() != m.Total() {
			return false
		}
		for _, p := range m.Support() {
			if back.At(p) != m.At(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundingBoxContainsSupport property-checks the bounding box
// invariant used by every solver that clips arenas.
func TestQuickBoundingBoxContainsSupport(t *testing.T) {
	f := func(seed int64, nPoints uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMap(2)
		for i := 0; i < int(nPoints%10)+1; i++ {
			p := grid.P(rng.Intn(20)-10, rng.Intn(20)-10)
			if err := m.Add(p, 1); err != nil {
				return false
			}
		}
		b, ok := m.BoundingBox()
		if !ok {
			return false
		}
		for _, p := range m.Support() {
			if !b.Contains(p) {
				return false
			}
		}
		// Minimality: every face touches at least one support point.
		touchLo0, touchHi0 := false, false
		for _, p := range m.Support() {
			if p[0] == b.Lo[0] {
				touchLo0 = true
			}
			if p[0] == b.Hi[0] {
				touchHi0 = true
			}
		}
		return touchLo0 && touchHi0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// FuzzParseSpec exercises the JSON codec against arbitrary input; it must
// never panic, and on success the round trip must preserve the instance.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"arena":[4,4],"demands":[{"at":[1,2],"jobs":3}]}`))
	f.Add([]byte(`{"arena":[2],"demands":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"arena":[0],"demands":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		arena, m, err := ParseSpec(data)
		if err != nil {
			return
		}
		out, err := EncodeSpec(arena, m)
		if err != nil {
			t.Fatalf("round trip encode failed for valid instance: %v", err)
		}
		_, m2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if m2.Total() != m.Total() {
			t.Fatalf("total changed: %d -> %d", m.Total(), m2.Total())
		}
	})
}
