package demand

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
)

// Sequence is an ordered list of unit-job arrivals x_1, x_2, ..., x_k — the
// online input of the thesis (Section 1.3). The demand map it induces is the
// multiset of its positions.
type Sequence struct {
	arrivals []grid.Point
}

// NewSequence builds a sequence from explicit arrival positions (copied).
func NewSequence(arrivals []grid.Point) *Sequence {
	cp := make([]grid.Point, len(arrivals))
	copy(cp, arrivals)
	return &Sequence{arrivals: cp}
}

// Len returns the number of arrivals k.
func (s *Sequence) Len() int { return len(s.arrivals) }

// At returns the i-th arrival position (0-based).
func (s *Sequence) At(i int) grid.Point { return s.arrivals[i] }

// Positions returns a copy of the arrival order.
func (s *Sequence) Positions() []grid.Point {
	cp := make([]grid.Point, len(s.arrivals))
	copy(cp, s.arrivals)
	return cp
}

// ToMap returns the demand function induced by the sequence.
func (s *Sequence) ToMap(dim int) (*Map, error) {
	m := NewMap(dim)
	for _, p := range s.arrivals {
		if err := m.Add(p, 1); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SequenceOf expands a demand map into an arrival sequence using the given
// order policy. The induced map of the result equals m.
func SequenceOf(m *Map, order Order, rng *rand.Rand) (*Sequence, error) {
	jobs := make([]grid.Point, 0, m.Total())
	for _, p := range m.Support() {
		for i := int64(0); i < m.At(p); i++ {
			jobs = append(jobs, p)
		}
	}
	switch order {
	case OrderSorted:
		// Support() is already sorted; expansion preserved it.
	case OrderShuffled:
		if rng == nil {
			return nil, fmt.Errorf("demand: %v order needs an rng", order)
		}
		rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	case OrderRoundRobin:
		// Interleave across positions: one job from each support point per
		// round. Adversarial for strategies that commit a vehicle to a spot.
		support := m.Support()
		remaining := make([]int64, len(support))
		for i, p := range support {
			remaining[i] = m.At(p)
		}
		jobs = jobs[:0]
		for {
			progress := false
			for i, p := range support {
				if remaining[i] > 0 {
					jobs = append(jobs, p)
					remaining[i]--
					progress = true
				}
			}
			if !progress {
				break
			}
		}
	default:
		return nil, fmt.Errorf("demand: unknown order %v", order)
	}
	return &Sequence{arrivals: jobs}, nil
}

// Order selects how a demand map is expanded into an arrival sequence.
type Order int

// Arrival order policies.
const (
	// OrderSorted emits all jobs position by position in sorted order.
	OrderSorted Order = iota + 1
	// OrderShuffled emits jobs in a uniformly random order.
	OrderShuffled
	// OrderRoundRobin alternates one job per position per round (the
	// adversarial pattern of thesis Figure 4.1 generalized).
	OrderRoundRobin
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case OrderSorted:
		return "sorted"
	case OrderShuffled:
		return "shuffled"
	case OrderRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}
