package demand

import (
	"encoding/json"
	"fmt"

	"repro/internal/grid"
)

// Spec is the JSON wire format for a CMVRP instance: an arena plus point
// demands. Used by cmd/cmvrp and anything else that persists workloads.
type Spec struct {
	// Arena holds per-axis sizes (1 to 4 axes).
	Arena []int `json:"arena"`
	// Demands lists the nonzero demand positions.
	Demands []SpecDemand `json:"demands"`
}

// SpecDemand is one demand entry.
type SpecDemand struct {
	At   []int `json:"at"`
	Jobs int64 `json:"jobs"`
}

// ParseSpec decodes a JSON instance and materializes the arena and demand
// map, validating coordinates against the arena.
func ParseSpec(data []byte) (*grid.Grid, *Map, error) {
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, nil, fmt.Errorf("demand: parse spec: %w", err)
	}
	arena, err := grid.New(spec.Arena...)
	if err != nil {
		return nil, nil, fmt.Errorf("demand: spec arena: %w", err)
	}
	m := NewMap(arena.Dim())
	for i, d := range spec.Demands {
		if len(d.At) != arena.Dim() {
			return nil, nil, fmt.Errorf("demand: spec entry %d has %d coordinates for a %d-D arena",
				i, len(d.At), arena.Dim())
		}
		p := grid.P(d.At...)
		if !arena.Contains(p) {
			return nil, nil, fmt.Errorf("demand: spec entry %d at %v outside arena", i, p)
		}
		if err := m.Add(p, d.Jobs); err != nil {
			return nil, nil, fmt.Errorf("demand: spec entry %d: %w", i, err)
		}
	}
	return arena, m, nil
}

// EncodeSpec serializes an arena and demand map back to the JSON format
// (entries in deterministic support order).
func EncodeSpec(arena *grid.Grid, m *Map) ([]byte, error) {
	if m.Dim() != arena.Dim() {
		return nil, fmt.Errorf("demand: dimension mismatch %d vs %d", m.Dim(), arena.Dim())
	}
	spec := Spec{}
	for i := 0; i < arena.Dim(); i++ {
		spec.Arena = append(spec.Arena, arena.Size(i))
	}
	for _, p := range m.Support() {
		if !arena.Contains(p) {
			return nil, fmt.Errorf("demand: position %v outside arena", p)
		}
		at := make([]int, arena.Dim())
		for i := range at {
			at[i] = p.Coord(i)
		}
		spec.Demands = append(spec.Demands, SpecDemand{At: at, Jobs: m.At(p)})
	}
	return json.MarshalIndent(spec, "", "  ")
}
