package demand

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func TestParseSpec(t *testing.T) {
	arena, m, err := ParseSpec([]byte(`{
		"arena": [8, 8],
		"demands": [{"at": [2, 3], "jobs": 5}, {"at": [2, 3], "jobs": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if arena.Dim() != 2 || arena.Size(0) != 8 {
		t.Fatalf("arena %v", arena)
	}
	if m.At(grid.P(2, 3)) != 7 {
		t.Errorf("demand %d, want 7 (entries accumulate)", m.At(grid.P(2, 3)))
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{nope`,
		"empty arena":    `{"arena": [], "demands": []}`,
		"coord mismatch": `{"arena": [8, 8], "demands": [{"at": [1], "jobs": 1}]}`,
		"outside arena":  `{"arena": [8, 8], "demands": [{"at": [9, 9], "jobs": 1}]}`,
		"negative jobs":  `{"arena": [8, 8], "demands": [{"at": [1, 1], "jobs": -1}]}`,
		"too many axes":  `{"arena": [2,2,2,2,2], "demands": []}`,
	}
	for name, spec := range cases {
		if _, _, err := ParseSpec([]byte(spec)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	arena := grid.MustNew(10, 10)
	rng := rand.New(rand.NewSource(7))
	b, err := grid.NewBox(2, grid.P(0, 0), grid.P(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Uniform(rng, b, 50)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSpec(arena, m)
	if err != nil {
		t.Fatal(err)
	}
	arena2, m2, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if arena2.Len() != arena.Len() {
		t.Error("arena size changed")
	}
	if m2.Total() != m.Total() {
		t.Fatalf("total %d != %d", m2.Total(), m.Total())
	}
	for _, p := range m.Support() {
		if m2.At(p) != m.At(p) {
			t.Fatalf("at %v: %d != %d", p, m2.At(p), m.At(p))
		}
	}
}

func TestEncodeSpecErrors(t *testing.T) {
	arena := grid.MustNew(4, 4)
	if _, err := EncodeSpec(arena, NewMap(1)); err == nil {
		t.Error("dim mismatch should fail")
	}
	m := NewMap(2)
	if err := m.Add(grid.P(99, 99), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeSpec(arena, m); err == nil {
		t.Error("out-of-arena position should fail")
	}
}
