package diffuse

import (
	"testing"

	"repro/internal/sim"
)

// benchHost is a minimal engine host for benchmarks.
type benchHost struct {
	eng       *Engine
	adj       []sim.NodeID
	candidate bool
	done      bool
}

func (h *benchHost) OnMessage(ctx *sim.Context, from sim.NodeID, msg sim.Msg) {
	if h.eng.Handle(ctx, from, msg) {
		return
	}
	if msg.Kind == kindStart {
		h.eng.StartSearch(ctx)
	}
}

// BenchmarkSearchGrid times a full Phase I sweep of a k x k distance-2 grid
// with the single candidate in the far corner — the worst case for the
// online strategy's replacement machinery.
func BenchmarkSearchGrid(b *testing.B) {
	const k = 12
	id := func(x, y int) sim.NodeID { return sim.NodeID(x*k + y) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := sim.NewNetwork(1)
		hosts := make([]*benchHost, k*k)
		for x := 0; x < k; x++ {
			for y := 0; y < k; y++ {
				var adj []sim.NodeID
				for dx := -2; dx <= 2; dx++ {
					for dy := -2; dy <= 2; dy++ {
						if dx == 0 && dy == 0 || abs(dx)+abs(dy) > 2 {
							continue
						}
						nx, ny := x+dx, y+dy
						if nx >= 0 && nx < k && ny >= 0 && ny < k {
							adj = append(adj, id(nx, ny))
						}
					}
				}
				h := &benchHost{adj: adj, candidate: x == k-1 && y == k-1}
				eng, err := New(Config{
					Neighbors:   func() []sim.NodeID { return h.adj },
					IsCandidate: func() bool { return h.candidate },
					OnComplete:  func(sim.Sender, int, bool) { h.done = true },
				})
				if err != nil {
					b.Fatal(err)
				}
				h.eng = eng
				hosts[id(x, y)] = h
				if err := net.Add(id(x, y), h); err != nil {
					b.Fatal(err)
				}
			}
		}
		net.Inject(0, startMsg())
		if err := net.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
		if !hosts[0].done {
			b.Fatal("search did not complete")
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
