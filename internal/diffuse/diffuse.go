// Package diffuse implements the Dijkstra-Scholten diffusing computation of
// thesis Section 3.1 specialized, as in Section 3.2.3 (Algorithm 2), to a
// decentralized *search*: an initiator floods query messages through its
// neighborhood graph; candidate nodes answer true; replies propagate back up
// the spanning tree built by first-query parent pointers; termination is
// detected when the initiator's outstanding-reply counter reaches zero. On
// success the child pointers from initiator to candidate form a path, along
// which Phase II (thesis Section 3.2.4) forwards an arbitrary payload.
//
// The engine is embedded in a host process (the online strategy's vehicle):
// the host routes diffusion messages into Handle and receives callbacks when
// a computation it initiated completes and when a payload reaches it as the
// found candidate.
package diffuse

import (
	"fmt"

	"repro/internal/sim"
)

// Message kinds owned by this package (range 1..7 of the sim.Msg kind
// space; 8..15 belongs to the sibling search engine in package gossip).
// Operand layout per kind:
//
//	KindQuery   — A: initiator id, B: sequence number (Phase I probe)
//	KindReply   — A: initiator id, B: sequence number, C: 1 if the subtree
//	              below the sender contains a candidate, else 0
//	KindForward — A: initiator id, B: sequence number (the computation the
//	              forward belongs to, checked against the receiver's local
//	              state exactly as the boxed implementation did), C/D: the
//	              two opaque payload words (Payload.A / Payload.B)
const (
	KindQuery uint8 = iota + 1
	KindReply
	KindForward
)

// Payload is the opaque two-word Phase II payload: the initiator encodes
// whatever it wants the found candidate to receive (the online layer packs
// a destination cell index and a pair id). It rides KindForward messages
// inline — no boxing, no pointers.
type Payload struct {
	A, B uint32
}

// State is the message-transfer state S2 of thesis Section 3.2.1.
type State int

// Message-transfer states (Figure 3.1).
const (
	// Waiting: not currently partaking in a diffusing computation.
	Waiting State = iota + 1
	// Searching: joined a computation and awaiting replies.
	Searching
	// Initiator: started the current computation and awaiting replies.
	Initiator
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Waiting:
		return "waiting"
	case Searching:
		return "searching"
	case Initiator:
		return "initiator"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config wires an Engine to its host.
type Config struct {
	// Neighbors returns the nodes to flood queries to (for the online
	// strategy: vehicles within communication range in the same cube).
	Neighbors func() []sim.NodeID
	// IsCandidate reports whether this node satisfies the search predicate
	// (for the online strategy: the vehicle is idle).
	IsCandidate func() bool
	// OnComplete fires at the initiator when its computation terminates.
	// found reports whether a candidate was located.
	OnComplete func(ctx sim.Sender, seq int, found bool)
	// OnPayload fires at the candidate when a Phase II payload arrives.
	OnPayload func(ctx sim.Sender, payload Payload)
}

// Engine holds the per-node Phase I/II protocol state (the local data of
// thesis Section 3.2.3.2: num, par, child, init).
type Engine struct {
	cfg Config

	state State
	num   int        // outstanding replies
	par   sim.NodeID // parent in the computation tree
	child sim.NodeID // first subtree that reported a candidate
	init  sim.NodeID // initiator of the computation last joined
	seq   int        // sequence number of the computation last joined

	nextSeq int // local counter for computations this node initiates
}

// New creates an engine. Neighbors and IsCandidate are required; the
// callbacks may be nil when the host never initiates / is never a candidate.
func New(cfg Config) (*Engine, error) {
	if cfg.Neighbors == nil {
		return nil, fmt.Errorf("diffuse: Neighbors is required")
	}
	if cfg.IsCandidate == nil {
		return nil, fmt.Errorf("diffuse: IsCandidate is required")
	}
	return &Engine{cfg: cfg, state: Waiting, par: sim.None, child: sim.None, init: sim.None}, nil
}

// State returns the node's current message-transfer state.
func (e *Engine) State() State { return e.state }

// Reset restores the engine to its freshly constructed state (Waiting, no
// parent/child/initiator, sequence counter at zero) without reallocating.
// A reset engine behaves bit-for-bit like one returned by New: part of the
// online layer's warm-start contract for reused runners.
func (e *Engine) Reset() {
	e.state = Waiting
	e.num = 0
	e.par = sim.None
	e.child = sim.None
	e.init = sim.None
	e.seq = 0
	e.nextSeq = 0
}

// queryMsg / replyMsg encode the Phase I wire format.
func queryMsg(init sim.NodeID, seq int) sim.Msg {
	return sim.Msg{Kind: KindQuery, A: uint32(init), B: uint32(seq)}
}

func replyMsg(init sim.NodeID, seq int, found bool) sim.Msg {
	m := sim.Msg{Kind: KindReply, A: uint32(init), B: uint32(seq)}
	if found {
		m.C = 1
	}
	return m
}

// StartSearch begins a new diffusing computation with this node as the
// initiator (thesis Algorithm 2, "when a vehicle p uses up its energy").
// It returns the computation's sequence number. If the node has no
// neighbors the computation completes immediately (found=false).
func (e *Engine) StartSearch(ctx sim.Sender) int {
	e.nextSeq++
	seq := e.nextSeq
	e.state = Initiator
	e.par = sim.None
	e.child = sim.None
	e.init = ctx.Self()
	e.seq = seq
	neigh := e.cfg.Neighbors()
	e.num = len(neigh)
	if e.num > 0 {
		// One inline query value fans out to every neighbor: each send
		// copies three words into the link's ring buffer.
		msg := queryMsg(ctx.Self(), seq)
		for _, n := range neigh {
			ctx.Send(n, msg)
		}
	}
	if e.num == 0 {
		e.state = Waiting
		if e.cfg.OnComplete != nil {
			e.cfg.OnComplete(ctx, seq, false)
		}
	}
	return seq
}

// Handle processes a message if it belongs to the diffusion protocol and
// reports whether it consumed it. Hosts call this first from OnMessage.
func (e *Engine) Handle(ctx sim.Sender, from sim.NodeID, m sim.Msg) bool {
	switch m.Kind {
	case KindQuery:
		e.onQuery(ctx, from, sim.NodeID(m.A), int(m.B))
	case KindReply:
		e.onReply(ctx, from, sim.NodeID(m.A), int(m.B), m.C != 0)
	case KindForward:
		e.onForward(ctx, m)
	default:
		return false
	}
	return true
}

func (e *Engine) onQuery(ctx sim.Sender, from, init sim.NodeID, seq int) {
	fresh := e.init != init || e.seq != seq
	if e.state != Waiting || !fresh {
		// Already part of this computation (or busy with another): tell the
		// sender its tree topology need not change.
		ctx.Send(from, replyMsg(init, seq, false))
		return
	}
	e.par = from
	e.init = init
	e.seq = seq
	e.child = sim.None
	if e.cfg.IsCandidate() {
		// An idle node answers immediately and stays waiting; it becomes
		// the leaf of the search path.
		ctx.Send(from, replyMsg(init, seq, true))
		return
	}
	e.state = Searching
	neigh := e.cfg.Neighbors()
	e.num = len(neigh)
	if e.num == 0 {
		e.state = Waiting
		ctx.Send(from, replyMsg(init, seq, false))
		return
	}
	// One query value shared by the whole re-flood (see StartSearch).
	msg := queryMsg(init, seq)
	for _, n := range neigh {
		ctx.Send(n, msg)
	}
}

func (e *Engine) onReply(ctx sim.Sender, from, init sim.NodeID, seq int, found bool) {
	if init != e.init || seq != e.seq || (e.state != Searching && e.state != Initiator) {
		// Stale reply from an abandoned computation; drop it.
		return
	}
	e.num--
	if found && e.child == sim.None {
		e.child = from
		if e.state == Searching {
			// Propagate the discovery up immediately (Algorithm 2).
			ctx.Send(e.par, replyMsg(init, seq, true))
		}
	}
	if e.num == 0 {
		wasInitiator := e.state == Initiator
		e.state = Waiting
		if wasInitiator {
			if e.cfg.OnComplete != nil {
				e.cfg.OnComplete(ctx, seq, e.child != sim.None)
			}
			return
		}
		if e.child == sim.None {
			ctx.Send(e.par, replyMsg(init, seq, false))
		}
	}
}

// ForwardPayload launches Phase II from the initiator after a successful
// search: the payload rides the child chain to the candidate.
func (e *Engine) ForwardPayload(ctx sim.Sender, seq int, payload Payload) error {
	if e.init != ctx.Self() || e.seq != seq {
		return fmt.Errorf("diffuse: node %d does not own computation seq %d", ctx.Self(), seq)
	}
	if e.child == sim.None {
		return fmt.Errorf("diffuse: computation %d found no candidate", seq)
	}
	ctx.Send(e.child, sim.Msg{
		Kind: KindForward,
		A:    uint32(ctx.Self()), B: uint32(seq),
		C: payload.A, D: payload.B,
	})
	return nil
}

func (e *Engine) onForward(ctx sim.Sender, m sim.Msg) {
	if e.init != sim.NodeID(m.A) || e.seq != int(m.B) {
		// A forward for a computation this node never joined; drop. (Cannot
		// happen under per-link FIFO, but dropping is the safe behaviour.)
		return
	}
	if e.child != sim.None {
		ctx.Send(e.child, m)
		return
	}
	if e.cfg.OnPayload != nil {
		e.cfg.OnPayload(ctx, Payload{A: m.C, B: m.D})
	}
}
