package diffuse

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// kindStart is a host-level test message (32..127 is the test range of the
// sim.Msg kind space) telling a host to initiate a search.
const kindStart uint8 = 40

func startMsg() sim.Msg { return sim.Msg{Kind: kindStart} }

// host is a minimal process wrapping an Engine over a fixed graph.
type host struct {
	id        sim.NodeID
	eng       *Engine
	adj       []sim.NodeID
	candidate bool

	completions []bool    // found flags, in completion order
	payloads    []Payload // Phase II deliveries
	// autoForward, when set, forwards autoPayload on successful search.
	autoForward bool
	autoPayload Payload
}

func newHost(t *testing.T, id sim.NodeID, adj []sim.NodeID, candidate bool) *host {
	t.Helper()
	h := &host{id: id, adj: adj, candidate: candidate}
	eng, err := New(Config{
		Neighbors:   func() []sim.NodeID { return h.adj },
		IsCandidate: func() bool { return h.candidate },
		OnComplete: func(ctx sim.Sender, seq int, found bool) {
			h.completions = append(h.completions, found)
			if found && h.autoForward {
				if err := h.eng.ForwardPayload(ctx, seq, h.autoPayload); err != nil {
					t.Errorf("forward: %v", err)
				}
			}
		},
		OnPayload: func(_ sim.Sender, payload Payload) {
			h.payloads = append(h.payloads, payload)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.eng = eng
	return h
}

func (h *host) OnMessage(ctx *sim.Context, from sim.NodeID, msg sim.Msg) {
	if h.eng.Handle(ctx, from, msg) {
		return
	}
	if msg.Kind == kindStart {
		h.eng.StartSearch(ctx)
	}
}

// buildNetwork wires hosts over an undirected adjacency list.
func buildNetwork(t *testing.T, seed int64, edges [][2]int, n int, candidates map[int]bool) (*sim.Network, []*host) {
	t.Helper()
	adj := make([][]sim.NodeID, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], sim.NodeID(e[1]))
		adj[e[1]] = append(adj[e[1]], sim.NodeID(e[0]))
	}
	net := sim.NewNetwork(seed)
	hosts := make([]*host, n)
	for i := 0; i < n; i++ {
		hosts[i] = newHost(t, sim.NodeID(i), adj[i], candidates[i])
		if err := net.Add(sim.NodeID(i), hosts[i]); err != nil {
			t.Fatal(err)
		}
	}
	return net, hosts
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{IsCandidate: func() bool { return false }}); err == nil {
		t.Error("missing Neighbors should fail")
	}
	if _, err := New(Config{Neighbors: func() []sim.NodeID { return nil }}); err == nil {
		t.Error("missing IsCandidate should fail")
	}
}

func TestSearchFindsReachableCandidate(t *testing.T) {
	// Path graph 0-1-2-3 with the only candidate at 3.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	net, hosts := buildNetwork(t, 1, edges, 4, map[int]bool{3: true})
	want := Payload{A: 1000, B: 42}
	hosts[0].autoForward = true
	hosts[0].autoPayload = want
	net.Inject(0, startMsg())
	if err := net.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].completions) != 1 || !hosts[0].completions[0] {
		t.Fatalf("initiator completions %v", hosts[0].completions)
	}
	if len(hosts[3].payloads) != 1 || hosts[3].payloads[0] != want {
		t.Fatalf("candidate payloads %v", hosts[3].payloads)
	}
	for i := 1; i <= 2; i++ {
		if len(hosts[i].payloads) != 0 {
			t.Errorf("non-candidate %d received payload", i)
		}
	}
}

func TestSearchNoCandidate(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}}
	net, hosts := buildNetwork(t, 2, edges, 3, nil)
	net.Inject(0, startMsg())
	if err := net.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].completions) != 1 || hosts[0].completions[0] {
		t.Fatalf("completions %v, want one false", hosts[0].completions)
	}
}

func TestSearchIsolatedInitiator(t *testing.T) {
	net, hosts := buildNetwork(t, 3, nil, 1, nil)
	net.Inject(0, startMsg())
	if err := net.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].completions) != 1 || hosts[0].completions[0] {
		t.Fatalf("isolated initiator completions %v", hosts[0].completions)
	}
}

func TestCandidateNotReachable(t *testing.T) {
	// Two components: 0-1 and 2-3; candidate only in the far component.
	edges := [][2]int{{0, 1}, {2, 3}}
	net, hosts := buildNetwork(t, 4, edges, 4, map[int]bool{3: true})
	net.Inject(0, startMsg())
	if err := net.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].completions) != 1 || hosts[0].completions[0] {
		t.Fatalf("unreachable candidate reported found: %v", hosts[0].completions)
	}
}

func TestRepeatedSearchesBySameInitiator(t *testing.T) {
	// The seq number lets the same initiator run fresh computations: first
	// search finds the candidate; then the candidate stops being one and a
	// second search must report not-found.
	edges := [][2]int{{0, 1}, {1, 2}}
	net, hosts := buildNetwork(t, 5, edges, 3, map[int]bool{2: true})
	net.Inject(0, startMsg())
	if err := net.Run(10_000); err != nil {
		t.Fatal(err)
	}
	hosts[2].candidate = false
	net.Inject(0, startMsg())
	if err := net.Run(10_000); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false}
	if len(hosts[0].completions) != 2 {
		t.Fatalf("completions %v", hosts[0].completions)
	}
	for i, w := range want {
		if hosts[0].completions[i] != w {
			t.Fatalf("completion %d = %v, want %v", i, hosts[0].completions[i], w)
		}
	}
}

func TestRandomGraphsAlwaysTerminateAndAreCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(15)
		var edges [][2]int
		for i := 1; i < n; i++ {
			// Random connected backbone plus extra chords.
			edges = append(edges, [2]int{rng.Intn(i), i})
		}
		for k := 0; k < n/2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		candidates := map[int]bool{}
		for i := 1; i < n; i++ {
			if rng.Intn(4) == 0 {
				candidates[i] = true
			}
		}
		net, hosts := buildNetwork(t, int64(trial), edges, n, candidates)
		hosts[0].autoForward = true
		hosts[0].autoPayload = Payload{A: uint32(trial), B: 9}
		net.Inject(0, startMsg())
		if err := net.Run(1_000_000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(hosts[0].completions) != 1 {
			t.Fatalf("trial %d: completions %v", trial, hosts[0].completions)
		}
		found := hosts[0].completions[0]
		// Graph is connected, so found must equal "any candidate exists".
		if found != (len(candidates) > 0) {
			t.Fatalf("trial %d: found=%v but candidates=%v", trial, found, candidates)
		}
		delivered := 0
		for i, h := range hosts {
			if len(h.payloads) > 0 && !candidates[i] {
				t.Fatalf("trial %d: payload at non-candidate %d", trial, i)
			}
			delivered += len(h.payloads)
		}
		if found && delivered != 1 {
			t.Fatalf("trial %d: payload delivered %d times", trial, delivered)
		}
	}
}

func TestMessageComplexityLinearInEdges(t *testing.T) {
	// Each edge carries at most a constant number of Phase I messages
	// (2 queries + 2 replies), so deliveries <= ~4*E + path forwards.
	n := 40
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i - 1, i})
	}
	net, hosts := buildNetwork(t, 9, edges, n, map[int]bool{n - 1: true})
	hosts[0].autoForward = true
	net.Inject(0, startMsg())
	if err := net.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	maxMsgs := int64(4*len(edges) + n + 1)
	if net.Delivered() > maxMsgs {
		t.Errorf("delivered %d messages, budget %d", net.Delivered(), maxMsgs)
	}
}

func TestForwardPayloadErrors(t *testing.T) {
	edges := [][2]int{{0, 1}}
	net, hosts := buildNetwork(t, 11, edges, 2, nil)
	net.Inject(0, startMsg())
	if err := net.Run(1000); err != nil {
		t.Fatal(err)
	}
	// Search failed (no candidates): forwarding must error.
	fake := &fakeSender{self: 0}
	if err := hosts[0].eng.ForwardPayload(fake, 1, Payload{A: 1}); err == nil {
		t.Error("forwarding without a candidate should fail")
	}
	if err := hosts[0].eng.ForwardPayload(fake, 99, Payload{A: 1}); err == nil {
		t.Error("forwarding an unknown seq should fail")
	}
	if err := hosts[1].eng.ForwardPayload(&fakeSender{self: 1}, 1, Payload{A: 1}); err == nil {
		t.Error("non-initiator forwarding should fail")
	}
}

type fakeSender struct {
	self sim.NodeID
	sent []sim.Msg
}

func (f *fakeSender) Self() sim.NodeID { return f.self }
func (f *fakeSender) Send(_ sim.NodeID, msg sim.Msg) {
	f.sent = append(f.sent, msg)
}

func TestStateString(t *testing.T) {
	for _, s := range []State{Waiting, Searching, Initiator, State(42)} {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
}

func TestStateTransitions(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}}
	net, hosts := buildNetwork(t, 13, edges, 3, map[int]bool{2: true})
	for _, h := range hosts {
		if h.eng.State() != Waiting {
			t.Fatalf("node %d initial state %v", h.id, h.eng.State())
		}
	}
	net.Inject(0, startMsg())
	if err := net.Run(10_000); err != nil {
		t.Fatal(err)
	}
	// After quiescence everyone is back to waiting (Figure 3.1's cycle).
	for _, h := range hosts {
		if h.eng.State() != Waiting {
			t.Errorf("node %d final state %v, want waiting", h.id, h.eng.State())
		}
	}
}

// TestEngineResetMatchesFresh pins the warm-start contract: after Reset,
// an engine (and the network it lives in) replays a search bit-for-bit
// identically to freshly constructed ones — same completion result, same
// delivered-message count, and the sequence counter starts over at 1.
func TestEngineResetMatchesFresh(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}}
	run := func(net *sim.Network, hosts []*host) (bool, int64) {
		net.Inject(0, startMsg())
		if err := net.Run(10_000); err != nil {
			t.Fatal(err)
		}
		if len(hosts[0].completions) != 1 {
			t.Fatalf("want 1 completion, got %d", len(hosts[0].completions))
		}
		return hosts[0].completions[0], net.Delivered()
	}
	net, hosts := buildNetwork(t, 11, edges, 5, map[int]bool{3: true})
	wantFound, wantMsgs := run(net, hosts)

	net2, hosts2 := buildNetwork(t, 11, edges, 5, map[int]bool{3: true})
	if f, m := run(net2, hosts2); f != wantFound || m != wantMsgs {
		t.Fatalf("fresh replay diverged: found=%v msgs=%d, want %v/%d", f, m, wantFound, wantMsgs)
	}
	for i := 0; i < 3; i++ {
		net2.Reset(11)
		for _, h := range hosts2 {
			h.eng.Reset()
			h.completions = nil
		}
		if f, m := run(net2, hosts2); f != wantFound || m != wantMsgs {
			t.Fatalf("reset replay %d diverged: found=%v msgs=%d, want %v/%d",
				i, f, m, wantFound, wantMsgs)
		}
		if hosts2[0].eng.seq != 1 {
			t.Fatalf("reset engine's first computation has seq %d, want 1", hosts2[0].eng.seq)
		}
	}
}
