package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/lpchar"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sweep"
)

// E11Ablations quantifies two design choices DESIGN.md calls out:
//
//  1. cube-size granularity — Algorithm 1 inspects only power-of-two cube
//     sizes; how much of the lower bound does that concede vs the full
//     sweep? (The answer is bounded by the doubling ratio.)
//  2. the monitoring ring — the Section 3.2.5 heartbeats cost messages even
//     when nothing fails; how many?
func E11Ablations(n int, jobs int64, seed int64, workers, shards int) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("ablations (n=%d, %d jobs)", n, jobs),
		Columns: []string{"workload", "omega cubes (all sizes)", "omega cubes (doubling)",
			"doubling/full", "msgs monitoring off", "msgs monitoring on", "overhead x"},
		Notes: "Doubling concedes at most ~2x of the cube characterization; the heartbeat ring multiplies message load even in failure-free runs.",
	}
	arena := grid.MustNew(n, n)
	// A mixed-geometry sweep: char.Side varies per workload, so a worker's
	// pool rebuilds on geometry changes and warm-resets the monitoring-
	// off/on episode pair within each scenario.
	type row struct {
		full, dbl float64
		msgs      [2]int64
	}
	names := []string{"uniform", "clusters", "point"}
	rows, err := sweep.Map(sweep.Config{Workers: workers}, names,
		func(w *sweep.Worker, name string, _ int) (row, error) {
			rng := rand.New(rand.NewSource(seed))
			m, err := workload(name, arena, rng, jobs)
			if err != nil {
				return row{}, err
			}
			// One dense view per workload: the cube omega* scans and the
			// Corollary 2.2.7 characterization share a single summed-area
			// table instead of each densifying the demand again.
			dense, err := offline.NewDense(m, arena)
			if err != nil {
				return row{}, err
			}
			ps, err := dense.Prefix()
			if err != nil {
				return row{}, err
			}
			full, err := lpchar.OmegaStarCubesPS(ps)
			if err != nil {
				return row{}, err
			}
			dbl, err := lpchar.OmegaStarCubesDoublingPS(ps)
			if err != nil {
				return row{}, err
			}
			char, err := dense.OmegaC()
			if err != nil {
				return row{}, err
			}
			seq, err := demand.SequenceOf(m, demand.OrderShuffled, rng)
			if err != nil {
				return row{}, err
			}
			wcap := float64(4*9+2) * math.Max(char.Omega, 1)
			var msgs [2]int64
			for i, monitoring := range []bool{false, true} {
				res, err := w.Episode(online.Options{
					Arena: arena, CubeSide: char.Side, Capacity: wcap,
					Seed: seed, Monitoring: monitoring, SimShards: shards,
				}, seq)
				if err != nil {
					return row{}, err
				}
				if !res.OK() {
					return row{}, fmt.Errorf("experiments: E11 %s run failed", name)
				}
				msgs[i] = res.Messages
			}
			return row{full: full, dbl: dbl, msgs: msgs}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		t.AddRow(names[i], r.full, r.dbl, r.dbl/r.full, r.msgs[0], r.msgs[1],
			float64(r.msgs[1])/math.Max(float64(r.msgs[0]), 1))
	}
	return t, nil
}

// E13Robustness sweeps the Section 3.2.5 failure scenarios: an increasing
// fraction of vehicles silently fails to initiate replacement searches upon
// exhaustion, and the served fraction is measured with the monitoring ring
// on and off. The thesis' claim: monitoring makes scenario 2 harmless.
func E13Robustness(fractions []float64, seed int64, workers, shards int) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "failure robustness (Section 3.2.5 scenario 2)",
		Columns: []string{"fail-initiate fraction", "served (monitoring off)",
			"served (monitoring on)", "rescues (on)"},
		Notes: "With the heartbeat ring every job is served regardless of how many exhausted vehicles stay silent; without it, service collapses as the fraction grows.",
	}
	const n = 6
	arena := grid.MustNew(n, n)
	// The geometry never changes across the sweep, so every scenario after a
	// worker's first warm-resets one pooled runner — ResetEpisode re-applies
	// the per-fraction FailInitiate map without rebuilding anything.
	const jobCount = 50
	type row struct {
		served  [2]int64
		rescues int64
	}
	rows, err := sweep.Map(sweep.Config{Workers: workers}, fractions,
		func(w *sweep.Worker, frac float64, _ int) (row, error) {
			if frac < 0 || frac > 1 {
				return row{}, fmt.Errorf("experiments: fraction %v outside [0,1]", frac)
			}
			rng := rand.New(rand.NewSource(seed))
			fail := map[grid.Point]bool{}
			for _, p := range arena.Bounds().Points() {
				if rng.Float64() < frac {
					fail[p] = true
				}
			}
			capacity := 14.0 // > cube diameter + serve reserve for 6x6
			hot := grid.P(2, 2)
			jobs := make([]grid.Point, jobCount)
			for i := range jobs {
				jobs[i] = hot
			}
			seq := demand.NewSequence(jobs)
			var out row
			for i, monitoring := range []bool{false, true} {
				res, err := w.Episode(online.Options{
					Arena: arena, CubeSide: n, Capacity: capacity,
					Seed: seed, Monitoring: monitoring, FailInitiate: fail,
					SimShards: shards,
				}, seq)
				if err != nil {
					return row{}, err
				}
				out.served[i] = res.Served
				if monitoring {
					out.rescues = res.MonitorRescues
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		t.AddRow(fractions[i],
			fmt.Sprintf("%d/%d", r.served[0], jobCount),
			fmt.Sprintf("%d/%d", r.served[1], jobCount),
			r.rescues)
	}
	return t, nil
}

// E12DimensionSweep probes the thesis' closing question (Chapter 6): the
// approximation constants are exponential in the dimension l — is that
// necessary? We measure the *actual* schedule-vs-omega_c ratio for the same
// point demand in l = 1, 2, 3 against the analytic 2*3^l + l.
func E12DimensionSweep(d int64) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: fmt.Sprintf("dimension sweep, point demand d=%d (thesis Ch 6 question)", d),
		Columns: []string{"l", "omega_c", "schedule W", "measured ratio",
			"analytic bound 2*3^l+l"},
		Notes: "For worst-case point demand the measured ratio tracks the exponential 2*3^l+l constant closely: the Lemma 2.2.5 construction really does pay it, which is why the thesis flags improving the l-dependence as open.",
	}
	configs := []struct {
		arena *grid.Grid
		pt    grid.Point
	}{
		{grid.MustNew(256), grid.P(128)},
		{grid.MustNew(64, 64), grid.P(32, 32)},
		{grid.MustNew(24, 24, 24), grid.P(12, 12, 12)},
	}
	for _, cfg := range configs {
		l := cfg.arena.Dim()
		m := demand.NewMap(l)
		if err := m.Add(cfg.pt, d); err != nil {
			return nil, err
		}
		char, err := offline.OmegaC(m, cfg.arena)
		if err != nil {
			return nil, err
		}
		sched, err := offline.BuildSchedule(m, cfg.arena)
		if err != nil {
			return nil, err
		}
		if _, err := offline.VerifySchedule(m, sched, sched.W); err != nil {
			return nil, fmt.Errorf("experiments: E12 l=%d schedule invalid: %w", l, err)
		}
		bound := 2*math.Pow(3, float64(l)) + float64(l)
		t.AddRow(l, char.Omega, sched.W, sched.W/math.Max(char.Omega, 1), bound)
	}
	return t, nil
}
