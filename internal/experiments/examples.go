package experiments

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/offline"
)

// E1Square regenerates thesis Example 1 / Figure 2.1(a): demand d at every
// point of an a x a square. The thesis' W1 solves W*(2W+a)^2 = d*a^2 and
// approaches d as a grows; the formal omega_T (equation 1.1 with the L1
// neighborhood) shows the same limit.
func E1Square(sides []int, d int64) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("square demand (Fig 2.1a), d=%d per point", d),
		Columns: []string{"a", "total demand", "W1 (thesis root)", "omega_T (eq 1.1)",
			"omega_T/d"},
		Notes: "Thesis: W1 solves W(2W+a)^2 = d*a^2; both W1 and omega_T approach d as a -> infinity.",
	}
	for _, a := range sides {
		if a < 1 {
			return nil, fmt.Errorf("experiments: square side %d", a)
		}
		af, df := float64(a), float64(d)
		total := df * af * af
		w1 := bisect(func(w float64) float64 {
			return w*(2*w+af)*(2*w+af) - total
		}, 0, 1, 1e-9)
		sq, err := grid.Cube(2, grid.P(0, 0), a)
		if err != nil {
			return nil, err
		}
		omega := grid.SolveOmega(sq, total)
		t.AddRow(a, int64(total), w1, omega, omega/df)
	}
	return t, nil
}

// E2Line regenerates thesis Example 2 / Figures 2.1(b), 2.2: demand d at
// every point of a long line. W2 solves W*(2W+1) = d, i.e. W2 ~ sqrt(d/2);
// the thesis' strategy gives every vehicle capacity 2*W2 and moves everyone
// within distance W2 onto the line. The last column verifies that strategy's
// energy balance exactly: vehicles at offset |y| <= W2 arrive with
// 2*W2 - |y| spare, and their pooled energy must cover d per line point.
func E2Line(ds []int64, lineLen int) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: fmt.Sprintf("line demand (Fig 2.1b), length %d", lineLen),
		Columns: []string{"d per point", "W2 (thesis root)", "omega_T (eq 1.1)",
			"omega/W2", "2*W2 strategy feasible"},
		Notes: "Thesis: W2(2W2+1) = d so W2 ~ sqrt(d/2); capacity 2*W2 suffices via the Figure 2.2 move.",
	}
	for _, d := range ds {
		df := float64(d)
		w2 := bisect(func(w float64) float64 { return w*(2*w+1) - df }, 0, 1, 1e-9)
		line, err := grid.NewBox(2, grid.P(0, 0), grid.P(lineLen-1, 0))
		if err != nil {
			return nil, err
		}
		omega := grid.SolveOmega(line, df*float64(lineLen))
		// Build the Figure 2.2 strategy as an actual schedule and run it
		// through the independent verifier.
		sched, m, err := offline.LineStrategy(grid.P(0, 1000), lineLen, d)
		feasible := err == nil
		if feasible {
			if _, err := offline.VerifySchedule(m, sched, sched.W); err != nil {
				return nil, fmt.Errorf("experiments: E2 schedule invalid: %w", err)
			}
		}
		t.AddRow(d, w2, omega, omega/w2, feasible)
	}
	return t, nil
}

// E3Point regenerates thesis Example 3 / Figures 2.1(c), 2.3: demand d at a
// single point. W3 solves W*(2W+1)^2 = d, i.e. W3 ~ (d/4)^(1/3); capacity
// 3*W3 suffices by moving the (2W3+1)^2 square of vehicles onto the point
// (each travels at most 2*W3). The last column checks that pooled energy.
func E3Point(ds []int64) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "point demand (Fig 2.1c)",
		Columns: []string{"d", "W3 (thesis root)", "omega_T (eq 1.1)",
			"omega/W3", "3*W3 strategy feasible"},
		Notes: "Thesis: W3(2W3+1)^2 = d so W3 ~ (d/4)^(1/3); capacity 3*W3 suffices via the Figure 2.3 move.",
	}
	for _, d := range ds {
		df := float64(d)
		w3 := bisect(func(w float64) float64 { return w*(2*w+1)*(2*w+1) - df }, 0, 1, 1e-9)
		pt, err := grid.NewBox(2, grid.P(0, 0), grid.P(0, 0))
		if err != nil {
			return nil, err
		}
		omega := grid.SolveOmega(pt, df)
		// Build the Figure 2.3 strategy as an actual schedule and run it
		// through the independent verifier.
		sched, m, err := offline.PointStrategy(grid.P(1000, 1000), d)
		feasible := err == nil
		if feasible {
			if _, err := offline.VerifySchedule(m, sched, sched.W); err != nil {
				return nil, fmt.Errorf("experiments: E3 schedule invalid: %w", err)
			}
		}
		t.AddRow(d, w3, omega, omega/w3, feasible)
	}
	return t, nil
}
