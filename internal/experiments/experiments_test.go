package experiments

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/grid"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", s, err)
	}
	return v
}

func TestE1SquareOmegaApproachesD(t *testing.T) {
	tbl, err := E1Square([]int{4, 64, 1024}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// omega/d in the last column must increase toward 1 as a grows.
	prev := 0.0
	for _, row := range tbl.Rows {
		r := parseF(t, row[4])
		if r <= prev || r > 1.0+1e-9 {
			t.Fatalf("omega/d sequence broken: %v after %v", r, prev)
		}
		prev = r
	}
	if prev < 0.85 {
		t.Errorf("omega/d = %v at a=1024; should approach 1", prev)
	}
}

func TestE2LineStrategyFeasibleAndSqrtScaling(t *testing.T) {
	tbl, err := E2Line([]int64{8, 32, 128, 512}, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Errorf("d=%s: 2*W2 strategy reported infeasible", row[0])
		}
	}
	// Quadrupling d should roughly double W2 (sqrt scaling).
	w2a, w2b := parseF(t, tbl.Rows[0][1]), parseF(t, tbl.Rows[1][1])
	if ratio := w2b / w2a; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("W2 scaling ratio %v, want ~2 for 4x demand", ratio)
	}
}

func TestE3PointStrategyFeasibleAndCbrtScaling(t *testing.T) {
	tbl, err := E3Point([]int64{64, 4096, 262144})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Errorf("d=%s: 3*W3 strategy reported infeasible", row[0])
		}
	}
	// 64x demand should ~4x W3 (cube-root scaling).
	w3a, w3b := parseF(t, tbl.Rows[0][1]), parseF(t, tbl.Rows[1][1])
	if ratio := w3b / w3a; ratio < 3.3 || ratio > 4.7 {
		t.Errorf("W3 scaling ratio %v, want ~4 for 64x demand", ratio)
	}
}

func TestE4AllTrialsAgree(t *testing.T) {
	tbl, err := E4Duality(10, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[7] != "true" {
			t.Errorf("trial %s: flow and subset values disagree (%s vs %s)",
				row[0], row[4], row[5])
		}
	}
}

func TestE5RatiosWithinBound(t *testing.T) {
	tbl, err := E5ApproxQuality(32, 800, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ratio := parseF(t, row[5])
		bound := parseF(t, row[6])
		if ratio > bound+4 { // +4 integer-budget slack, as in offline tests
			t.Errorf("%s: schedule ratio %v exceeds bound %v", row[0], ratio, bound)
		}
	}
}

func TestE6RoughlyLinear(t *testing.T) {
	tbl, err := E6Runtime([]int{64, 256}, 3)
	if err != nil {
		t.Fatal(err)
	}
	perCellSmall := parseF(t, tbl.Rows[0][6])
	perCellLarge := parseF(t, tbl.Rows[1][6])
	// 16x the cells should not blow up per-cell cost by more than ~6x
	// (cache effects allowed; superlinear algorithms would show 16x+).
	if perCellLarge > 6*perCellSmall+50 {
		t.Errorf("per-cell cost grew from %v to %v ns: not linear", perCellSmall, perCellLarge)
	}
	// The cold/warm column is informational wall-clock (asserting on it
	// would flake on loaded hosts); warm ≡ cold *values* are pinned by
	// offline.TestDenseSharedViewMatchesStandalone. Just check the column
	// parses.
	for _, row := range tbl.Rows {
		parseF(t, row[5])
	}
}

func TestE7WonWithinTheoremBound(t *testing.T) {
	tbl, err := E7Online(8, 80, 13, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		won := parseF(t, row[2])
		bound := parseF(t, row[4])
		if won > bound*1.05 {
			t.Errorf("%s: Won %v exceeds theorem bound %v", row[0], won, bound)
		}
	}
}

func TestE8MessagesScaleWithCube(t *testing.T) {
	tbl, err := E8Diffusion([]int{2, 6}, 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	small := parseF(t, tbl.Rows[0][7])
	large := parseF(t, tbl.Rows[1][7])
	if large <= small {
		t.Errorf("msgs/replacement should grow with cube size: %v -> %v", small, large)
	}
}

func TestE9GapGrows(t *testing.T) {
	tbl, err := E9Broken([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if parseF(t, tbl.Rows[1][4]) <= parseF(t, tbl.Rows[0][4]) {
		t.Error("gap ratio must grow with r1")
	}
}

func TestE10ConvoyGainGrowsWithN(t *testing.T) {
	tbl, err := E10Transfers([]int{128, 1024}, 2500)
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in (N, fixed), (N, variable) order; compare fixed rows.
	gainSmall := parseF(t, tbl.Rows[0][5])
	gainLarge := parseF(t, tbl.Rows[2][5])
	if gainLarge <= gainSmall {
		t.Errorf("gain should grow with N: %v -> %v", gainSmall, gainLarge)
	}
	if gainLarge <= 1 {
		t.Errorf("at N=1024 the convoy must beat no-transfer, gain %v", gainLarge)
	}
	// The C=W decay bound stays the same order as omega* regardless of N.
	omega := parseF(t, tbl.Rows[0][4])
	decay := parseF(t, tbl.Rows[0][6])
	if decay < omega/20 || decay > omega*20 {
		t.Errorf("decay bound %v not Theta(omega* %v)", decay, omega)
	}
}

func TestAllQuickRunsEverything(t *testing.T) {
	tables, err := All(true, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 15 {
		t.Fatalf("got %d tables, want 15", len(tables))
	}
	ids := map[string]bool{}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", tbl.ID)
		}
		ids[tbl.ID] = true
		md := tbl.Markdown()
		if !strings.Contains(md, tbl.Title) || !strings.Contains(md, "| --- |") {
			t.Errorf("%s: malformed markdown", tbl.ID)
		}
	}
	for i := 1; i <= 15; i++ {
		id := "E" + strconv.Itoa(i)
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestE13MonitoringServesEverything(t *testing.T) {
	tbl, err := E13Robustness([]float64{0, 1}, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[2], "50/") {
			t.Errorf("fraction %s: monitoring-on served %s, want all 50", row[0], row[2])
		}
	}
	// With every initiator failing and no monitoring, service must degrade.
	last := tbl.Rows[len(tbl.Rows)-1]
	if strings.HasPrefix(last[1], "50/") {
		t.Error("monitoring-off at fraction 1 should drop jobs")
	}
}

func TestE11DoublingWithinFactorTwo(t *testing.T) {
	tbl, err := E11Ablations(8, 80, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ratio := parseF(t, row[3])
		if ratio > 1.0+1e-9 || ratio < 0.45 {
			t.Errorf("%s: doubling/full ratio %v outside (0.45, 1]", row[0], ratio)
		}
		overhead := parseF(t, row[6])
		if overhead < 1 {
			t.Errorf("%s: monitoring overhead %v below 1", row[0], overhead)
		}
	}
}

func TestE12RatiosBelowAnalyticBound(t *testing.T) {
	tbl, err := E12DimensionSweep(4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		ratio := parseF(t, row[3])
		bound := parseF(t, row[4])
		if ratio > bound+4 {
			t.Errorf("l=%s: measured ratio %v above analytic bound %v", row[0], ratio, bound)
		}
	}
}

func TestWorkloadUnknown(t *testing.T) {
	arena := grid.MustNew(8, 8)
	if _, err := workload("nope", arena, rand.New(rand.NewSource(1)), 1); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestOmegaScaleCheck(t *testing.T) {
	if omegaScaleCheck(1000) <= 0 {
		t.Error("scale check should be positive")
	}
}

func TestBisect(t *testing.T) {
	root := bisect(func(x float64) float64 { return x*x - 9 }, 0, 1, 1e-9)
	if root < 2.999999 || root > 3.000001 {
		t.Errorf("bisect root %v", root)
	}
}

// TestSweepExperimentsDeterministicAcrossWorkerCounts pins the sweep
// rewrite's contract on every sweep-built experiment: the rendered table is
// byte-identical for workers=1 and workers=8.
func TestSweepExperimentsDeterministicAcrossWorkerCounts(t *testing.T) {
	builders := map[string]func(workers int) (*Table, error){
		"E4":  func(w int) (*Table, error) { return E4Duality(10, 7, w) },
		"E5":  func(w int) (*Table, error) { return E5ApproxQuality(16, 200, 11, w) },
		"E7":  func(w int) (*Table, error) { return E7Online(8, 80, 13, w, 0) },
		"E11": func(w int) (*Table, error) { return E11Ablations(8, 80, 3, w, 0) },
		"E13": func(w int) (*Table, error) { return E13Robustness([]float64{0, 0.5, 1}, 5, w, 0) },
		"E14": func(w int) (*Table, error) { return E14FailureModels([]float64{0, 0.25, 0.5}, 5, w, 0) },
		"E15": func(w int) (*Table, error) { return E15GossipFidelity([]int{-1, 0, 1, 2, 3}, 5, w, 0) },
	}
	for id, build := range builders {
		t.Run(id, func(t *testing.T) {
			serial, err := build(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4, 8} {
				wide, err := build(w)
				if err != nil {
					t.Fatal(err)
				}
				if serial.Markdown() != wide.Markdown() {
					t.Errorf("%s drifted between workers=1 and workers=%d:\n--- w=1\n%s\n--- w=%d\n%s",
						id, w, serial.Markdown(), w, wide.Markdown())
				}
			}
		})
	}
}

// TestSimExperimentsDeterministicAcrossShardCounts is the sealed-round
// analogue of the worker-count pin: every simulator-backed experiment
// renders a byte-identical table at SimShards 1, 2, 4, and 8 (the CI
// determinism gate runs the same comparison on the full -quick output).
// Legacy (shards=0) is a different schedule family and is NOT expected to
// match; EXPERIMENTS.md stays pinned to it via the default -shards 0.
func TestSimExperimentsDeterministicAcrossShardCounts(t *testing.T) {
	builders := map[string]func(shards int) (*Table, error){
		"E7":  func(s int) (*Table, error) { return E7Online(8, 80, 13, 1, s) },
		"E8":  func(s int) (*Table, error) { return E8Diffusion([]int{2, 6}, 17, s) },
		"E11": func(s int) (*Table, error) { return E11Ablations(8, 80, 3, 1, s) },
		"E13": func(s int) (*Table, error) { return E13Robustness([]float64{0, 0.5, 1}, 5, 1, s) },
		"E14": func(s int) (*Table, error) { return E14FailureModels([]float64{0, 0.5}, 5, 1, s) },
		"E15": func(s int) (*Table, error) { return E15GossipFidelity([]int{-1, 0, 2}, 5, 1, s) },
	}
	for id, build := range builders {
		t.Run(id, func(t *testing.T) {
			ref, err := build(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []int{2, 4, 8} {
				got, err := build(s)
				if err != nil {
					t.Fatal(err)
				}
				if ref.Markdown() != got.Markdown() {
					t.Errorf("%s drifted between shards=1 and shards=%d:\n--- s=1\n%s\n--- s=%d\n%s",
						id, s, ref.Markdown(), s, got.Markdown())
				}
			}
		})
	}
}

// TestE14ByzantineNeedsEvidence pins the E14 story at the table level: with
// half the cells dying, the crash-silent row is rescued by beacon timeouts
// while the crash-then-lie row is rescued exclusively through the evidence
// channel.
func TestE14ByzantineNeedsEvidence(t *testing.T) {
	tbl, err := E14FailureModels([]float64{0.5}, 2008, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(tbl.Rows))
	}
	// Columns: fraction, model, served, silent, evidence, replacements, ...
	silentRow, lieRow := tbl.Rows[0], tbl.Rows[1]
	if silentRow[3] == "0" || silentRow[4] != "0" {
		t.Errorf("crash-silent row %v: want silent rescues > 0, evidence = 0", silentRow)
	}
	if lieRow[3] != "0" || lieRow[4] == "0" {
		t.Errorf("crash-then-lie row %v: want silent rescues = 0, evidence > 0", lieRow)
	}
}

// TestE15FullFloodMatchesDiffuse pins the degradation guarantee at the
// table level: the fanout-0 gossip row equals the diffuse baseline row in
// every measured column.
func TestE15FullFloodMatchesDiffuse(t *testing.T) {
	tbl, err := E15GossipFidelity([]int{-1, 0}, 2008, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tbl.Rows))
	}
	for c := 1; c < len(tbl.Rows[0]); c++ {
		if tbl.Rows[0][c] != tbl.Rows[1][c] {
			t.Errorf("column %d: diffuse %q vs full flood %q",
				c, tbl.Rows[0][c], tbl.Rows[1][c])
		}
	}
}
