package experiments

import (
	"fmt"

	"repro/internal/broken"
	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/lpchar"
	"repro/internal/transfer"
)

// E9Broken regenerates the Figure 4.1 gap: with breakdowns allowed, the
// Theorem 4.1.1 LP bound (2*r1) diverges from the true requirement
// (Theta(r1^2)) because arrival order forces the lone healthy vehicle to
// shuttle between the demand points.
func E9Broken(r1s []int) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "broken vehicles: LP bound vs true requirement (Fig 4.1)",
		Columns: []string{"r1", "LP bound (Thm 4.1.1)", "true requirement",
			"travel formula r1+(2r1-1)2r1", "gap ratio"},
		Notes: "The gap ratio grows ~linearly in r1: the Chapter 4 lower bound is provably not tight.",
	}
	for _, r1 := range r1s {
		f, err := broken.NewFig41(r1, 8*r1)
		if err != nil {
			return nil, err
		}
		lp, err := f.LPBound()
		if err != nil {
			return nil, err
		}
		truth := f.TrueRequirement()
		t.AddRow(r1, lp, truth, f.TravelFormula(), truth/lp)
	}
	return t, nil
}

// E10Transfers regenerates Chapter 5 on the Section 5.2.1 one-dimensional
// setting: total demand d concentrated at the far end of an N-vertex line.
// Without transfers the required capacity is Theta(sqrt(d)) (only nearby
// vehicles can reach the hot vertex); the C=infinity convoy amortizes the
// whole line's energy, needing only ~2 + d/N — so its advantage grows
// without bound in N. The last column is the Theorem 5.1.1 decay bound for
// the C=W regime, which stays Theta(omega*): big tanks, not transfers per
// se, are what helps.
func E10Transfers(lineLens []int, d int64) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: fmt.Sprintf("inter-vehicle energy transfers (total d=%d at line end)", d),
		Columns: []string{"N", "accounting", "convoy W (C=inf)", "avg d",
			"no-transfer omega*", "convoy gain", "Thm 5.1.1 bound (C=W)"},
		Notes: "Convoy W tracks 2 + d/N while the no-transfer omega* stays ~sqrt(d/2): the C=inf gain grows with N. The C=W decay bound stays Theta(omega*).",
	}
	// The no-transfer and C=W characterizations depend only on the demand
	// concentration, not N; compute them once on the 1-D point mass (and
	// its 2-D embedding for the square decay bound).
	m1, err := demand.PointMass(1, grid.P(0), d)
	if err != nil {
		return nil, err
	}
	omegaStar, err := lpchar.OmegaStarFlow(m1)
	if err != nil {
		return nil, err
	}
	m2, err := demand.PointMass(2, grid.P(0, 0), d)
	if err != nil {
		return nil, err
	}
	decayBound, err := transfer.LowerBoundSquares(m2)
	if err != nil {
		return nil, err
	}
	for _, n := range lineLens {
		demands := make([]int64, n)
		demands[n-1] = d
		for _, acct := range []transfer.Accounting{transfer.FixedCost, transfer.VariableCost} {
			res, err := transfer.Convoy(transfer.ConvoyParams{
				Demands: demands, Accounting: acct, A1: 1, A2: 0.01,
			})
			if err != nil {
				return nil, err
			}
			if res.Slack < -1e-6 {
				return nil, fmt.Errorf("experiments: convoy infeasible at N=%d", n)
			}
			avg := float64(d) / float64(n)
			t.AddRow(n, acct.String(), res.W, avg, omegaStar,
				omegaStar/res.W, decayBound)
		}
	}
	return t, nil
}

// All runs every experiment with the default deterministic parameters used
// by EXPERIMENTS.md and returns the tables in index order. quick shrinks the
// instance sizes (used by tests; the full set runs in cmd/experiments).
// workers is the sweep width threaded through the sweep-built experiments
// (E4, E5, E7, E11, E13): every table is byte-identical for every width, so
// it only changes wall-clock (cmd/experiments pins a default). shards is
// online.Options.SimShards for every simulator-backed experiment (E7, E8,
// E11, E13, E14, E15): 0 keeps the legacy scheduler that produced the
// recorded EXPERIMENTS.md tables; any value >= 1 selects the sealed-round
// scheduler, whose tables are byte-identical for every shard count — the CI
// determinism gate diffs -shards 1/2/4/8 against each other.
func All(quick bool, workers, shards int) ([]*Table, error) {
	return Some("", quick, workers, shards)
}

// Some is All restricted to one experiment id ("" runs everything): only the
// selected experiment is computed, so cmd/experiments -run and the CI
// single-experiment smoke steps don't pay for the other twelve. Returns an
// empty slice for an unknown id.
func Some(id string, quick bool, workers, shards int) ([]*Table, error) {
	var (
		squareSides = []int{4, 16, 64, 256}
		lineDs      = []int64{8, 32, 128, 512}
		pointDs     = []int64{64, 1024, 16384, 262144}
		e4Trials    = 25
		e5N, e5Jobs = 64, int64(3000)
		e6Sizes     = []int{64, 128, 256, 512}
		e7N, e7Jobs = 16, int64(300)
		e8Sides     = []int{2, 4, 6, 8}
		e9R1s       = []int{2, 4, 8, 16, 32}
		e10Lens     = []int{128, 512, 2048}
		e10D        = int64(2500)
		e14Fracs    = []float64{0, 0.25, 0.5}
		e15Fanouts  = []int{-1, 0, 1, 2, 3}
	)
	if quick {
		squareSides = []int{4, 16}
		lineDs = []int64{8, 32}
		pointDs = []int64{64, 1024}
		e4Trials = 6
		e5N, e5Jobs = 32, 800
		e6Sizes = []int{32, 64}
		e7N, e7Jobs = 8, 80
		e8Sides = []int{2, 4}
		e9R1s = []int{2, 4}
		e10Lens = []int{128, 512}
		e14Fracs = []float64{0, 0.5}
		e15Fanouts = []int{-1, 0, 2}
	}
	const seed = 2008 // the thesis' year, for reproducibility flavor
	var tables []*Table
	for _, exp := range []struct {
		id    string
		build func() (*Table, error)
	}{
		{"E1", func() (*Table, error) { return E1Square(squareSides, 32) }},
		{"E2", func() (*Table, error) { return E2Line(lineDs, 256) }},
		{"E3", func() (*Table, error) { return E3Point(pointDs) }},
		{"E4", func() (*Table, error) { return E4Duality(e4Trials, seed, workers) }},
		{"E5", func() (*Table, error) { return E5ApproxQuality(e5N, e5Jobs, seed, workers) }},
		{"E6", func() (*Table, error) { return E6Runtime(e6Sizes, seed) }},
		{"E7", func() (*Table, error) { return E7Online(e7N, e7Jobs, seed, workers, shards) }},
		{"E8", func() (*Table, error) { return E8Diffusion(e8Sides, seed, shards) }},
		{"E9", func() (*Table, error) { return E9Broken(e9R1s) }},
		{"E10", func() (*Table, error) { return E10Transfers(e10Lens, e10D) }},
		{"E11", func() (*Table, error) { return E11Ablations(e7N, e7Jobs, seed, workers, shards) }},
		{"E12", func() (*Table, error) { return E12DimensionSweep(4000) }},
		{"E13", func() (*Table, error) { return E13Robustness([]float64{0, 0.25, 0.5, 1}, seed, workers, shards) }},
		{"E14", func() (*Table, error) { return E14FailureModels(e14Fracs, seed, workers, shards) }},
		{"E15", func() (*Table, error) { return E15GossipFidelity(e15Fanouts, seed, workers, shards) }},
	} {
		if id != "" && exp.id != id {
			continue
		}
		tbl, err := exp.build()
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// omegaScaleCheck is a shared helper for tests: the grid package's solver on
// a unit box, exported through the experiments lens.
func omegaScaleCheck(d float64) float64 {
	b, err := grid.NewBox(2, grid.P(0, 0), grid.P(0, 0))
	if err != nil {
		return 0
	}
	return grid.SolveOmega(b, d)
}
