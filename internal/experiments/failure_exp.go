package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/online"
	"repro/internal/sweep"
)

// failureWorkload builds the shared E14/E15 scenario: a 6x6 arena under 50
// seeded random arrivals (so most pairs receive demand and a dead pair's
// lapse is observable), plus a deterministic death schedule killing a
// rng-selected fraction of cells at staggered arrival indices.
func failureWorkload(seed int64, frac float64) (*grid.Grid, *demand.Sequence, map[grid.Point]int) {
	const n = 6
	const jobCount = 50
	arena := grid.MustNew(n, n)
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]grid.Point, jobCount)
	for i := range jobs {
		jobs[i] = grid.P(rng.Intn(n), rng.Intn(n))
	}
	deaths := map[grid.Point]int{}
	// Cell selection consumes one draw per cell in fixed Points() order, so
	// the schedule is identical for every worker count; the i-th selected
	// cell dies right before arrival 5+3i, staggering the rescues.
	for _, p := range arena.Bounds().Points() {
		if rng.Float64() < frac {
			deaths[p] = 5 + 3*len(deaths)
		}
	}
	return arena, demand.NewSequence(jobs), deaths
}

// failureModelCase is one E14 column family: a named way of turning the
// death schedule into episode options.
type failureModelCase struct {
	name string
	opts func(deaths map[grid.Point]int) online.Options
}

func failureModelCases(arena *grid.Grid, seed int64, shards int) []failureModelCase {
	base := func(deaths map[grid.Point]int) online.Options {
		return online.Options{
			Arena: arena, CubeSide: arena.Size(0), Capacity: 14,
			Seed: seed, Monitoring: true, SimShards: shards,
			Failure: &online.FailureModel{DeadBeforeArrival: deaths},
		}
	}
	return []failureModelCase{
		{"crash-silent", base},
		{"crash-then-lie", func(deaths map[grid.Point]int) online.Options {
			o := base(deaths)
			byz := make(map[grid.Point]bool, len(deaths))
			for p := range deaths {
				byz[p] = true
			}
			o.Failure = &online.FailureModel{DeadBeforeArrival: deaths, Byzantine: byz}
			return o
		}},
		{"heterogeneous", func(deaths map[grid.Point]int) online.Options {
			o := base(deaths)
			o.Fleet = &online.Fleet{Classes: []online.VehicleClass{
				{Name: "standard"},
				{Name: "scout", Speed: 2, Energy: 0.5, Capacity: 0.75},
			}}
			return o
		}},
		{"gossip", func(deaths map[grid.Point]int) online.Options {
			o := base(deaths)
			o.Search = online.SearchGossip
			o.GossipFanout = 3
			return o
		}},
	}
}

// E14FailureModels compares the four failure/operating models of the
// adversarial failure engine across an increasing fraction of dead cells:
// silent crashes (caught by the beacon-timeout ring), crash-then-lie
// Byzantine casualties (forged heartbeats, caught only by the evidence
// channel and only once service actually lapses), a heterogeneous fleet
// under the same crashes, and gossip-based replacement search. The contrast
// the table makes: silent crashes are rescued proactively (near-zero
// replacement latency), while a lying casualty is unmasked only after it
// costs a job.
func E14FailureModels(fractions []float64, seed int64, workers, shards int) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "failure-model comparison (crash vs byzantine vs heterogeneous vs gossip)",
		Columns: []string{"dead fraction", "model", "served", "silent rescues",
			"evidence rescues", "replacements", "mean latency", "messages"},
		Notes: "Silent crashes trip the beacon timeout and are repaired proactively; crash-then-lie casualties keep heartbeating, so only the evidence channel (a customer complaint after a lost job) unmasks them — detection is lazier and replacement latency strictly positive. The heterogeneous and gossip variants show both machineries are model-agnostic.",
	}
	type cell struct {
		served, silent, evidence, replacements, messages int64
		latency                                          float64
	}
	type row [4]cell
	arena := grid.MustNew(6, 6)
	cases := failureModelCases(arena, seed, shards)
	rows, err := sweep.Map(sweep.Config{Workers: workers}, fractions,
		func(w *sweep.Worker, frac float64, _ int) (row, error) {
			if frac < 0 || frac > 1 {
				return row{}, fmt.Errorf("experiments: fraction %v outside [0,1]", frac)
			}
			_, seq, deaths := failureWorkload(seed, frac)
			var out row
			for i, c := range cases {
				res, err := w.Episode(c.opts(deaths), seq)
				if err != nil {
					return row{}, err
				}
				out[i] = cell{
					served:       res.Served,
					silent:       res.MonitorRescues,
					evidence:     res.EvidenceRescues,
					replacements: res.Replacements,
					messages:     res.Messages,
					latency:      res.MeanReplaceLatency(),
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		for j, c := range cases {
			t.AddRow(fractions[i], c.name, r[j].served, r[j].silent,
				r[j].evidence, r[j].replacements,
				fmt.Sprintf("%.2f", r[j].latency), r[j].messages)
		}
	}
	return t, nil
}

// E15GossipFidelity sweeps the gossip fanout (the fidelity/traffic knob) at
// a fixed failure fraction and compares it against the diffusing-computation
// baseline (fanout -1 in the table). Full flood (fanout 0) must reproduce
// the baseline row exactly — the degradation guarantee — while small fanouts
// trade discovery fidelity (failed searches, lost jobs) for message savings.
func E15GossipFidelity(fanouts []int, seed int64, workers, shards int) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "gossip fidelity/traffic knob (fanout sweep vs diffuse baseline)",
		Columns: []string{"fanout", "served", "searches", "search failures",
			"replacements", "messages"},
		Notes: "Fanout -1 is the Dijkstra-Scholten diffusing computation; fanout 0 is gossip at full flood and matches it column for column. Below the node degree the rumor covers a subgraph: fewer messages, but a search can miss the only idle candidate and the lost pair stays down.",
	}
	const frac = 0.25
	arena, seq, deaths := failureWorkload(seed, frac)
	type row struct {
		served, searches, searchFailures, replacements, messages int64
	}
	rows, err := sweep.Map(sweep.Config{Workers: workers}, fanouts,
		func(w *sweep.Worker, fanout int, _ int) (row, error) {
			opts := online.Options{
				Arena: arena, CubeSide: arena.Size(0), Capacity: 14,
				Seed: seed, Monitoring: true, SimShards: shards,
				Failure: &online.FailureModel{DeadBeforeArrival: deaths},
			}
			if fanout >= 0 {
				opts.Search = online.SearchGossip
				opts.GossipFanout = fanout
			}
			res, err := w.Episode(opts, seq)
			if err != nil {
				return row{}, err
			}
			return row{res.Served, res.Searches, res.SearchFailures,
				res.Replacements, res.Messages}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		label := fmt.Sprintf("%d", fanouts[i])
		if fanouts[i] < 0 {
			label = "diffuse"
		} else if fanouts[i] == 0 {
			label = "0 (full flood)"
		}
		t.AddRow(label, r.served, r.searches, r.searchFailures,
			r.replacements, r.messages)
	}
	return t, nil
}
