package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/lpchar"
	"repro/internal/offline"
	"repro/internal/sweep"
)

// E4Duality regenerates the Lemma 2.2.1-2.2.3 duality chain empirically: on
// random small instances, the flow-computed LP (2.1) value must equal the
// closed form max_T sum(d)/|N_r(T)| over all subsets, with the box-family
// maximum sandwiched below.
//
// The trials share one rng stream, so the instances are drawn up front —
// exactly the draws the serial loop made — and only the LP evaluations (the
// expensive, purely deterministic part) fan out across the sweep. Each
// worker owns one warm lpchar.Solver (Worker.LPSolver) re-bound per trial,
// so the flow evaluations are construction-free after the worker's first
// instance; values are bit-identical to fresh per-trial construction.
func E4Duality(trials int, seed int64, workers int) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "LP (2.1) duality chain (Lemmas 2.2.1-2.2.3)",
		Columns: []string{"trial", "dim", "r", "support", "LP via max-flow",
			"max_T sum(d)/|N_r(T)|", "max over boxes", "flow == subsets"},
		Notes: "Lemma 2.2.2 says columns 5 and 6 are equal; boxes (Cor 2.2.6's family) lower-bound them.",
	}
	type instance struct {
		dim int
		m   *demand.Map
		r   int
	}
	rng := rand.New(rand.NewSource(seed))
	insts := make([]instance, trials)
	for trial := range insts {
		dim := 1 + rng.Intn(2)
		m := demand.NewMap(dim)
		points := 2 + rng.Intn(5)
		for i := 0; i < points; i++ {
			var p grid.Point
			for a := 0; a < dim; a++ {
				p[a] = int32(rng.Intn(6))
			}
			if err := m.Add(p, 1+rng.Int63n(20)); err != nil {
				return nil, err
			}
		}
		insts[trial] = instance{dim: dim, m: m, r: rng.Intn(4)}
	}
	type verdict struct {
		flowV, subsetV, boxV float64
		equal                bool
	}
	rows, err := sweep.Map(sweep.Config{Workers: workers}, insts,
		func(w *sweep.Worker, in instance, _ int) (verdict, error) {
			lp := w.LPSolver()
			if err := lp.Bind(in.m, in.r); err != nil {
				return verdict{}, err
			}
			flowV, err := lp.Value()
			if err != nil {
				return verdict{}, err
			}
			subsetV, err := lpchar.SubsetValue(in.m, in.r)
			if err != nil {
				return verdict{}, err
			}
			boxV, _, err := lpchar.MaxOverBoxes(in.m, in.r)
			if err != nil {
				return verdict{}, err
			}
			equal := math.Abs(flowV-subsetV) <= 1e-6*math.Max(1, subsetV)
			return verdict{flowV: flowV, subsetV: subsetV, boxV: boxV, equal: equal}, nil
		})
	if err != nil {
		return nil, err
	}
	for trial, v := range rows {
		in := insts[trial]
		t.AddRow(trial, in.dim, in.r, in.m.SupportSize(), v.flowV, v.subsetV, v.boxV, v.equal)
	}
	return t, nil
}

// workload builds one of the named synthetic workloads inside the arena's
// safe interior.
func workload(name string, arena *grid.Grid, rng *rand.Rand, jobs int64) (*demand.Map, error) {
	n := arena.Size(0)
	inner, err := grid.NewBox(2, grid.P(n/4, n/4), grid.P(3*n/4-1, 3*n/4-1))
	if err != nil {
		return nil, err
	}
	switch name {
	case "uniform":
		return demand.Uniform(rng, inner, jobs)
	case "clusters":
		return demand.Clusters(rng, inner, 4, jobs/4, n/16+1)
	case "zipf":
		return demand.Zipf(rng, inner, jobs, 1.4)
	case "point":
		return demand.PointMass(2, grid.P(n/2, n/2), jobs)
	case "line":
		return demand.Line(grid.P(n/4, n/2), n/2, jobs/int64(n/2))
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
}

// E5ApproxQuality measures Algorithm 1 and the constructive schedule against
// the cube lower bound omega_c across workloads (Theorem 1.4.1 /
// Lemma 2.2.5 / Section 2.3). Ratio columns must stay below the analytic
// constants: schedule/omega_c <= 2*3^l+l = 20 and Alg1 is a
// 2(2*3^l+l)-approximation.
func E5ApproxQuality(n int, jobs int64, seed int64, workers int) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("offline approximation quality (n=%d, %d jobs)", n, jobs),
		Columns: []string{"workload", "omega_c", "Alg1 W", "Alg1 branch",
			"schedule W", "schedule/omega_c", "bound 2*3^l+l"},
		Notes: "omega_c lower-bounds Woff (Cor 2.2.7); the built schedule certifies an upper bound within 2*3^l+l of it (Lemma 2.2.5).",
	}
	arena := grid.MustNew(n, n)
	bound := float64(2*9 + 2)
	// Each workload re-seeds its own rng, so the scenarios are independent
	// pure functions of their name — the sweep's unit of fan-out.
	type row struct {
		omega, alg1W float64
		branch       string
		schedW       float64
	}
	names := []string{"uniform", "clusters", "zipf", "point", "line"}
	rows, err := sweep.Map(sweep.Config{Workers: workers}, names,
		func(_ *sweep.Worker, name string, _ int) (row, error) {
			rng := rand.New(rand.NewSource(seed))
			m, err := workload(name, arena, rng, jobs)
			if err != nil {
				return row{}, err
			}
			dense, err := offline.NewDense(m, arena)
			if err != nil {
				return row{}, err
			}
			char, err := dense.OmegaC()
			if err != nil {
				return row{}, err
			}
			res, err := dense.Algorithm1()
			if err != nil {
				return row{}, err
			}
			sched, err := dense.BuildSchedule(char)
			if err != nil {
				return row{}, err
			}
			if _, err := offline.VerifySchedule(m, sched, sched.W); err != nil {
				return row{}, fmt.Errorf("experiments: %s schedule invalid: %w", name, err)
			}
			return row{omega: char.Omega, alg1W: res.W, branch: res.Branch.String(), schedW: sched.W}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		ratio := r.schedW / math.Max(r.omega, 1)
		t.AddRow(names[i], r.omega, r.alg1W, r.branch, r.schedW, ratio, bound)
	}
	return t, nil
}

// E6Runtime measures Algorithm 1's wall-clock scaling: the thesis proves
// O(n^l) total work, so ns/cell should be roughly flat as n doubles. The
// cold column rebuilds the dense demand view per run (the pre-warm-start
// per-call path); the warm column shares one offline.Dense across runs —
// the engine SolveOffline and offline scenario grids now run on.
func E6Runtime(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Algorithm 1 runtime scaling (Section 2.3: O(n^l))",
		Columns: []string{"n", "cells", "total", "ns/run cold", "ns/run warm",
			"cold/warm", "ns/cell warm"},
		Notes: "Linear time: ns/cell warm stays near-constant while n quadruples the cell count; cold/warm is the dense-view reuse win (values identical — pinned by TestDenseSharedViewMatchesStandalone).",
	}
	for _, n := range sizes {
		arena := grid.MustNew(n, n)
		rng := rand.New(rand.NewSource(seed))
		inner, err := grid.NewBox(2, grid.P(n/4, n/4), grid.P(3*n/4-1, 3*n/4-1))
		if err != nil {
			return nil, err
		}
		m, err := demand.Uniform(rng, inner, int64(n)*int64(n))
		if err != nil {
			return nil, err
		}
		dense, err := offline.NewDense(m, arena)
		if err != nil {
			return nil, err
		}
		// Warm once, then time a few runs of each path.
		if _, err := dense.Algorithm1(); err != nil {
			return nil, err
		}
		const reps = 5
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := offline.Algorithm1(m, arena); err != nil {
				return nil, err
			}
		}
		cold := time.Since(start) / reps
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := dense.Algorithm1(); err != nil {
				return nil, err
			}
		}
		warm := time.Since(start) / reps
		cells := arena.Len()
		t.AddRow(n, cells, m.Total(), cold.Nanoseconds(), warm.Nanoseconds(),
			float64(cold.Nanoseconds())/float64(warm.Nanoseconds()),
			float64(warm.Nanoseconds())/float64(cells))
	}
	return t, nil
}
