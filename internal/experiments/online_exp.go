package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sweep"
)

// e7SearchWorkers is the pinned concurrency of E7's capacity searches.
const e7SearchWorkers = 4

// E7Online measures the empirical Won (smallest capacity at which the
// Chapter 3 strategy serves everything) against omega_c and the Theorem
// 1.4.2 guarantee (4*3^l+l)*omega_c, plus the greedy dispatcher baseline.
// shards selects the simulator scheduler (online.Options.SimShards).
func E7Online(n int, jobs int64, seed int64, workers, shards int) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("online vs offline capacity (n=%d, %d jobs)", n, jobs),
		Columns: []string{"workload", "omega_c", "measured Won", "Won/omega_c",
			"theorem bound (4*3^l+l)*omega_c", "greedy baseline W"},
		Notes: "Theorem 1.4.2: Won = Theta(Woff); the measured ratio stays below the 38x analytic constant (and far below it in practice).",
	}
	arena := grid.MustNew(n, n)
	// One scenario per workload; each runs its own pinned-width capacity
	// search (the search owns its probe runners, so the sweep worker's pool
	// is not involved — fan-out here is across workloads).
	type row struct {
		omega, won, greedyW float64
	}
	names := []string{"uniform", "clusters", "point", "line"}
	rows, err := sweep.Map(sweep.Config{Workers: workers}, names,
		func(_ *sweep.Worker, name string, _ int) (row, error) {
			rng := rand.New(rand.NewSource(seed))
			m, err := workload(name, arena, rng, jobs)
			if err != nil {
				return row{}, err
			}
			char, err := offline.OmegaC(m, arena)
			if err != nil {
				return row{}, err
			}
			seq, err := demand.SequenceOf(m, demand.OrderShuffled, rng)
			if err != nil {
				return row{}, err
			}
			// Fixed search worker count: the parallel search's answer depends
			// on the probe grid, so pinning it keeps tables machine-
			// independent. The prebuilt partition is shared by every probe
			// runner of the search.
			part, err := online.NewPartition(arena, char.Side)
			if err != nil {
				return row{}, err
			}
			won, err := online.MinCapacityParallel(seq, online.Options{
				Arena: arena, CubeSide: char.Side, Partition: part, Seed: seed,
				SearchWorkers: e7SearchWorkers, SimShards: shards,
			}, 1, 0.05)
			if err != nil {
				return row{}, err
			}
			greedyW, err := baseline.GreedyMinCapacity(seq, arena, 0.05)
			if err != nil {
				return row{}, err
			}
			return row{omega: char.Omega, won: won, greedyW: greedyW}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		base := math.Max(r.omega, 1)
		t.AddRow(names[i], r.omega, r.won, r.won/base, float64(4*9+2)*base, r.greedyW)
	}
	return t, nil
}

// E8Diffusion measures the replacement machinery's message complexity as the
// cube side grows: a single hot point forces a stream of replacements, and
// the per-replacement message count scales with the cube's communication
// graph, not with total jobs (Section 3.2.3's locality).
func E8Diffusion(cubeSides []int, seed int64, shards int) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "diffusing computation cost per replacement (Algorithm 2)",
		Columns: []string{"cube side", "vehicles/cube", "jobs", "replacements",
			"searches", "monitor rescues", "messages", "msgs/replacement"},
		Notes: "Phase I floods one cube's distance-2 graph: messages per replacement grow with cube size, independent of job count.",
	}
	for _, s := range cubeSides {
		arena := grid.MustNew(s, s) // one cube
		capacity := float64(4*s + 4)
		r, err := online.NewRunner(online.Options{
			Arena: arena, CubeSide: s, Capacity: capacity, Seed: seed,
			SimShards: shards,
		})
		if err != nil {
			return nil, err
		}
		pos := r.Partition().Pairs()[0].ServicePos()
		// Enough jobs to exhaust several vehicles but not the whole cube.
		jobs := int((capacity - 2) * 3)
		arrivals := make([]grid.Point, jobs)
		for i := range arrivals {
			arrivals[i] = pos
		}
		res, err := r.Run(demand.NewSequence(arrivals))
		if err != nil {
			return nil, err
		}
		if !res.OK() {
			return nil, fmt.Errorf("experiments: E8 run failed at side %d: %v", s, res.Failures[0])
		}
		perRepl := float64(res.Messages)
		if res.Replacements > 0 {
			perRepl = float64(res.Messages) / float64(res.Replacements)
		}
		t.AddRow(s, s*s, jobs, res.Replacements, res.Searches,
			res.MonitorRescues, res.Messages, perRepl)
	}
	return t, nil
}
