// Package experiments regenerates every reproducible artifact of the thesis
// — the worked examples of Section 2.1, the duality chain of Section 2.2,
// Algorithm 1's approximation quality and runtime, the online strategy of
// Chapter 3, the broken-vehicle gap of Chapter 4, and the transfer results
// of Chapter 5 — as deterministic, printable tables. Experiment IDs E1..E13
// are indexed in DESIGN.md and recorded against the thesis in
// EXPERIMENTS.md. Both cmd/experiments and the repository benchmarks call
// into this package so the published numbers and the benchmarked code paths
// are identical. The multi-scenario experiments (E4, E5, E7, E11, E13) are
// sweep declarations over package sweep's deterministic parallel engine:
// their tables are byte-identical for every worker width.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a titled grid of rendered cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a row, formatting each value with %v (floats as %.4g).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		b.WriteString("\n" + t.Notes + "\n")
	}
	return b.String()
}

// bisect finds the root of the increasing function f (f(lo) < 0 < f(hi)
// after bracket growth) to absolute tolerance tol.
func bisect(f func(float64) float64, lo, hi, tol float64) float64 {
	for f(hi) < 0 {
		lo = hi
		hi *= 2
		if hi > 1e15 {
			return hi
		}
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
