package flow

import (
	"math"
	"testing"
)

// buildBipartite assembles the LP (2.1) feasibility oracle's shape: a k x k
// supplier/demand bipartite graph with local connectivity.
func buildBipartite(k int) (*Network, error) {
	nw, err := NewNetwork(2 + 2*k)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		if _, err := nw.AddEdge(0, 1+i, 3.5); err != nil {
			return nil, err
		}
		if _, err := nw.AddEdge(1+k+i, 1+2*k, 3.0); err != nil {
			return nil, err
		}
		for d := -2; d <= 2; d++ {
			j := i + d
			if j >= 0 && j < k {
				if _, err := nw.AddEdge(1+i, 1+k+j, math.Inf(1)); err != nil {
					return nil, err
				}
			}
		}
	}
	return nw, nil
}

// BenchmarkDinicGridBipartite is the cold path: build + solve per iteration.
func BenchmarkDinicGridBipartite(b *testing.B) {
	const k = 400
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nw, err := buildBipartite(k)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nw.MaxFlow(0, 1+2*k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDinicResumeLadder is the incremental path: an 8-rung ascending
// capacity ladder on one retained network, where each rung raises the source
// capacities in place and pushes only the augmenting difference. The
// from-scratch cost of the same ladder is 8x BenchmarkDinicGridBipartiteWarm.
func BenchmarkDinicResumeLadder(b *testing.B) {
	const k = 400
	nw, err := buildBipartite(k)
	if err != nil {
		b.Fatal(err)
	}
	srcEdges := make([]int, 0, k)
	for id := 0; id < len(nw.to); id += 2 {
		if nw.to[id^1] == 0 {
			srcEdges = append(srcEdges, id)
		}
	}
	for _, id := range srcEdges {
		if err := nw.SetCapacity(id, 0); err != nil {
			b.Fatal(err)
		}
	}
	nw.Reset()
	var zero State
	nw.CaptureState(&zero)
	rungs := [...]float64{0.5, 1, 1.5, 2, 2.5, 3, 3.25, 3.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.RestoreState(&zero); err != nil {
			b.Fatal(err)
		}
		for _, omega := range rungs {
			for _, id := range srcEdges {
				if err := nw.RaiseCapacity(id, omega); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := nw.MaxFlowResume(0, 1+2*k); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDinicGridBipartiteWarm is the warm path: one retained network,
// Reset + MaxFlow per iteration — the per-probe cost of a capacity search.
func BenchmarkDinicGridBipartiteWarm(b *testing.B) {
	const k = 400
	nw, err := buildBipartite(k)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Reset()
		if _, err := nw.MaxFlow(0, 1+2*k); err != nil {
			b.Fatal(err)
		}
	}
}
