// Package flow implements Dinic's maximum-flow algorithm over float64
// capacities. CMVRP uses it as the feasibility oracle for the thesis' linear
// program (2.1): for a candidate capacity omega, supplies omega at every
// vehicle, demands d(j) at every customer, and arcs i->j for positions
// within the allowed radius — the LP is feasible iff max-flow saturates the
// total demand.
//
// A Network is warm-reusable: it stores the base capacity of every edge, so
// Reset restores the just-built state without allocating, SetCapacity
// rewrites a single edge (the knob capacity searches turn), and the BFS/DFS
// scratch is retained per network — a warm MaxFlow allocates nothing. This
// extends the repo's "reset ≡ fresh" discipline (DESIGN.md) to the offline
// LP core.
package flow

import (
	"fmt"
	"math"
)

// Eps is the tolerance under which residual capacities are treated as zero.
const Eps = 1e-9

// Network is a directed flow network. Nodes are dense integer ids 0..n-1.
// It retains its structure, base capacities, and traversal scratch across
// solves: Reset + MaxFlow replays bit-for-bit like a fresh build and
// allocates nothing.
type Network struct {
	n     int
	heads []int32 // adjacency list heads, -1 terminated
	to    []int32
	next  []int32
	cap   []float64 // residual capacities (mutated by MaxFlow)
	base  []float64 // construction-time capacities (restored by Reset)
	// Retained traversal scratch, sized to n at construction so a warm
	// MaxFlow performs zero allocations.
	level []int32
	iter  []int32
	queue []int32
}

// NewNetwork creates a network with n nodes and no edges.
func NewNetwork(n int) (*Network, error) {
	nw := &Network{}
	if err := nw.Reinit(n); err != nil {
		return nil, err
	}
	return nw, nil
}

// Reinit restores the network to a freshly constructed n-node, zero-edge
// state while retaining the underlying storage, so rebuilding a solver over
// a same-order-of-magnitude graph reuses the old arrays instead of
// reallocating them. A fresh build and a Reinit-then-rebuild are
// indistinguishable (pinned by TestReinitMatchesFresh).
func (nw *Network) Reinit(n int) error {
	if n < 2 {
		return fmt.Errorf("flow: need at least 2 nodes, got %d", n)
	}
	nw.n = n
	nw.heads = resize(nw.heads, n)
	for i := range nw.heads {
		nw.heads[i] = -1
	}
	nw.to = nw.to[:0]
	nw.next = nw.next[:0]
	nw.cap = nw.cap[:0]
	nw.base = nw.base[:0]
	nw.level = resize(nw.level, n)
	nw.iter = resize(nw.iter, n)
	if cap(nw.queue) < n {
		nw.queue = make([]int32, 0, n)
	}
	return nil
}

// resize returns s with length n, reusing its storage when possible.
func resize(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// AddEdge adds a directed edge u->v with the given capacity (and an implicit
// residual reverse edge of capacity 0). Returns the edge id, usable with
// Flow after a MaxFlow run and with SetCapacity.
func (nw *Network) AddEdge(u, v int, capacity float64) (int, error) {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		return 0, fmt.Errorf("flow: edge (%d,%d) out of range [0,%d)", u, v, nw.n)
	}
	if capacity < 0 || math.IsNaN(capacity) {
		return 0, fmt.Errorf("flow: invalid capacity %v", capacity)
	}
	id := len(nw.to)
	nw.to = append(nw.to, int32(v), int32(u))
	nw.cap = append(nw.cap, capacity, 0)
	nw.base = append(nw.base, capacity, 0)
	nw.next = append(nw.next, nw.heads[u], nw.heads[v])
	nw.heads[u] = int32(id)
	nw.heads[v] = int32(id + 1)
	return id, nil
}

// Flow returns the flow currently pushed through edge id (after MaxFlow).
func (nw *Network) Flow(id int) float64 { return nw.cap[id^1] }

// Reset restores every edge to its base capacity, discarding all flow. The
// structure is untouched and nothing is allocated: Reset followed by MaxFlow
// behaves exactly like a fresh network (TestResetMatchesFresh pins this).
func (nw *Network) Reset() {
	copy(nw.cap, nw.base)
}

// SetCapacity rewrites the capacity of edge id (a forward id returned by
// AddEdge), updating both the live residual state and the base restored by
// Reset. Any flow currently on the edge pair is discarded, so the usual
// probe sequence is Reset, then SetCapacity on the searched edges, then
// MaxFlow.
func (nw *Network) SetCapacity(id int, capacity float64) error {
	if id < 0 || id >= len(nw.cap) || id&1 != 0 {
		return fmt.Errorf("flow: edge id %d out of range (forward ids are even, < %d)", id, len(nw.cap))
	}
	if capacity < 0 || math.IsNaN(capacity) {
		return fmt.Errorf("flow: invalid capacity %v", capacity)
	}
	nw.cap[id] = capacity
	nw.cap[id^1] = 0
	nw.base[id] = capacity
	nw.base[id^1] = 0
	return nil
}

// MaxFlow computes the maximum s-t flow with Dinic's algorithm and returns
// its value. The network retains the flow (inspect with Flow); calling
// MaxFlow again continues from the current residual state — call Reset first
// to solve from scratch. A warm call performs zero allocations.
func (nw *Network) MaxFlow(s, t int) (float64, error) {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n || s == t {
		return 0, fmt.Errorf("flow: bad terminals s=%d t=%d", s, t)
	}
	level, iter := nw.level, nw.iter
	total := 0.0
	for {
		// BFS level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue := append(nw.queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for e := nw.heads[u]; e != -1; e = nw.next[e] {
				v := nw.to[e]
				if nw.cap[e] > Eps && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		nw.queue = queue[:0]
		if level[t] < 0 {
			return total, nil
		}
		copy(iter, nw.heads)
		// Blocking flow via iterative DFS.
		for {
			pushed := nw.dfs(s, t, math.Inf(1), level, iter)
			if pushed <= Eps {
				break
			}
			total += pushed
		}
	}
}

func (nw *Network) dfs(u, t int, limit float64, level, iter []int32) float64 {
	if u == t {
		return limit
	}
	for ; iter[u] != -1; iter[u] = nw.next[iter[u]] {
		e := iter[u]
		v := int(nw.to[e])
		if nw.cap[e] > Eps && level[v] == level[u]+1 {
			d := nw.dfs(v, t, math.Min(limit, nw.cap[e]), level, iter)
			if d > Eps {
				nw.cap[e] -= d
				nw.cap[e^1] += d
				return d
			}
		}
	}
	level[u] = -2 // dead end on this phase
	return 0
}
