// Package flow implements Dinic's maximum-flow algorithm over float64
// capacities. CMVRP uses it as the feasibility oracle for the thesis' linear
// program (2.1): for a candidate capacity omega, supplies omega at every
// vehicle, demands d(j) at every customer, and arcs i->j for positions
// within the allowed radius — the LP is feasible iff max-flow saturates the
// total demand.
package flow

import (
	"fmt"
	"math"
)

// Eps is the tolerance under which residual capacities are treated as zero.
const Eps = 1e-9

// Network is a directed flow network under construction. Nodes are dense
// integer ids 0..n-1.
type Network struct {
	n     int
	heads []int32 // adjacency list heads, -1 terminated
	to    []int32
	next  []int32
	cap   []float64
}

// NewNetwork creates a network with n nodes and no edges.
func NewNetwork(n int) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("flow: need at least 2 nodes, got %d", n)
	}
	heads := make([]int32, n)
	for i := range heads {
		heads[i] = -1
	}
	return &Network{n: n, heads: heads}, nil
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// AddEdge adds a directed edge u->v with the given capacity (and an implicit
// residual reverse edge of capacity 0). Returns the edge id, usable with
// Flow after a MaxFlow run.
func (nw *Network) AddEdge(u, v int, capacity float64) (int, error) {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		return 0, fmt.Errorf("flow: edge (%d,%d) out of range [0,%d)", u, v, nw.n)
	}
	if capacity < 0 || math.IsNaN(capacity) {
		return 0, fmt.Errorf("flow: invalid capacity %v", capacity)
	}
	id := len(nw.to)
	nw.to = append(nw.to, int32(v), int32(u))
	nw.cap = append(nw.cap, capacity, 0)
	nw.next = append(nw.next, nw.heads[u], nw.heads[v])
	nw.heads[u] = int32(id)
	nw.heads[v] = int32(id + 1)
	return id, nil
}

// Flow returns the flow currently pushed through edge id (after MaxFlow).
func (nw *Network) Flow(id int) float64 { return nw.cap[id^1] }

// MaxFlow computes the maximum s-t flow with Dinic's algorithm and returns
// its value. The network retains the flow (inspect with Flow); calling
// MaxFlow again continues from the current residual state, so use a fresh
// network per computation.
func (nw *Network) MaxFlow(s, t int) (float64, error) {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n || s == t {
		return 0, fmt.Errorf("flow: bad terminals s=%d t=%d", s, t)
	}
	level := make([]int32, nw.n)
	iter := make([]int32, nw.n)
	queue := make([]int32, 0, nw.n)
	total := 0.0
	for {
		// BFS level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for e := nw.heads[u]; e != -1; e = nw.next[e] {
				v := nw.to[e]
				if nw.cap[e] > Eps && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		if level[t] < 0 {
			return total, nil
		}
		copy(iter, nw.heads)
		// Blocking flow via iterative DFS.
		for {
			pushed := nw.dfs(s, t, math.Inf(1), level, iter)
			if pushed <= Eps {
				break
			}
			total += pushed
		}
	}
}

func (nw *Network) dfs(u, t int, limit float64, level, iter []int32) float64 {
	if u == t {
		return limit
	}
	for ; iter[u] != -1; iter[u] = nw.next[iter[u]] {
		e := iter[u]
		v := int(nw.to[e])
		if nw.cap[e] > Eps && level[v] == level[u]+1 {
			d := nw.dfs(v, t, math.Min(limit, nw.cap[e]), level, iter)
			if d > Eps {
				nw.cap[e] -= d
				nw.cap[e^1] += d
				return d
			}
		}
	}
	level[u] = -2 // dead end on this phase
	return 0
}
