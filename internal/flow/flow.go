// Package flow implements Dinic's maximum-flow algorithm over float64
// capacities. CMVRP uses it as the feasibility oracle for the thesis' linear
// program (2.1): for a candidate capacity omega, supplies omega at every
// vehicle, demands d(j) at every customer, and arcs i->j for positions
// within the allowed radius — the LP is feasible iff max-flow saturates the
// total demand.
//
// A Network is warm-reusable: it stores the base capacity of every edge, so
// Reset restores the just-built state without allocating, SetCapacity
// rewrites a single edge (the knob capacity searches turn), and the BFS/DFS
// scratch is retained per network — a warm MaxFlow allocates nothing. This
// extends the repo's "reset ≡ fresh" discipline (DESIGN.md) to the offline
// LP core.
//
// A Network is also incrementally reusable: RaiseCapacity grows an edge's
// capacity without discarding the flow on it (raising a capacity never
// invalidates a feasible flow), MaxFlowResume pushes only the augmenting
// difference on the retained residual network, and CaptureState/RestoreState
// rewind the flow to an earlier rung of a capacity ladder. Together they are
// the parametric path lpchar's probe ladder rides: ~60 bisection probes cost
// one full solve plus 60 differences instead of 60 full solves.
package flow

import (
	"fmt"
	"math"
)

// Eps is the tolerance under which residual capacities are treated as zero.
const Eps = 1e-9

// Network is a directed flow network. Nodes are dense integer ids 0..n-1.
// It retains its structure, base capacities, and traversal scratch across
// solves: Reset + MaxFlow replays bit-for-bit like a fresh build and
// allocates nothing.
type Network struct {
	n     int
	heads []int32 // adjacency list heads, -1 terminated
	to    []int32
	next  []int32
	cap   []float64 // residual capacities (mutated by MaxFlow)
	base  []float64 // construction-time capacities (restored by Reset)
	// Retained traversal scratch, sized to n at construction so a warm
	// MaxFlow performs zero allocations.
	level []int32
	iter  []int32
	queue []int32
	path  []int32 // augmenting-path edge stack (len <= n)
}

// NewNetwork creates a network with n nodes and no edges.
func NewNetwork(n int) (*Network, error) {
	nw := &Network{}
	if err := nw.Reinit(n); err != nil {
		return nil, err
	}
	return nw, nil
}

// Reinit restores the network to a freshly constructed n-node, zero-edge
// state while retaining the underlying storage, so rebuilding a solver over
// a same-order-of-magnitude graph reuses the old arrays instead of
// reallocating them. A fresh build and a Reinit-then-rebuild are
// indistinguishable (pinned by TestReinitMatchesFresh).
func (nw *Network) Reinit(n int) error {
	if n < 2 {
		return fmt.Errorf("flow: need at least 2 nodes, got %d", n)
	}
	nw.n = n
	nw.heads = resize(nw.heads, n)
	for i := range nw.heads {
		nw.heads[i] = -1
	}
	nw.to = nw.to[:0]
	nw.next = nw.next[:0]
	nw.cap = nw.cap[:0]
	nw.base = nw.base[:0]
	nw.level = resize(nw.level, n)
	nw.iter = resize(nw.iter, n)
	if cap(nw.queue) < n {
		nw.queue = make([]int32, 0, n)
	}
	if cap(nw.path) < n {
		nw.path = make([]int32, 0, n)
	}
	return nil
}

// resize returns s with length n, reusing its storage when possible.
func resize(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// AddNodes appends count fresh, edge-less nodes and returns the id of the
// first one. Existing nodes, edges, ids, and any retained flow are untouched
// — this is what lets lpchar's radius differencing extend a supply graph in
// place (nested L1 balls only ever add suppliers) instead of rebuilding it.
func (nw *Network) AddNodes(count int) (int, error) {
	if count < 0 {
		return 0, fmt.Errorf("flow: negative node count %d", count)
	}
	first := nw.n
	nw.n += count
	for i := 0; i < count; i++ {
		nw.heads = append(nw.heads, -1)
	}
	nw.level = resize(nw.level, nw.n)
	nw.iter = resize(nw.iter, nw.n)
	if cap(nw.queue) < nw.n {
		nw.queue = make([]int32, 0, nw.n)
	}
	if cap(nw.path) < nw.n {
		nw.path = make([]int32, 0, nw.n)
	}
	return first, nil
}

// AddEdge adds a directed edge u->v with the given capacity (and an implicit
// residual reverse edge of capacity 0). Returns the edge id, usable with
// Flow after a MaxFlow run and with SetCapacity.
func (nw *Network) AddEdge(u, v int, capacity float64) (int, error) {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		return 0, fmt.Errorf("flow: edge (%d,%d) out of range [0,%d)", u, v, nw.n)
	}
	if capacity < 0 || math.IsNaN(capacity) {
		return 0, fmt.Errorf("flow: invalid capacity %v", capacity)
	}
	id := len(nw.to)
	nw.to = append(nw.to, int32(v), int32(u))
	nw.cap = append(nw.cap, capacity, 0)
	nw.base = append(nw.base, capacity, 0)
	nw.next = append(nw.next, nw.heads[u], nw.heads[v])
	nw.heads[u] = int32(id)
	nw.heads[v] = int32(id + 1)
	return id, nil
}

// Flow returns the flow currently pushed through edge id (after MaxFlow).
func (nw *Network) Flow(id int) float64 { return nw.cap[id^1] }

// Reset restores every edge to its base capacity, discarding all flow. The
// structure is untouched and nothing is allocated: Reset followed by MaxFlow
// behaves exactly like a fresh network (TestResetMatchesFresh pins this).
func (nw *Network) Reset() {
	copy(nw.cap, nw.base)
}

// SetCapacity rewrites the capacity of edge id (a forward id returned by
// AddEdge), updating both the live residual state and the base restored by
// Reset. Any flow currently on the edge pair is discarded, so the usual
// probe sequence is Reset, then SetCapacity on the searched edges, then
// MaxFlow.
func (nw *Network) SetCapacity(id int, capacity float64) error {
	if id < 0 || id >= len(nw.cap) || id&1 != 0 {
		return fmt.Errorf("flow: edge id %d out of range (forward ids are even, < %d)", id, len(nw.cap))
	}
	if capacity < 0 || math.IsNaN(capacity) {
		return fmt.Errorf("flow: invalid capacity %v", capacity)
	}
	nw.cap[id] = capacity
	nw.cap[id^1] = 0
	nw.base[id] = capacity
	nw.base[id^1] = 0
	return nil
}

// RaiseCapacity raises the capacity of forward edge id to capacity, which
// must be at least the edge's current base capacity. Unlike SetCapacity it
// preserves the flow currently on the edge pair: the forward residual grows
// by exactly the difference, the reverse residual (the flow) is untouched,
// and the base moves with it, so Reset restores the raised value. Raising a
// capacity never invalidates a feasible flow — the monotonicity that makes
// lpchar's ascending omega ladder sound.
func (nw *Network) RaiseCapacity(id int, capacity float64) error {
	if id < 0 || id >= len(nw.cap) || id&1 != 0 {
		return fmt.Errorf("flow: edge id %d out of range (forward ids are even, < %d)", id, len(nw.cap))
	}
	if math.IsNaN(capacity) || capacity < nw.base[id] {
		return fmt.Errorf("flow: capacity %v below current %v (RaiseCapacity is raise-only)", capacity, nw.base[id])
	}
	nw.cap[id] += capacity - nw.base[id]
	nw.base[id] = capacity
	return nil
}

// State is a reusable snapshot of a network's per-edge state — residual and
// base capacities — taken by CaptureState and reapplied by RestoreState. It
// lets a parametric search rewind the retained flow to an earlier rung of a
// capacity ladder without re-running augmentation from zero flow. Buffers
// are retained, so a warm capture/restore cycle allocates nothing.
type State struct {
	cap, base []float64
	nodes     int
	slots     int
}

// CaptureState copies the network's residual and base capacities into st,
// reusing st's buffers when they are large enough.
func (nw *Network) CaptureState(st *State) {
	st.cap = append(st.cap[:0], nw.cap...)
	st.base = append(st.base[:0], nw.base...)
	st.nodes, st.slots = nw.n, len(nw.cap)
}

// RestoreState reapplies a snapshot taken by CaptureState on this network.
// The structure must be unchanged since the capture: a snapshot does not
// survive AddEdge, AddNodes, or Reinit.
func (nw *Network) RestoreState(st *State) error {
	if st.nodes != nw.n || st.slots != len(nw.cap) {
		return fmt.Errorf("flow: snapshot of %d nodes/%d edge slots does not match network (%d/%d)",
			st.nodes, st.slots, nw.n, len(nw.cap))
	}
	copy(nw.cap, st.cap)
	copy(nw.base, st.base)
	return nil
}

// ValidateFlow checks that the retained flow (the state MaxFlow leaves
// behind) is a valid s-t flow: every forward edge carries flow within
// [0, capacity] up to Eps, and net flow is conserved at every node other
// than s and t. A diagnostic for the incremental path's tests, not a hot
// call — it allocates one scratch slice per invocation.
func (nw *Network) ValidateFlow(s, t int) error {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n || s == t {
		return fmt.Errorf("flow: bad terminals s=%d t=%d", s, t)
	}
	net := make([]float64, nw.n)
	for id := 0; id < len(nw.cap); id += 2 {
		f := nw.cap[id^1] - nw.base[id^1] // base of the reverse slot is always 0
		u, v := int(nw.to[id^1]), int(nw.to[id])
		if f < -Eps {
			return fmt.Errorf("flow: edge %d (%d->%d) carries negative flow %v", id, u, v, f)
		}
		if f > nw.base[id]+Eps {
			return fmt.Errorf("flow: edge %d (%d->%d) flow %v exceeds capacity %v", id, u, v, f, nw.base[id])
		}
		net[u] -= f
		net[v] += f
	}
	for i := 0; i < nw.n; i++ {
		if i == s || i == t {
			continue
		}
		if math.Abs(net[i]) > 1e-6 {
			return fmt.Errorf("flow: conservation violated at node %d: net %v", i, net[i])
		}
	}
	return nil
}

// MinCutReachable reports whether node v lies on the source side of the
// minimum cut the last MaxFlow call left behind: v was reachable from s in
// the final residual BFS (the phase that failed to reach t). The partition
// is a certificate — for ANY capacity assignment, the sum of capacities on
// edges crossing it bounds the max flow from above — which is what lets a
// parametric search certify infeasible capacity probes without running
// augmentation. Valid until the next MaxFlow; meaningless before the first.
func (nw *Network) MinCutReachable(v int) bool {
	return v >= 0 && v < nw.n && nw.level[v] >= 0
}

// MaxFlowResume pushes only the augmenting difference on the retained
// residual network and returns the flow added by this call — the warm half
// of the incremental parametric path (RaiseCapacity + MaxFlowResume),
// alongside the from-scratch Reset+MaxFlow path. On a warm network it
// performs zero allocations.
func (nw *Network) MaxFlowResume(s, t int) (float64, error) {
	return nw.MaxFlow(s, t)
}

// MaxFlow computes the maximum s-t flow with Dinic's algorithm and returns
// its value. The network retains the flow (inspect with Flow); calling
// MaxFlow again continues from the current residual state — call Reset first
// to solve from scratch. A warm call performs zero allocations.
func (nw *Network) MaxFlow(s, t int) (float64, error) {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n || s == t {
		return 0, fmt.Errorf("flow: bad terminals s=%d t=%d", s, t)
	}
	level, iter := nw.level, nw.iter
	caps, to, next, heads := nw.cap, nw.to, nw.next, nw.heads
	total := 0.0
	for {
		// BFS level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue := append(nw.queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			lv := level[u] + 1
			for e := heads[u]; e != -1; e = next[e] {
				v := to[e]
				if caps[e] > Eps && level[v] < 0 {
					level[v] = lv
					queue = append(queue, v)
				}
			}
		}
		nw.queue = queue[:0]
		if level[t] < 0 {
			return total, nil
		}
		copy(iter, heads)
		// Blocking flow via iterative DFS.
		for {
			pushed := nw.augment(s, t, level, iter)
			if pushed <= Eps {
				break
			}
			total += pushed
		}
	}
}

// augment finds one augmenting path in the level graph and pushes its
// bottleneck, returning the pushed amount (0 when s is exhausted for this
// phase). The path is an explicit edge stack rather than a call stack; every
// admissible edge on the stack has residual > Eps, so the bottleneck — the
// exact min over stacked residuals — is always > Eps once t is reached.
// Dead ends mark level[u] = -2 and advance the parent's iterator past the
// edge that led in, mirroring the advance-on-failure of the recursive form.
func (nw *Network) augment(s, t int, level, iter []int32) float64 {
	caps, to, next := nw.cap, nw.to, nw.next
	path := nw.path[:0]
	u, tt := int32(s), int32(t)
	for {
		if u == tt {
			d := math.Inf(1)
			for _, e := range path {
				if c := caps[e]; c < d {
					d = c
				}
			}
			for _, e := range path {
				caps[e] -= d
				caps[e^1] += d
			}
			nw.path = path[:0]
			return d
		}
		e := iter[u]
		lv := level[u] + 1
		for ; e != -1; e = next[e] {
			if caps[e] > Eps && level[to[e]] == lv {
				break
			}
		}
		iter[u] = e
		if e == -1 {
			level[u] = -2 // dead end on this phase
			if len(path) == 0 {
				nw.path = path
				return 0
			}
			pe := path[len(path)-1]
			path = path[:len(path)-1]
			pu := to[pe^1]
			iter[pu] = next[pe]
			u = pu
			continue
		}
		path = append(path, e)
		u = to[e]
	}
}
