package flow

import (
	"math"
	"math/rand"
	"testing"
)

func mustNet(t *testing.T, n int) *Network {
	t.Helper()
	nw, err := NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func addEdge(t *testing.T, nw *Network, u, v int, c float64) int {
	t.Helper()
	id, err := nw.AddEdge(u, v, c)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(1); err == nil {
		t.Error("1 node should fail")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	nw := mustNet(t, 3)
	if _, err := nw.AddEdge(-1, 2, 1); err == nil {
		t.Error("negative node should fail")
	}
	if _, err := nw.AddEdge(0, 3, 1); err == nil {
		t.Error("out of range node should fail")
	}
	if _, err := nw.AddEdge(0, 1, -1); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := nw.AddEdge(0, 1, math.NaN()); err == nil {
		t.Error("NaN capacity should fail")
	}
}

func TestMaxFlowValidation(t *testing.T) {
	nw := mustNet(t, 3)
	if _, err := nw.MaxFlow(0, 0); err == nil {
		t.Error("s == t should fail")
	}
	if _, err := nw.MaxFlow(0, 5); err == nil {
		t.Error("t out of range should fail")
	}
}

func TestSingleEdge(t *testing.T) {
	nw := mustNet(t, 2)
	id := addEdge(t, nw, 0, 1, 3.5)
	f, err := nw.MaxFlow(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-3.5) > Eps {
		t.Errorf("flow %v, want 3.5", f)
	}
	if math.Abs(nw.Flow(id)-3.5) > Eps {
		t.Errorf("edge flow %v", nw.Flow(id))
	}
}

func TestDisconnected(t *testing.T) {
	nw := mustNet(t, 4)
	addEdge(t, nw, 0, 1, 5)
	addEdge(t, nw, 2, 3, 5)
	f, err := nw.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("disconnected flow %v", f)
	}
}

func TestClassicDiamond(t *testing.T) {
	// s=0, a=1, b=2, t=3. Max flow 2: bottlenecked on the s edges.
	nw := mustNet(t, 4)
	addEdge(t, nw, 0, 1, 1)
	addEdge(t, nw, 0, 2, 1)
	addEdge(t, nw, 1, 3, 2)
	addEdge(t, nw, 2, 3, 2)
	addEdge(t, nw, 1, 2, 10) // cross edge should not help
	f, err := nw.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-2) > Eps {
		t.Errorf("diamond flow %v, want 2", f)
	}
}

func TestAugmentingPathRequired(t *testing.T) {
	// The classic example where a greedy path choice requires flow to be
	// rerouted through the residual graph.
	nw := mustNet(t, 4)
	addEdge(t, nw, 0, 1, 1)
	addEdge(t, nw, 0, 2, 1)
	addEdge(t, nw, 1, 2, 1)
	addEdge(t, nw, 1, 3, 1)
	addEdge(t, nw, 2, 3, 1)
	f, err := nw.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-2) > Eps {
		t.Errorf("flow %v, want 2", f)
	}
}

func TestBipartiteMatching(t *testing.T) {
	// 3x3 bipartite: left i connects to right i and (i+1)%3; perfect
	// matching of size 3 as unit-capacity flow.
	nw := mustNet(t, 8) // 0 source, 1-3 left, 4-6 right, 7 sink
	for i := 1; i <= 3; i++ {
		addEdge(t, nw, 0, i, 1)
		addEdge(t, nw, i+3, 7, 1)
	}
	for i := 0; i < 3; i++ {
		addEdge(t, nw, 1+i, 4+i, 1)
		addEdge(t, nw, 1+i, 4+(i+1)%3, 1)
	}
	f, err := nw.MaxFlow(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-3) > Eps {
		t.Errorf("matching flow %v, want 3", f)
	}
}

// TestFlowConservationRandom checks conservation and capacity constraints on
// random graphs, and that the flow value equals net outflow of the source.
func TestFlowConservationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(15)
		nw := mustNet(t, n)
		type edge struct {
			id   int
			u, v int
			c    float64
		}
		var edges []edge
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := rng.Float64() * 10
			id := addEdge(t, nw, u, v, c)
			edges = append(edges, edge{id, u, v, c})
		}
		val, err := nw.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		net := make([]float64, n)
		for _, e := range edges {
			f := nw.Flow(e.id)
			if f < -Eps || f > e.c+Eps {
				t.Fatalf("edge (%d,%d) flow %v out of [0,%v]", e.u, e.v, f, e.c)
			}
			net[e.u] -= f
			net[e.v] += f
		}
		for i := 1; i < n-1; i++ {
			if math.Abs(net[i]) > 1e-6 {
				t.Fatalf("conservation violated at %d: %v", i, net[i])
			}
		}
		if math.Abs(-net[0]-val) > 1e-6 || math.Abs(net[n-1]-val) > 1e-6 {
			t.Fatalf("source/sink imbalance: out=%v in=%v val=%v", -net[0], net[n-1], val)
		}
	}
}

// TestMaxFlowMinCutRandom cross-checks Dinic against a brute-force minimum
// cut on tiny graphs (max-flow min-cut theorem).
func TestMaxFlowMinCutRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(4) // brute force over 2^n cuts
		type edge struct {
			u, v int
			c    float64
		}
		var edges []edge
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, edge{u, v, float64(1 + rng.Intn(9))})
		}
		nw := mustNet(t, n)
		for _, e := range edges {
			addEdge(t, nw, e.u, e.v, e.c)
		}
		s, tt := 0, n-1
		val, err := nw.MaxFlow(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		minCut := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<s) == 0 || mask&(1<<tt) != 0 {
				continue // s must be on the source side, t on the sink side
			}
			cut := 0.0
			for _, e := range edges {
				if mask&(1<<e.u) != 0 && mask&(1<<e.v) == 0 {
					cut += e.c
				}
			}
			if cut < minCut {
				minCut = cut
			}
		}
		if math.Abs(val-minCut) > 1e-6 {
			t.Fatalf("trial %d: maxflow %v != mincut %v (edges %v)", trial, val, minCut, edges)
		}
	}
}
