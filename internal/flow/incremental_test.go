package flow

import (
	"math"
	"math/rand"
	"testing"
)

// TestRaiseCapacityPreservesFlow pins the monotonicity contract: raising a
// capacity keeps the retained flow valid, and resuming augmentation reaches
// the same maximum value a from-scratch solve at the raised capacities finds.
func TestRaiseCapacityPreservesFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		nw, ids, s, tt := randomNetwork(t, rng)
		base, err := nw.MaxFlow(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.ValidateFlow(s, tt); err != nil {
			t.Fatalf("trial %d after solve: %v", trial, err)
		}
		// Raise a random subset of edges, checking the flow stays untouched.
		flows := make([]float64, len(ids))
		for i, id := range ids {
			flows[i] = nw.Flow(id)
		}
		total := base
		for _, id := range ids {
			if rng.Intn(2) == 0 {
				continue
			}
			if err := nw.RaiseCapacity(id, nw.base[id]+rng.Float64()*5); err != nil {
				t.Fatal(err)
			}
		}
		for i, id := range ids {
			if nw.Flow(id) != flows[i] {
				t.Fatalf("trial %d: RaiseCapacity moved flow on edge %d: %v != %v",
					trial, id, nw.Flow(id), flows[i])
			}
		}
		if err := nw.ValidateFlow(s, tt); err != nil {
			t.Fatalf("trial %d after raises: %v", trial, err)
		}
		pushed, err := nw.MaxFlowResume(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		total += pushed
		if err := nw.ValidateFlow(s, tt); err != nil {
			t.Fatalf("trial %d after resume: %v", trial, err)
		}
		// From-scratch reference at the raised capacities.
		nw.Reset()
		fresh, err := nw.MaxFlow(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(total-fresh) > 1e-6 {
			t.Fatalf("trial %d: resumed total %v != fresh %v", trial, total, fresh)
		}
	}
}

func TestRaiseCapacityValidation(t *testing.T) {
	nw := mustNet(t, 3)
	id := addEdge(t, nw, 0, 1, 2)
	if err := nw.RaiseCapacity(id+1, 3); err == nil {
		t.Error("reverse edge id should fail")
	}
	if err := nw.RaiseCapacity(99, 3); err == nil {
		t.Error("out-of-range id should fail")
	}
	if err := nw.RaiseCapacity(id, 1); err == nil {
		t.Error("lowering should fail (raise-only)")
	}
	if err := nw.RaiseCapacity(id, math.NaN()); err == nil {
		t.Error("NaN should fail")
	}
	if err := nw.RaiseCapacity(id, 2); err != nil {
		t.Errorf("no-op raise to current capacity should pass: %v", err)
	}
}

// TestCaptureRestoreRoundTrip pins the rewind contract: restoring a snapshot
// brings back the exact per-edge residual state, bit for bit, so a resumed
// search replays identically.
func TestCaptureRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 20; trial++ {
		nw, ids, s, tt := randomNetwork(t, rng)
		if _, err := nw.MaxFlow(s, tt); err != nil {
			t.Fatal(err)
		}
		var st State
		nw.CaptureState(&st)
		flows := make([]float64, len(ids))
		for i, id := range ids {
			flows[i] = nw.Flow(id)
		}
		// Perturb: raise everything and resume, then restore.
		for _, id := range ids {
			if err := nw.RaiseCapacity(id, nw.base[id]+3); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := nw.MaxFlowResume(s, tt); err != nil {
			t.Fatal(err)
		}
		if err := nw.RestoreState(&st); err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			if nw.Flow(id) != flows[i] {
				t.Fatalf("trial %d: restored flow on edge %d = %v, want %v",
					trial, id, nw.Flow(id), flows[i])
			}
		}
		// A structure change invalidates the snapshot.
		if _, err := nw.AddNodes(1); err != nil {
			t.Fatal(err)
		}
		if err := nw.RestoreState(&st); err == nil {
			t.Error("restore across AddNodes should fail")
		}
	}
}

// TestAddNodesExtendsInPlace checks that appended nodes participate in new
// edges while old edges, ids, and flow survive.
func TestAddNodesExtendsInPlace(t *testing.T) {
	nw := mustNet(t, 3)
	id := addEdge(t, nw, 0, 1, 2)
	addEdge(t, nw, 1, 2, 2)
	if f, err := nw.MaxFlow(0, 2); err != nil || math.Abs(f-2) > Eps {
		t.Fatalf("initial flow %v, %v", f, err)
	}
	first, err := nw.AddNodes(2)
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 || nw.N() != 5 {
		t.Fatalf("AddNodes returned %d, n=%d", first, nw.N())
	}
	if nw.Flow(id) != 2 {
		t.Errorf("flow lost across AddNodes: %v", nw.Flow(id))
	}
	// A second disjoint route through the new nodes: 0 -> 3 -> 4 -> 2.
	addEdge(t, nw, 0, 3, 1.5)
	addEdge(t, nw, 3, 4, 1.5)
	addEdge(t, nw, 4, 2, 1.5)
	pushed, err := nw.MaxFlowResume(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pushed-1.5) > Eps {
		t.Errorf("resumed difference %v, want 1.5", pushed)
	}
	if err := nw.ValidateFlow(0, 2); err != nil {
		t.Error(err)
	}
	if _, err := nw.AddNodes(-1); err == nil {
		t.Error("negative count should fail")
	}
}

// TestValidateFlowCatchesViolations corrupts residual state by hand and
// checks the validator notices.
func TestValidateFlowCatchesViolations(t *testing.T) {
	nw := mustNet(t, 4)
	a := addEdge(t, nw, 0, 1, 2)
	b := addEdge(t, nw, 1, 2, 2)
	addEdge(t, nw, 2, 3, 2)
	if _, err := nw.MaxFlow(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := nw.ValidateFlow(0, 3); err != nil {
		t.Fatalf("valid flow rejected: %v", err)
	}
	if err := nw.ValidateFlow(0, 0); err == nil {
		t.Error("bad terminals should fail")
	}
	// Conservation violation: drain flow off edge a only, so node 1 forwards
	// more than it receives while every edge stays within capacity.
	nw.cap[a^1] -= 1
	if err := nw.ValidateFlow(0, 3); err == nil {
		t.Error("conservation violation not caught")
	}
	nw.cap[a^1] += 1
	// Capacity violation: push more through b than its capacity.
	nw.cap[b^1] += 1.5
	if err := nw.ValidateFlow(0, 3); err == nil {
		t.Error("capacity violation not caught")
	}
}

// TestWarmResumeAllocatesNothing pins the incremental path's zero-alloc
// contract: capture, raise, resume, and restore on a warm network allocate
// nothing — the mirror of TestWarmSolveAllocatesNothing for the parametric
// ladder.
func TestWarmResumeAllocatesNothing(t *testing.T) {
	nw, err := buildBipartite(40)
	if err != nil {
		t.Fatal(err)
	}
	src, sink := 0, 81
	if _, err := nw.MaxFlow(src, sink); err != nil {
		t.Fatal(err)
	}
	var st State
	nw.CaptureState(&st)
	raise := 4.0
	allocs := testing.AllocsPerRun(50, func() {
		if err := nw.RestoreState(&st); err != nil {
			t.Fatal(err)
		}
		raise += 0.5
		for id := 0; id < 40*2; id += 2 { // the 40 source edges, interleaved with sink edges
			if nw.to[id^1] != 0 {
				continue
			}
			if err := nw.RaiseCapacity(id, raise); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := nw.MaxFlowResume(src, sink); err != nil {
			t.Fatal(err)
		}
		nw.CaptureState(&st)
	})
	if allocs != 0 {
		t.Errorf("warm resume cycle allocated %v times, want 0", allocs)
	}
}
