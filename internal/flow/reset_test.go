package flow

import (
	"math"
	"math/rand"
	"testing"
)

// randomNetwork builds a random graph twice — once into a fresh network,
// once via build(nw) into a caller-provided one — so tests can compare warm
// and cold paths edge for edge.
func randomNetwork(t *testing.T, rng *rand.Rand) (*Network, []int, int, int) {
	t.Helper()
	n := 5 + rng.Intn(15)
	nw := mustNet(t, n)
	var ids []int
	for i := 0; i < n*3; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		ids = append(ids, addEdge(t, nw, u, v, rng.Float64()*10))
	}
	return nw, ids, 0, n - 1
}

// TestResetMatchesFresh pins reset ≡ fresh for the flow layer: solving,
// resetting, and solving again yields the same value and the same per-edge
// flows as the first (fresh) solve.
func TestResetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		nw, ids, s, tt := randomNetwork(t, rng)
		fresh, err := nw.MaxFlow(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		freshFlows := make([]float64, len(ids))
		for i, id := range ids {
			freshFlows[i] = nw.Flow(id)
		}
		for rep := 0; rep < 3; rep++ {
			nw.Reset()
			warm, err := nw.MaxFlow(s, tt)
			if err != nil {
				t.Fatal(err)
			}
			if warm != fresh {
				t.Fatalf("trial %d rep %d: warm flow %v != fresh %v", trial, rep, warm, fresh)
			}
			for i, id := range ids {
				if nw.Flow(id) != freshFlows[i] {
					t.Fatalf("trial %d rep %d: edge %d flow %v != fresh %v",
						trial, rep, id, nw.Flow(id), freshFlows[i])
				}
			}
		}
	}
}

// TestWarmSolveAllocatesNothing pins the tentpole's zero-alloc contract: a
// reset-then-MaxFlow on a warm network performs no allocations.
func TestWarmSolveAllocatesNothing(t *testing.T) {
	nw := mustNet(t, 6)
	addEdge(t, nw, 0, 1, 3)
	addEdge(t, nw, 0, 2, 2)
	addEdge(t, nw, 1, 3, 1)
	addEdge(t, nw, 2, 3, 4)
	addEdge(t, nw, 1, 4, 2)
	addEdge(t, nw, 4, 5, 2)
	addEdge(t, nw, 3, 5, 5)
	if _, err := nw.MaxFlow(0, 5); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		nw.Reset()
		if _, err := nw.MaxFlow(0, 5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Reset+MaxFlow allocated %v times, want 0", allocs)
	}
}

func TestSetCapacity(t *testing.T) {
	nw := mustNet(t, 3)
	id := addEdge(t, nw, 0, 1, 1)
	addEdge(t, nw, 1, 2, 10)
	if f, err := nw.MaxFlow(0, 2); err != nil || math.Abs(f-1) > Eps {
		t.Fatalf("initial flow %v, %v", f, err)
	}
	// Rewriting the bottleneck survives Reset: the new value is the base.
	if err := nw.SetCapacity(id, 7); err != nil {
		t.Fatal(err)
	}
	nw.Reset()
	if f, err := nw.MaxFlow(0, 2); err != nil || math.Abs(f-7) > Eps {
		t.Fatalf("rewritten flow %v, %v, want 7", f, err)
	}
	nw.Reset()
	if f, err := nw.MaxFlow(0, 2); err != nil || math.Abs(f-7) > Eps {
		t.Fatalf("flow after second reset %v, %v, want 7", f, err)
	}
	// SetCapacity discards flow on the pair even without a full Reset.
	if err := nw.SetCapacity(id, 2); err != nil {
		t.Fatal(err)
	}
	if f := nw.Flow(id); f != 0 {
		t.Errorf("flow on rewritten edge = %v, want 0", f)
	}
}

func TestSetCapacityValidation(t *testing.T) {
	nw := mustNet(t, 3)
	id := addEdge(t, nw, 0, 1, 1)
	if err := nw.SetCapacity(id+1, 2); err == nil {
		t.Error("reverse edge id should fail")
	}
	if err := nw.SetCapacity(99, 2); err == nil {
		t.Error("out-of-range id should fail")
	}
	if err := nw.SetCapacity(id, -1); err == nil {
		t.Error("negative capacity should fail")
	}
	if err := nw.SetCapacity(id, math.NaN()); err == nil {
		t.Error("NaN capacity should fail")
	}
}

// TestReinitMatchesFresh pins that rebuilding into a reused network is
// indistinguishable from a fresh one, across changing node counts.
func TestReinitMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	warm := &Network{}
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(15)
		type edge struct {
			u, v int
			c    float64
		}
		var edges []edge
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, edge{u, v, rng.Float64() * 10})
		}
		fresh := mustNet(t, n)
		if err := warm.Reinit(n); err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			idF := addEdge(t, fresh, e.u, e.v, e.c)
			idW, err := warm.AddEdge(e.u, e.v, e.c)
			if err != nil {
				t.Fatal(err)
			}
			if idF != idW {
				t.Fatalf("edge ids diverge: fresh %d warm %d", idF, idW)
			}
		}
		vF, err := fresh.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		vW, err := warm.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		if vF != vW {
			t.Fatalf("trial %d: reinit flow %v != fresh %v", trial, vW, vF)
		}
	}
	if err := warm.Reinit(1); err == nil {
		t.Error("Reinit(1) should fail")
	}
}
