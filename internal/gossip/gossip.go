// Package gossip implements a derandomized gossip alternative to the
// diffusing-computation search of package diffuse: an initiator starts a
// rumor; every node that hears a fresh rumor forwards it to at most Fanout
// neighbors instead of its whole neighborhood. Termination detection and the
// Phase II payload path are inherited from the Dijkstra-Scholten scheme —
// every forwarded rumor is acknowledged, acks drain up the first-parent
// tree — so a gossip search always completes, but with a fanout below the
// node degree the rumor covers only a subgraph and may miss the only idle
// candidate. Fanout is the fidelity/traffic knob: fewer messages, lower
// discovery probability.
//
// Gossip protocols pick forwarding targets at random; drawing from the
// simulator's RNG stream inside handlers would entangle protocol choices
// with the delivery scheduler, so the peer selection is *derandomized*: the
// forwarded subset is a deterministic mix of (initiator, sequence, self)
// rotated over the neighbor list. Episodes stay single-seed reproducible
// and bit-identical across worker counts, and different searches (and
// different nodes) still spread over different subsets, which is all the
// gossip family needs from its randomness.
//
// With Fanout 0 (or >= the node degree) the flood, the acknowledgement
// tree, and therefore the entire message schedule coincide with package
// diffuse's computation message for message — pinned by the online layer's
// tests — so the gossip engine degrades gracefully to the exact protocol it
// replaces.
package gossip

import (
	"fmt"

	"repro/internal/sim"
)

// Message kinds owned by this package (range 8..15 of the sim.Msg kind
// space; 1..7 belongs to package diffuse). Operand layout per kind:
//
//	KindRumor   — A: initiator id, B: sequence number (the fanout-limited
//	              Phase I probe)
//	KindAck     — A: initiator id, B: sequence number, C: 1 if the subtree
//	              below the sender contains a candidate, else 0
//	KindForward — A: initiator id, B: sequence number, C/D: the two opaque
//	              payload words (Payload.A / Payload.B)
const (
	KindRumor uint8 = iota + 8
	KindAck
	KindForward
)

// Payload is the opaque two-word Phase II payload riding KindForward
// messages along the child chain from initiator to candidate.
type Payload struct {
	A, B uint32
}

// State is the message-transfer state, mirroring diffuse.State.
type State int

// Message-transfer states.
const (
	// Waiting: not currently partaking in a search.
	Waiting State = iota + 1
	// Spreading: heard the rumor, forwarded it, awaiting acks.
	Spreading
	// Initiator: started the current search and awaiting acks.
	Initiator
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Waiting:
		return "waiting"
	case Spreading:
		return "spreading"
	case Initiator:
		return "initiator"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config wires an Engine to its host.
type Config struct {
	// Neighbors returns the candidate forwarding targets (for the online
	// strategy: same-cube vehicles within communication range).
	Neighbors func() []sim.NodeID
	// IsCandidate reports whether this node satisfies the search predicate.
	IsCandidate func() bool
	// Fanout returns the per-node forwarding bound for the current episode;
	// 0 (or >= the neighbor count) means forward to every neighbor. Read
	// per flood so a pooled host can re-tune it between episodes without
	// rebuilding engines.
	Fanout func() int
	// OnComplete fires at the initiator when its search terminates. found
	// reports whether a candidate was located within the gossiped subgraph.
	OnComplete func(ctx sim.Sender, seq int, found bool)
	// OnPayload fires at the candidate when a Phase II payload arrives.
	OnPayload func(ctx sim.Sender, payload Payload)
}

// Engine holds the per-node gossip state: structurally the diffusing
// computation's (num, par, child, init) over the fanout-limited subgraph.
type Engine struct {
	cfg Config

	state State
	num   int        // outstanding acks
	par   sim.NodeID // parent in the rumor tree
	child sim.NodeID // first subtree that reported a candidate
	init  sim.NodeID // initiator of the search last joined
	seq   int        // sequence number of the search last joined

	nextSeq int // local counter for searches this node initiates
}

// New creates an engine. Neighbors and IsCandidate are required; Fanout and
// the callbacks may be nil (nil Fanout means full flood).
func New(cfg Config) (*Engine, error) {
	if cfg.Neighbors == nil {
		return nil, fmt.Errorf("gossip: Neighbors is required")
	}
	if cfg.IsCandidate == nil {
		return nil, fmt.Errorf("gossip: IsCandidate is required")
	}
	return &Engine{cfg: cfg, state: Waiting, par: sim.None, child: sim.None, init: sim.None}, nil
}

// State returns the node's current message-transfer state.
func (e *Engine) State() State { return e.state }

// Reset restores the engine to its freshly constructed state without
// reallocating — the same warm-start contract as diffuse.Engine.Reset.
func (e *Engine) Reset() {
	e.state = Waiting
	e.num = 0
	e.par = sim.None
	e.child = sim.None
	e.init = sim.None
	e.seq = 0
	e.nextSeq = 0
}

func rumorMsg(init sim.NodeID, seq int) sim.Msg {
	return sim.Msg{Kind: KindRumor, A: uint32(init), B: uint32(seq)}
}

func ackMsg(init sim.NodeID, seq int, found bool) sim.Msg {
	m := sim.Msg{Kind: KindAck, A: uint32(init), B: uint32(seq)}
	if found {
		m.C = 1
	}
	return m
}

// spread forwards the rumor to this node's fanout subset and returns how
// many targets were contacted. The subset is min(fanout, degree) neighbors
// taken consecutively from a start offset mixed from (initiator, sequence,
// self) — the derandomized stand-in for random peer selection. No slice is
// built: the warm search path stays allocation-free.
func (e *Engine) spread(ctx sim.Sender, init sim.NodeID, seq int) int {
	neigh := e.cfg.Neighbors()
	n := len(neigh)
	if n == 0 {
		return 0
	}
	f := 0
	if e.cfg.Fanout != nil {
		f = e.cfg.Fanout()
	}
	// One inline rumor value fans out to every chosen target: each send
	// copies three words into the link's ring buffer.
	msg := rumorMsg(init, seq)
	if f <= 0 || f >= n {
		for _, t := range neigh {
			ctx.Send(t, msg)
		}
		return n
	}
	start := (31*int(init) + 17*int(ctx.Self()) + 13*seq) % n
	for i := 0; i < f; i++ {
		ctx.Send(neigh[(start+i)%n], msg)
	}
	return f
}

// StartSearch begins a new gossip search with this node as the initiator
// and returns the search's sequence number. If the fanout subset is empty
// the search completes immediately (found=false).
func (e *Engine) StartSearch(ctx sim.Sender) int {
	e.nextSeq++
	seq := e.nextSeq
	e.state = Initiator
	e.par = sim.None
	e.child = sim.None
	e.init = ctx.Self()
	e.seq = seq
	e.num = e.spread(ctx, ctx.Self(), seq)
	if e.num == 0 {
		e.state = Waiting
		if e.cfg.OnComplete != nil {
			e.cfg.OnComplete(ctx, seq, false)
		}
	}
	return seq
}

// Handle processes a message if it belongs to the gossip protocol and
// reports whether it consumed it. Hosts call this first from OnMessage.
func (e *Engine) Handle(ctx sim.Sender, from sim.NodeID, m sim.Msg) bool {
	switch m.Kind {
	case KindRumor:
		e.onRumor(ctx, from, sim.NodeID(m.A), int(m.B))
	case KindAck:
		e.onAck(ctx, from, sim.NodeID(m.A), int(m.B), m.C != 0)
	case KindForward:
		e.onForward(ctx, m)
	default:
		return false
	}
	return true
}

func (e *Engine) onRumor(ctx sim.Sender, from, init sim.NodeID, seq int) {
	fresh := e.init != init || e.seq != seq
	if e.state != Waiting || !fresh {
		// Already infected (or busy with another search): ack immediately so
		// the sender's outstanding counter drains.
		ctx.Send(from, ackMsg(init, seq, false))
		return
	}
	e.par = from
	e.init = init
	e.seq = seq
	e.child = sim.None
	if e.cfg.IsCandidate() {
		// A candidate answers immediately and stays waiting; it becomes the
		// leaf of the rumor path.
		ctx.Send(from, ackMsg(init, seq, true))
		return
	}
	e.state = Spreading
	e.num = e.spread(ctx, init, seq)
	if e.num == 0 {
		e.state = Waiting
		ctx.Send(from, ackMsg(init, seq, false))
	}
}

func (e *Engine) onAck(ctx sim.Sender, from, init sim.NodeID, seq int, found bool) {
	if init != e.init || seq != e.seq || (e.state != Spreading && e.state != Initiator) {
		// Stale ack from an abandoned search; drop it.
		return
	}
	e.num--
	if found && e.child == sim.None {
		e.child = from
		if e.state == Spreading {
			// Propagate the discovery up immediately.
			ctx.Send(e.par, ackMsg(init, seq, true))
		}
	}
	if e.num == 0 {
		wasInitiator := e.state == Initiator
		e.state = Waiting
		if wasInitiator {
			if e.cfg.OnComplete != nil {
				e.cfg.OnComplete(ctx, seq, e.child != sim.None)
			}
			return
		}
		if e.child == sim.None {
			ctx.Send(e.par, ackMsg(init, seq, false))
		}
	}
}

// ForwardPayload launches Phase II from the initiator after a successful
// search: the payload rides the child chain to the candidate.
func (e *Engine) ForwardPayload(ctx sim.Sender, seq int, payload Payload) error {
	if e.init != ctx.Self() || e.seq != seq {
		return fmt.Errorf("gossip: node %d does not own search seq %d", ctx.Self(), seq)
	}
	if e.child == sim.None {
		return fmt.Errorf("gossip: search %d found no candidate", seq)
	}
	ctx.Send(e.child, sim.Msg{
		Kind: KindForward,
		A:    uint32(ctx.Self()), B: uint32(seq),
		C: payload.A, D: payload.B,
	})
	return nil
}

func (e *Engine) onForward(ctx sim.Sender, m sim.Msg) {
	if e.init != sim.NodeID(m.A) || e.seq != int(m.B) {
		// A forward for a search this node never joined; drop.
		return
	}
	if e.child != sim.None {
		ctx.Send(e.child, m)
		return
	}
	if e.cfg.OnPayload != nil {
		e.cfg.OnPayload(ctx, Payload{A: m.C, B: m.D})
	}
}
