package gossip

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// kindStart is a host-level test message (32..127 is the test range of the
// sim.Msg kind space) telling a host to initiate a search.
const kindStart uint8 = 41

func startMsg() sim.Msg { return sim.Msg{Kind: kindStart} }

// host is a minimal process wrapping an Engine over a fixed graph.
type host struct {
	id        sim.NodeID
	eng       *Engine
	adj       []sim.NodeID
	candidate bool
	fanout    int

	completions []bool    // found flags, in completion order
	payloads    []Payload // Phase II deliveries
	autoForward bool
	autoPayload Payload
}

func newHost(t *testing.T, id sim.NodeID, adj []sim.NodeID, candidate bool, fanout int) *host {
	t.Helper()
	h := &host{id: id, adj: adj, candidate: candidate, fanout: fanout}
	eng, err := New(Config{
		Neighbors:   func() []sim.NodeID { return h.adj },
		IsCandidate: func() bool { return h.candidate },
		Fanout:      func() int { return h.fanout },
		OnComplete: func(ctx sim.Sender, seq int, found bool) {
			h.completions = append(h.completions, found)
			if found && h.autoForward {
				if err := h.eng.ForwardPayload(ctx, seq, h.autoPayload); err != nil {
					t.Errorf("forward: %v", err)
				}
			}
		},
		OnPayload: func(_ sim.Sender, payload Payload) {
			h.payloads = append(h.payloads, payload)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.eng = eng
	return h
}

func (h *host) OnMessage(ctx *sim.Context, from sim.NodeID, msg sim.Msg) {
	if h.eng.Handle(ctx, from, msg) {
		return
	}
	if msg.Kind == kindStart {
		h.eng.StartSearch(ctx)
	}
}

// buildNetwork wires hosts over an undirected adjacency list with a shared
// fanout bound.
func buildNetwork(t *testing.T, seed int64, edges [][2]int, n int, candidates map[int]bool, fanout int) (*sim.Network, []*host) {
	t.Helper()
	adj := make([][]sim.NodeID, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], sim.NodeID(e[1]))
		adj[e[1]] = append(adj[e[1]], sim.NodeID(e[0]))
	}
	net := sim.NewNetwork(seed)
	hosts := make([]*host, n)
	for i := 0; i < n; i++ {
		hosts[i] = newHost(t, sim.NodeID(i), adj[i], candidates[i], fanout)
		if err := net.Add(sim.NodeID(i), hosts[i]); err != nil {
			t.Fatal(err)
		}
	}
	return net, hosts
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{IsCandidate: func() bool { return false }}); err == nil {
		t.Error("missing Neighbors should fail")
	}
	if _, err := New(Config{Neighbors: func() []sim.NodeID { return nil }}); err == nil {
		t.Error("missing IsCandidate should fail")
	}
}

func TestFullFloodFindsReachableCandidate(t *testing.T) {
	// Path graph 0-1-2-3 with the only candidate at 3; fanout 0 = full
	// flood, so the rumor must reach it.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	net, hosts := buildNetwork(t, 1, edges, 4, map[int]bool{3: true}, 0)
	want := Payload{A: 1000, B: 42}
	hosts[0].autoForward = true
	hosts[0].autoPayload = want
	net.Inject(0, startMsg())
	if err := net.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].completions) != 1 || !hosts[0].completions[0] {
		t.Fatalf("initiator completions %v", hosts[0].completions)
	}
	if len(hosts[3].payloads) != 1 || hosts[3].payloads[0] != want {
		t.Fatalf("candidate payloads %v", hosts[3].payloads)
	}
}

func TestFanoutOneOnPathStillReaches(t *testing.T) {
	// On a path every interior node has degree 2; with fanout 1 the chosen
	// target is deterministic but may point backwards, so the search must
	// *terminate* either way — found or not, exactly one completion.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	net, hosts := buildNetwork(t, 1, edges, 4, map[int]bool{3: true}, 1)
	net.Inject(0, startMsg())
	if err := net.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].completions) != 1 {
		t.Fatalf("completions %v, want exactly one", hosts[0].completions)
	}
}

func TestSearchNoCandidate(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}}
	net, hosts := buildNetwork(t, 2, edges, 3, nil, 0)
	net.Inject(0, startMsg())
	if err := net.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].completions) != 1 || hosts[0].completions[0] {
		t.Fatalf("completions %v, want one false", hosts[0].completions)
	}
}

func TestIsolatedInitiator(t *testing.T) {
	net, hosts := buildNetwork(t, 3, nil, 1, nil, 2)
	net.Inject(0, startMsg())
	if err := net.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].completions) != 1 || hosts[0].completions[0] {
		t.Fatalf("isolated initiator completions %v", hosts[0].completions)
	}
}

// TestAlwaysTerminatesAnyFanout is the gossip analogue of the diffuse
// random-graph sweep: for random graphs and every fanout, the search must
// complete exactly once, never report a candidate when none exists, and
// deliver a successful payload exactly once to a true candidate.
func TestAlwaysTerminatesAnyFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(15)
		var edges [][2]int
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{rng.Intn(i), i})
		}
		for k := 0; k < n/2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		candidates := map[int]bool{}
		for i := 1; i < n; i++ {
			if rng.Intn(4) == 0 {
				candidates[i] = true
			}
		}
		for fanout := 0; fanout <= 3; fanout++ {
			net, hosts := buildNetwork(t, int64(trial), edges, n, candidates, fanout)
			hosts[0].autoForward = true
			hosts[0].autoPayload = Payload{A: uint32(trial), B: 9}
			net.Inject(0, startMsg())
			if err := net.Run(1_000_000); err != nil {
				t.Fatalf("trial %d fanout %d: %v", trial, fanout, err)
			}
			if len(hosts[0].completions) != 1 {
				t.Fatalf("trial %d fanout %d: completions %v", trial, fanout, hosts[0].completions)
			}
			found := hosts[0].completions[0]
			if found && len(candidates) == 0 {
				t.Fatalf("trial %d fanout %d: found without candidates", trial, fanout)
			}
			// Full flood on a connected graph has the diffuse guarantee:
			// found iff any candidate exists.
			if fanout == 0 && found != (len(candidates) > 0) {
				t.Fatalf("trial %d: full flood found=%v, candidates=%v", trial, found, candidates)
			}
			delivered := 0
			for i, h := range hosts {
				if len(h.payloads) > 0 && !candidates[i] {
					t.Fatalf("trial %d fanout %d: payload at non-candidate %d", trial, fanout, i)
				}
				delivered += len(h.payloads)
			}
			if found && delivered != 1 {
				t.Fatalf("trial %d fanout %d: payload delivered %d times", trial, fanout, delivered)
			}
		}
	}
}

// TestFanoutBoundsTraffic pins the fidelity/traffic knob's traffic side:
// on a dense graph, lowering the fanout can only lower (or keep) the
// delivered-message count of one search.
func TestFanoutBoundsTraffic(t *testing.T) {
	// Complete graph on 10 nodes, no candidates (worst-case full spread).
	n := 10
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	run := func(fanout int) int64 {
		net, hosts := buildNetwork(t, 5, edges, n, nil, fanout)
		net.Inject(0, startMsg())
		if err := net.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		if len(hosts[0].completions) != 1 {
			t.Fatalf("fanout %d: completions %v", fanout, hosts[0].completions)
		}
		return net.Delivered()
	}
	full := run(0)
	prev := full
	for fanout := n - 1; fanout >= 1; fanout-- {
		got := run(fanout)
		if got > prev {
			t.Errorf("fanout %d delivered %d messages, more than fanout %d's %d",
				fanout, got, fanout+1, prev)
		}
		prev = got
	}
	if one := run(1); one >= full {
		t.Errorf("fanout 1 delivered %d messages, full flood %d — no traffic saving", one, full)
	}
}

// TestEngineResetMatchesFresh pins the warm-start contract shared with the
// diffuse engine: after Reset, a search replays bit-for-bit.
func TestEngineResetMatchesFresh(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}}
	run := func(net *sim.Network, hosts []*host) (bool, int64) {
		net.Inject(0, startMsg())
		if err := net.Run(10_000); err != nil {
			t.Fatal(err)
		}
		if len(hosts[0].completions) != 1 {
			t.Fatalf("want 1 completion, got %d", len(hosts[0].completions))
		}
		return hosts[0].completions[0], net.Delivered()
	}
	net, hosts := buildNetwork(t, 11, edges, 5, map[int]bool{3: true}, 2)
	wantFound, wantMsgs := run(net, hosts)
	for i := 0; i < 3; i++ {
		net.Reset(11)
		for _, h := range hosts {
			h.eng.Reset()
			h.completions = nil
		}
		if f, m := run(net, hosts); f != wantFound || m != wantMsgs {
			t.Fatalf("reset replay %d diverged: found=%v msgs=%d, want %v/%d",
				i, f, m, wantFound, wantMsgs)
		}
	}
}

func TestForwardPayloadErrors(t *testing.T) {
	edges := [][2]int{{0, 1}}
	net, hosts := buildNetwork(t, 11, edges, 2, nil, 0)
	net.Inject(0, startMsg())
	if err := net.Run(1000); err != nil {
		t.Fatal(err)
	}
	fake := &fakeSender{self: 0}
	if err := hosts[0].eng.ForwardPayload(fake, 1, Payload{A: 1}); err == nil {
		t.Error("forwarding without a candidate should fail")
	}
	if err := hosts[0].eng.ForwardPayload(fake, 99, Payload{A: 1}); err == nil {
		t.Error("forwarding an unknown seq should fail")
	}
}

type fakeSender struct {
	self sim.NodeID
	sent []sim.Msg
}

func (f *fakeSender) Self() sim.NodeID { return f.self }
func (f *fakeSender) Send(_ sim.NodeID, msg sim.Msg) {
	f.sent = append(f.sent, msg)
}

func TestStateString(t *testing.T) {
	for _, s := range []State{Waiting, Spreading, Initiator, State(42)} {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
}
