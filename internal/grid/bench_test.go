package grid

import (
	"math/rand"
	"testing"
)

func BenchmarkNeighborhoodCount(b *testing.B) {
	box, err := NewBox(2, P(0, 0), P(15, 15))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NeighborhoodCount(box, int64(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveOmega(b *testing.B) {
	box, err := NewBox(2, P(0, 0), P(7, 7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SolveOmega(box, float64(1+i%100000))
	}
}

func BenchmarkPrefixSumBuild(b *testing.B) {
	g := MustNew(128, 128)
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, g.Len())
	for i := range vals {
		vals[i] = rng.Int63n(100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPrefixSum(g, vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxCubeSum(b *testing.B) {
	g := MustNew(128, 128)
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, g.Len())
	for i := range vals {
		vals[i] = rng.Int63n(100)
	}
	ps, err := NewPrefixSum(g, vals)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := ps.MaxCubeSum(1 + i%64); !ok {
			b.Fatal("cube does not fit")
		}
	}
}
