package grid

import (
	"errors"
	"fmt"
	"math"
)

// Box is an axis-aligned box of lattice points, inclusive on both ends, in a
// lattice of dimension Dim. Unused dimensions must have Lo=Hi=0 so that the
// side length is 1 and does not perturb counting formulas.
type Box struct {
	Lo, Hi Point
	Dim    int
}

// ErrOverflow is returned when an exact lattice count exceeds int64 range.
var ErrOverflow = errors.New("grid: lattice count overflows int64")

// NewBox constructs a box spanning lo..hi inclusive in dimension dim.
func NewBox(dim int, lo, hi Point) (Box, error) {
	if dim < 1 || dim > MaxDim {
		return Box{}, fmt.Errorf("grid: dimension %d out of range [1,%d]", dim, MaxDim)
	}
	for i := 0; i < dim; i++ {
		if lo[i] > hi[i] {
			return Box{}, fmt.Errorf("grid: box lo%v > hi%v in axis %d", lo, hi, i)
		}
	}
	for i := dim; i < MaxDim; i++ {
		if lo[i] != 0 || hi[i] != 0 {
			return Box{}, fmt.Errorf("grid: coordinates beyond dim %d must be zero", dim)
		}
	}
	return Box{Lo: lo, Hi: hi, Dim: dim}, nil
}

// Cube returns the dim-dimensional cube with the given corner and side
// length. side must be >= 1.
func Cube(dim int, corner Point, side int) (Box, error) {
	if side < 1 {
		return Box{}, fmt.Errorf("grid: cube side %d must be >= 1", side)
	}
	hi := corner
	for i := 0; i < dim; i++ {
		hi[i] += int32(side - 1)
	}
	return NewBox(dim, corner, hi)
}

// Side returns the number of lattice points along axis i.
func (b Box) Side(i int) int64 { return int64(b.Hi[i]-b.Lo[i]) + 1 }

// Volume returns the number of lattice points in the box. The product can
// overflow for enormous boxes; size-gating callers must use VolumeChecked.
func (b Box) Volume() int64 {
	v := int64(1)
	for i := 0; i < b.Dim; i++ {
		v *= b.Side(i)
	}
	return v
}

// VolumeChecked is Volume with overflow detection: it returns ErrOverflow
// instead of a wrapped product when the point count exceeds int64 range.
func (b Box) VolumeChecked() (int64, error) {
	v := int64(1)
	for i := 0; i < b.Dim; i++ {
		var err error
		if v, err = mulChecked(v, b.Side(i)); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// Contains reports whether p lies inside the box.
func (b Box) Contains(p Point) bool {
	for i := 0; i < b.Dim; i++ {
		if p[i] < b.Lo[i] || p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Dist returns the L1 distance from p to the box (0 if p is inside).
func (b Box) Dist(p Point) int {
	d := 0
	for i := 0; i < b.Dim; i++ {
		switch {
		case p[i] < b.Lo[i]:
			d += int(b.Lo[i] - p[i])
		case p[i] > b.Hi[i]:
			d += int(p[i] - b.Hi[i])
		}
	}
	return d
}

// Expand returns the box grown by r lattice steps in every axis direction.
// Note Expand(r) is the *bounding box* of N_r(b), not N_r(b) itself (the L1
// neighborhood has diamond-shaped corners).
func (b Box) Expand(r int) Box {
	e := b
	for i := 0; i < b.Dim; i++ {
		e.Lo[i] -= int32(r)
		e.Hi[i] += int32(r)
	}
	return e
}

// Points enumerates all lattice points in the box in row-major order.
func (b Box) Points() []Point {
	n := b.Volume()
	out := make([]Point, 0, n)
	p := b.Lo
	for {
		out = append(out, p)
		axis := b.Dim - 1
		for axis >= 0 {
			p[axis]++
			if p[axis] <= b.Hi[axis] {
				break
			}
			p[axis] = b.Lo[axis]
			axis--
		}
		if axis < 0 {
			return out
		}
	}
}

// binomial returns C(n, k) as int64, or an overflow error. k is tiny
// (k <= MaxDim) so the product form is exact with intermediate checks.
func binomial(n int64, k int) (int64, error) {
	if k < 0 || n < 0 {
		return 0, nil
	}
	if int64(k) > n {
		return 0, nil
	}
	result := int64(1)
	for i := 1; i <= k; i++ {
		// Multiply before divide stays exact because result always holds
		// C(n, i-1) * (partial numerator), and C(n,i)*i! fits whenever the
		// final product fits; guard multiplication against overflow.
		f := n - int64(k-i)
		if result > math.MaxInt64/f {
			return 0, ErrOverflow
		}
		result = result * f / int64(i)
	}
	return result, nil
}

// NeighborhoodCount returns |N_r(b)| exactly: the number of lattice points of
// Z^dim within L1 distance r of the box b. This is the central counting
// primitive of the thesis (the denominator of omega_T in eq. 1.1).
//
// Derivation: a point at offset vector t (t_i = distance outside the box
// along axis i, 0 if within the slab) is in N_r iff sum t_i <= r. Axis i
// contributes a_i positions when t_i = 0 and exactly 2 positions (one per
// side) for each t_i >= 1. Grouping by the set S of axes with t_i >= 1:
//
//	|N_r(b)| = sum over k=0..dim of 2^k * C(r, k) * e_{dim-k}(a)
//
// where e_j is the elementary symmetric polynomial of the side lengths a and
// C(r, k) counts positive integer k-vectors with sum <= r.
func NeighborhoodCount(b Box, r int64) (int64, error) {
	if r < 0 {
		return 0, fmt.Errorf("grid: negative radius %d", r)
	}
	sides := make([]int64, b.Dim)
	for i := range sides {
		sides[i] = b.Side(i)
	}
	elem := elementarySymmetric(sides)
	total := int64(0)
	pow2 := int64(1)
	for k := 0; k <= b.Dim; k++ {
		c, err := binomial(r, k)
		if err != nil {
			return 0, err
		}
		e := elem[b.Dim-k]
		term, err := mulChecked(pow2, c)
		if err != nil {
			return 0, err
		}
		term, err = mulChecked(term, e)
		if err != nil {
			return 0, err
		}
		if total > math.MaxInt64-term {
			return 0, ErrOverflow
		}
		total += term
		pow2 *= 2
	}
	return total, nil
}

// NeighborhoodCountFloat is NeighborhoodCount in float64 arithmetic, used by
// the omega solvers where r can be large and a relative error of ~1e-12 is
// irrelevant next to the thesis' constant factors.
func NeighborhoodCountFloat(b Box, r float64) float64 {
	return CompileNeighborhood(b).Count(r)
}

// NeighborhoodPoly is |N_r(b)| for one fixed box, precompiled as a
// polynomial in the radius (the elementary symmetric coefficients of the
// side lengths). Count evaluates it without allocating, which lets lpchar's
// coarse infeasibility bound screen every bisection rung off the heap.
// NeighborhoodCountFloat delegates here, so the two can never drift.
type NeighborhoodPoly struct {
	dim  int
	elem [MaxDim + 1]float64
}

// CompileNeighborhood precompiles the closed-form count for b.
func CompileNeighborhood(b Box) NeighborhoodPoly {
	np := NeighborhoodPoly{dim: b.Dim}
	var elem [MaxDim + 1]int64
	elem[0] = 1
	for i := 0; i < b.Dim; i++ {
		v := b.Side(i)
		for j := b.Dim; j >= 1; j-- {
			elem[j] += elem[j-1] * v
		}
	}
	for j := 0; j <= b.Dim; j++ {
		np.elem[j] = float64(elem[j])
	}
	return np
}

// Count evaluates |N_r(b)| in float64 — the same arithmetic, in the same
// order, as the pre-compilation NeighborhoodCountFloat, and allocation-free.
func (np NeighborhoodPoly) Count(r float64) float64 {
	if r < 0 {
		return 0
	}
	rf := math.Floor(r)
	total := 0.0
	pow2 := 1.0
	for k := 0; k <= np.dim; k++ {
		c := 1.0
		for i := 1; i <= k; i++ {
			c *= (rf - float64(k-i)) / float64(i)
		}
		if c < 0 {
			c = 0
		}
		total += pow2 * c * np.elem[np.dim-k]
		pow2 *= 2
	}
	return total
}

func mulChecked(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	if a > math.MaxInt64/b {
		return 0, ErrOverflow
	}
	return a * b, nil
}

// elementarySymmetric returns [e_0, e_1, ..., e_n] for the given values.
func elementarySymmetric(vals []int64) []int64 {
	e := make([]int64, len(vals)+1)
	e[0] = 1
	for _, v := range vals {
		for j := len(vals); j >= 1; j-- {
			e[j] += e[j-1] * v
		}
	}
	return e
}

// NeighborhoodPoints enumerates N_r(b) explicitly by scanning the bounding
// box. It is O(volume of Expand(r)) and exists to cross-check the closed
// form in tests and to drive small exact LP instances.
func NeighborhoodPoints(b Box, r int) []Point {
	bound := b.Expand(r)
	var out []Point
	for _, p := range bound.Points() {
		if b.Dist(p) <= r {
			out = append(out, p)
		}
	}
	return out
}
