package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustBox(t *testing.T, dim int, lo, hi Point) Box {
	t.Helper()
	b, err := NewBox(dim, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBoxValidation(t *testing.T) {
	if _, err := NewBox(0, P(0), P(0)); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := NewBox(2, P(1, 0), P(0, 0)); err == nil {
		t.Error("lo > hi should fail")
	}
	if _, err := NewBox(1, P(0, 5), P(0, 5)); err == nil {
		t.Error("nonzero coordinate beyond dim should fail")
	}
}

func TestCube(t *testing.T) {
	c, err := Cube(2, P(3, 4), 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lo != P(3, 4) || c.Hi != P(7, 8) {
		t.Fatalf("cube bounds %v..%v", c.Lo, c.Hi)
	}
	if c.Volume() != 25 {
		t.Fatalf("volume %d", c.Volume())
	}
	if _, err := Cube(2, P(0, 0), 0); err == nil {
		t.Error("side 0 should fail")
	}
}

func TestBoxDist(t *testing.T) {
	b := mustBox(t, 2, P(0, 0), P(2, 2))
	tests := []struct {
		p    Point
		want int
	}{
		{P(1, 1), 0},
		{P(0, 0), 0},
		{P(3, 1), 1},
		{P(-2, 1), 2},
		{P(4, 5), 5},
		{P(-1, -1), 2},
	}
	for _, tt := range tests {
		if got := b.Dist(tt.p); got != tt.want {
			t.Errorf("Dist(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestBoxPoints(t *testing.T) {
	b := mustBox(t, 2, P(0, 0), P(1, 2))
	pts := b.Points()
	if int64(len(pts)) != b.Volume() {
		t.Fatalf("got %d points, want %d", len(pts), b.Volume())
	}
	seen := make(map[Point]bool, len(pts))
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("point %v outside box", p)
		}
		if seen[p] {
			t.Errorf("duplicate point %v", p)
		}
		seen[p] = true
	}
}

func TestNeighborhoodCountKnownValues(t *testing.T) {
	// L1 ball sizes around a single point: 1-D: 2r+1; 2-D: 2r^2+2r+1.
	pt := mustBox(t, 2, P(0, 0), P(0, 0))
	for r := int64(0); r <= 10; r++ {
		want := 2*r*r + 2*r + 1
		got, err := NeighborhoodCount(pt, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("2-D ball r=%d: got %d, want %d", r, got, want)
		}
	}
	line := mustBox(t, 1, P(0), P(9))
	got, err := NeighborhoodCount(line, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10+6 { // segment of 10 plus 3 each side
		t.Errorf("1-D segment: got %d, want 16", got)
	}
}

func TestNeighborhoodCountMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		dim := 1 + rng.Intn(3)
		var lo, hi Point
		for i := 0; i < dim; i++ {
			lo[i] = int32(rng.Intn(5) - 2)
			hi[i] = lo[i] + int32(rng.Intn(4))
		}
		b, err := NewBox(dim, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.Intn(6)
		want := int64(len(NeighborhoodPoints(b, r)))
		got, err := NeighborhoodCount(b, int64(r))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("dim=%d box=%v..%v r=%d: closed form %d, enumeration %d",
				dim, lo, hi, r, got, want)
		}
		gotF := NeighborhoodCountFloat(b, float64(r)+0.7)
		if int64(gotF+0.5) != want {
			t.Errorf("float count mismatch: %v vs %d", gotF, want)
		}
	}
}

func TestNeighborhoodCountNegativeRadius(t *testing.T) {
	b := mustBox(t, 2, P(0, 0), P(1, 1))
	if _, err := NeighborhoodCount(b, -1); err == nil {
		t.Error("negative radius should error")
	}
	if NeighborhoodCountFloat(b, -2) != 0 {
		t.Error("float count for negative radius should be 0")
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n    int64
		k    int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 1, 5}, {5, 2, 10}, {5, 5, 1},
		{5, 6, 0}, {10, 3, 120}, {52, 4, 270725},
	}
	for _, tt := range tests {
		got, err := binomial(tt.n, tt.k)
		if err != nil {
			t.Fatalf("binomial(%d,%d): %v", tt.n, tt.k, err)
		}
		if got != tt.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestElementarySymmetric(t *testing.T) {
	e := elementarySymmetric([]int64{2, 3, 4})
	want := []int64{1, 9, 26, 24}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("e = %v, want %v", e, want)
		}
	}
}

func TestExpandContainsNeighborhood(t *testing.T) {
	f := func(lox, loy, w, h uint8, r uint8) bool {
		b, err := NewBox(2, P(int(lox%10), int(loy%10)),
			P(int(lox%10)+int(w%5), int(loy%10)+int(h%5)))
		if err != nil {
			return false
		}
		rr := int(r % 6)
		exp := b.Expand(rr)
		for _, p := range NeighborhoodPoints(b, rr) {
			if !exp.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
