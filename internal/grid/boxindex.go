package grid

import "fmt"

// BoxIndex is a dense row-major offset indexer over a Box: it maps every
// lattice point of the box to an offset in [0, Volume) and back. It is the
// bounded-region counterpart of Grid.Index — the identity that lets solvers
// working on a box neighborhood (the LP (2.1) supply graphs) replace
// map[Point] lookups with slice indexing, per the dense-index invariant in
// DESIGN.md.
type BoxIndex struct {
	box    Box
	stride [MaxDim]int64
	vol    int64
}

// NewBoxIndex builds the indexer for b.
func NewBoxIndex(b Box) BoxIndex {
	ix := BoxIndex{box: b, vol: b.Volume()}
	stride := int64(1)
	for i := b.Dim - 1; i >= 0; i-- {
		ix.stride[i] = stride
		stride *= b.Side(i)
	}
	return ix
}

// Box returns the indexed box.
func (ix BoxIndex) Box() Box { return ix.box }

// Len returns the number of lattice points indexed (the box volume).
func (ix BoxIndex) Len() int64 { return ix.vol }

// Contains reports whether p lies inside the indexed box.
func (ix BoxIndex) Contains(p Point) bool { return ix.box.Contains(p) }

// Offset returns the row-major offset of p. The caller must ensure p is
// inside the box (checked in tests; hot path in solvers).
func (ix BoxIndex) Offset(p Point) int64 {
	off := int64(0)
	for i := 0; i < ix.box.Dim; i++ {
		off += int64(p[i]-ix.box.Lo[i]) * ix.stride[i]
	}
	return off
}

// PointAt inverts Offset.
func (ix BoxIndex) PointAt(off int64) (Point, error) {
	if off < 0 || off >= ix.vol {
		return Point{}, fmt.Errorf("grid: offset %d out of range [0,%d)", off, ix.vol)
	}
	p := ix.box.Lo
	for i := 0; i < ix.box.Dim; i++ {
		p[i] += int32(off / ix.stride[i])
		off %= ix.stride[i]
	}
	return p, nil
}
