package grid

import (
	"math/rand"
	"testing"
)

func TestBoxIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		dim := 1 + rng.Intn(3)
		var lo, hi Point
		for i := 0; i < dim; i++ {
			lo[i] = int32(rng.Intn(11) - 5)
			hi[i] = lo[i] + int32(rng.Intn(5))
		}
		b, err := NewBox(dim, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		ix := NewBoxIndex(b)
		if ix.Len() != b.Volume() {
			t.Fatalf("Len %d != Volume %d", ix.Len(), b.Volume())
		}
		// Points() is row-major, so offsets must be 0,1,2,... in that order.
		for want, p := range b.Points() {
			off := ix.Offset(p)
			if off != int64(want) {
				t.Fatalf("Offset(%v) = %d, want %d (row-major)", p, off, want)
			}
			q, err := ix.PointAt(off)
			if err != nil {
				t.Fatal(err)
			}
			if q != p {
				t.Fatalf("PointAt(%d) = %v, want %v", off, q, p)
			}
			if !ix.Contains(p) {
				t.Fatalf("Contains(%v) = false for interior point", p)
			}
		}
	}
}

func TestVolumeChecked(t *testing.T) {
	b, err := NewBox(2, P(0, 0), P(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.VolumeChecked()
	if err != nil || v != 20 {
		t.Errorf("VolumeChecked = %d, %v; want 20", v, err)
	}
	const far = 2097152
	huge, err := NewBox(3, P(0, 0, 0), P(far, far, far))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := huge.VolumeChecked(); err == nil {
		t.Error("overflowing volume should return ErrOverflow")
	}
}

func TestBoxIndexPointAtRange(t *testing.T) {
	b, err := NewBox(2, P(0, 0), P(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ix := NewBoxIndex(b)
	if _, err := ix.PointAt(-1); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := ix.PointAt(ix.Len()); err == nil {
		t.Error("offset == Len should fail")
	}
}
