package grid

import "fmt"

// Grid is a finite axis-aligned region of Z^l with per-axis sizes, used as
// the simulation arena. Coordinates run 0..Size[i]-1. The thesis works on
// the infinite grid; experiments keep demand support far enough from the
// boundary that the finite arena is equivalent (see DESIGN.md).
type Grid struct {
	dim   int
	size  [MaxDim]int
	strid [MaxDim]int64
	total int64
}

// New constructs a finite grid of the given dimension and per-axis sizes.
func New(sizes ...int) (*Grid, error) {
	if len(sizes) < 1 || len(sizes) > MaxDim {
		return nil, fmt.Errorf("grid: dimension %d out of range [1,%d]", len(sizes), MaxDim)
	}
	g := &Grid{dim: len(sizes)}
	total := int64(1)
	for i, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("grid: size %d in axis %d must be >= 1", s, i)
		}
		g.size[i] = s
		total *= int64(s)
	}
	g.total = total
	// Row-major strides.
	stride := int64(1)
	for i := g.dim - 1; i >= 0; i-- {
		g.strid[i] = stride
		stride *= int64(g.size[i])
	}
	return g, nil
}

// MustNew is New for static configuration; it panics on invalid sizes.
func MustNew(sizes ...int) *Grid {
	g, err := New(sizes...)
	if err != nil {
		panic(err)
	}
	return g
}

// Dim returns the lattice dimension.
func (g *Grid) Dim() int { return g.dim }

// Size returns the extent along axis i.
func (g *Grid) Size(i int) int { return g.size[i] }

// Len returns the number of lattice points in the grid.
func (g *Grid) Len() int64 { return g.total }

// Bounds returns the grid as a Box.
func (g *Grid) Bounds() Box {
	var hi Point
	for i := 0; i < g.dim; i++ {
		hi[i] = int32(g.size[i] - 1)
	}
	return Box{Lo: Point{}, Hi: hi, Dim: g.dim}
}

// Contains reports whether p lies inside the grid.
func (g *Grid) Contains(p Point) bool {
	for i := 0; i < g.dim; i++ {
		if p[i] < 0 || int(p[i]) >= g.size[i] {
			return false
		}
	}
	for i := g.dim; i < MaxDim; i++ {
		if p[i] != 0 {
			return false
		}
	}
	return true
}

// Index returns the row-major linear index of p. The caller must ensure p is
// inside the grid (checked in tests; hot path in solvers).
func (g *Grid) Index(p Point) int64 {
	idx := int64(0)
	for i := 0; i < g.dim; i++ {
		idx += int64(p[i]) * g.strid[i]
	}
	return idx
}

// PointAt inverts Index.
func (g *Grid) PointAt(idx int64) Point {
	var p Point
	for i := 0; i < g.dim; i++ {
		p[i] = int32(idx / g.strid[i])
		idx %= g.strid[i]
	}
	return p
}

// Neighbors appends the lattice neighbors of p that lie inside the grid to
// dst and returns the extended slice; pass nil for a fresh allocation.
func (g *Grid) Neighbors(p Point, dst []Point) []Point {
	for i := 0; i < g.dim; i++ {
		for _, d := range [2]int32{-1, 1} {
			q := p
			q[i] += d
			if g.Contains(q) {
				dst = append(dst, q)
			}
		}
	}
	return dst
}

// Ball returns all grid points within L1 distance r of center.
func (g *Grid) Ball(center Point, r int) []Point {
	pb, err := NewBox(g.dim, center, center)
	if err != nil {
		return nil
	}
	var out []Point
	for _, p := range NeighborhoodPoints(pb, r) {
		if g.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// PrefixSum is an l-dimensional summed-area table over a grid, giving O(2^l)
// box sums. It powers the cube characterization of Corollary 2.2.6/2.2.7 and
// the sliding-window maximum inside the offline solver.
type PrefixSum struct {
	g   *Grid
	sum []int64 // size (n0+1)*(n1+1)*...; index with own strides
	str [MaxDim]int64
}

// Grid returns the grid the table was built over, so consumers handed a
// shared PrefixSum (offline.Dense, the cube omega scans) can recover the
// arena geometry without carrying it separately.
func (ps *PrefixSum) Grid() *Grid { return ps.g }

// NewPrefixSum builds the summed-area table for the values indexed by the
// grid's linear index (values[g.Index(p)] is the value at p).
func NewPrefixSum(g *Grid, values []int64) (*PrefixSum, error) {
	if int64(len(values)) != g.Len() {
		return nil, fmt.Errorf("grid: values length %d != grid length %d", len(values), g.Len())
	}
	ps := &PrefixSum{g: g}
	total := int64(1)
	ext := [MaxDim]int{}
	for i := 0; i < g.dim; i++ {
		ext[i] = g.size[i] + 1
		total *= int64(ext[i])
	}
	stride := int64(1)
	for i := g.dim - 1; i >= 0; i-- {
		ps.str[i] = stride
		stride *= int64(ext[i])
	}
	ps.sum = make([]int64, total)
	// Fill: sum at (x0+1, ..., x_{l-1}+1) = inclusive prefix sum up to x.
	// First copy values shifted by +1 in every axis, then do one running sum
	// pass per axis.
	for idx := int64(0); idx < g.Len(); idx++ {
		p := g.PointAt(idx)
		si := int64(0)
		for i := 0; i < g.dim; i++ {
			si += int64(p[i]+1) * ps.str[i]
		}
		ps.sum[si] = values[idx]
	}
	for axis := 0; axis < g.dim; axis++ {
		step := ps.str[axis]
		n := int64(ext[axis])
		// Iterate over all lines along this axis.
		var iterate func(axisIdx int, base int64)
		iterate = func(axisIdx int, base int64) {
			if axisIdx == g.dim {
				for k := int64(1); k < n; k++ {
					ps.sum[base+k*step] += ps.sum[base+(k-1)*step]
				}
				return
			}
			if axisIdx == axis {
				iterate(axisIdx+1, base)
				return
			}
			for k := 0; k < ext[axisIdx]; k++ {
				iterate(axisIdx+1, base+int64(k)*ps.str[axisIdx])
			}
		}
		iterate(0, 0)
	}
	return ps, nil
}

// BoxSum returns the sum of values over the box clipped to the grid.
func (ps *PrefixSum) BoxSum(b Box) int64 {
	g := ps.g
	var lo, hi [MaxDim]int64
	for i := 0; i < g.dim; i++ {
		l := int64(b.Lo[i])
		h := int64(b.Hi[i]) + 1
		if l < 0 {
			l = 0
		}
		if h > int64(g.size[i]) {
			h = int64(g.size[i])
		}
		if l >= h {
			return 0
		}
		lo[i], hi[i] = l, h
	}
	// Inclusion-exclusion over the 2^dim corners.
	total := int64(0)
	for mask := 0; mask < 1<<g.dim; mask++ {
		idx := int64(0)
		bits := 0
		for i := 0; i < g.dim; i++ {
			if mask&(1<<i) != 0 {
				idx += lo[i] * ps.str[i]
				bits++
			} else {
				idx += hi[i] * ps.str[i]
			}
		}
		if bits%2 == 0 {
			total += ps.sum[idx]
		} else {
			total -= ps.sum[idx]
		}
	}
	return total
}

// MaxCubeSum returns the maximum sum over all side-length-s cubes fully
// inside the grid, along with one achieving corner. Cubes are the family
// Gamma_omega of Corollary 2.2.7. Returns ok=false when s exceeds an axis.
func (ps *PrefixSum) MaxCubeSum(s int) (best int64, corner Point, ok bool) {
	g := ps.g
	for i := 0; i < g.dim; i++ {
		if s > g.size[i] {
			return 0, Point{}, false
		}
	}
	best = -1
	var rec func(axis int, c Point)
	rec = func(axis int, c Point) {
		if axis == g.dim {
			b, err := Cube(g.dim, c, s)
			if err != nil {
				return
			}
			if v := ps.BoxSum(b); v > best {
				best, corner = v, c
			}
			return
		}
		for x := 0; x <= g.size[axis]-s; x++ {
			c[axis] = int32(x)
			rec(axis+1, c)
		}
		c[axis] = 0
	}
	rec(0, Point{})
	return best, corner, true
}
