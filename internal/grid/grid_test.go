package grid

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("no sizes should fail")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := New(1, 2, 3, 4, 5); err == nil {
		t.Error("too many dims should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid sizes")
		}
	}()
	MustNew(0)
}

func TestIndexRoundTrip(t *testing.T) {
	for _, sizes := range [][]int{{7}, {4, 5}, {3, 4, 5}, {2, 3, 2, 3}} {
		g := MustNew(sizes...)
		seen := make(map[int64]bool)
		for _, p := range g.Bounds().Points() {
			idx := g.Index(p)
			if idx < 0 || idx >= g.Len() {
				t.Fatalf("index %d out of range for %v", idx, p)
			}
			if seen[idx] {
				t.Fatalf("duplicate index %d", idx)
			}
			seen[idx] = true
			if back := g.PointAt(idx); back != p {
				t.Fatalf("PointAt(Index(%v)) = %v", p, back)
			}
		}
		if int64(len(seen)) != g.Len() {
			t.Fatalf("covered %d of %d indices", len(seen), g.Len())
		}
	}
}

func TestContains(t *testing.T) {
	g := MustNew(4, 4)
	if !g.Contains(P(0, 0)) || !g.Contains(P(3, 3)) {
		t.Error("corners should be inside")
	}
	for _, p := range []Point{P(-1, 0), P(4, 0), P(0, 4), P(0, 0, 1)} {
		if g.Contains(p) {
			t.Errorf("%v should be outside", p)
		}
	}
}

func TestNeighbors(t *testing.T) {
	g := MustNew(3, 3)
	center := g.Neighbors(P(1, 1), nil)
	if len(center) != 4 {
		t.Errorf("center has %d neighbors, want 4", len(center))
	}
	corner := g.Neighbors(P(0, 0), nil)
	if len(corner) != 2 {
		t.Errorf("corner has %d neighbors, want 2", len(corner))
	}
	for _, q := range corner {
		if Manhattan(P(0, 0), q) != 1 {
			t.Errorf("neighbor %v not adjacent", q)
		}
	}
}

func TestBall(t *testing.T) {
	g := MustNew(9, 9)
	ball := g.Ball(P(4, 4), 2)
	if len(ball) != 13 { // 2*4+4+1 = full L1 ball of radius 2
		t.Errorf("ball size %d, want 13", len(ball))
	}
	edge := g.Ball(P(0, 0), 2)
	if len(edge) != 6 { // quarter of the ball
		t.Errorf("edge ball size %d, want 6", len(edge))
	}
}

func TestPrefixSumMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sizes := range [][]int{{8}, {6, 7}, {4, 3, 5}} {
		g := MustNew(sizes...)
		vals := make([]int64, g.Len())
		for i := range vals {
			vals[i] = int64(rng.Intn(20) - 5)
		}
		ps, err := NewPrefixSum(g, vals)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 100; trial++ {
			var lo, hi Point
			for i := 0; i < g.Dim(); i++ {
				a := rng.Intn(g.Size(i) + 3)
				b := rng.Intn(g.Size(i) + 3)
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = int32(a-1), int32(b-1) // may clip outside
				if hi[i] < lo[i] {
					hi[i] = lo[i]
				}
			}
			box := Box{Lo: lo, Hi: hi, Dim: g.Dim()}
			want := int64(0)
			for _, p := range g.Bounds().Points() {
				if box.Contains(p) {
					want += vals[g.Index(p)]
				}
			}
			if got := ps.BoxSum(box); got != want {
				t.Fatalf("sizes=%v box=%v..%v: BoxSum=%d brute=%d",
					sizes, lo, hi, got, want)
			}
		}
	}
}

func TestPrefixSumLengthMismatch(t *testing.T) {
	g := MustNew(3, 3)
	if _, err := NewPrefixSum(g, make([]int64, 5)); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestMaxCubeSum(t *testing.T) {
	g := MustNew(5, 5)
	vals := make([]int64, g.Len())
	vals[g.Index(P(2, 2))] = 100
	vals[g.Index(P(2, 3))] = 50
	vals[g.Index(P(0, 0))] = 10
	ps, err := NewPrefixSum(g, vals)
	if err != nil {
		t.Fatal(err)
	}
	best, _, ok := ps.MaxCubeSum(1)
	if !ok || best != 100 {
		t.Errorf("side 1: best=%d ok=%v", best, ok)
	}
	best, corner, ok := ps.MaxCubeSum(2)
	if !ok || best != 150 {
		t.Errorf("side 2: best=%d corner=%v", best, corner)
	}
	c, err := Cube(2, corner, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(P(2, 2)) || !c.Contains(P(2, 3)) {
		t.Errorf("winning cube %v misses the mass", corner)
	}
	if best, _, ok = ps.MaxCubeSum(5); !ok || best != 160 {
		t.Errorf("side 5: best=%d ok=%v", best, ok)
	}
	if _, _, ok = ps.MaxCubeSum(6); ok {
		t.Error("side 6 should not fit")
	}
}
