package grid

import "math"

// SolveOmega solves equation (1.1) of the thesis for an axis-aligned box T:
//
//	omega_T * |N_{omega_T}(T)| = demand
//
// where the neighborhood radius is effectively floor(omega) because lattice
// distances are integers. The left-hand side is strictly increasing in omega
// (piecewise linear with upward jumps at integers), so a unique crossing
// exists; at a jump we return the jump point, i.e. the smallest omega with
// omega*|N_floor(omega)(T)| >= demand. demand <= 0 yields 0.
func SolveOmega(b Box, demand float64) float64 {
	if demand <= 0 {
		return 0
	}
	// Find the integer radius bracket R with
	//   R*count(R) <= demand <= (R+1)*count(R+1-eps) ...
	// i.e. smallest R such that (R+1)*count(R) >= demand, by exponential
	// search then binary search on f(R) = (R+1)*count(R).
	f := func(r int64) float64 {
		return float64(r+1) * NeighborhoodCountFloat(b, float64(r))
	}
	var hi int64 = 1
	for f(hi) < demand {
		hi *= 2
		if hi > 1<<40 {
			// Demand astronomically large relative to box; fall back to the
			// asymptotic omega ~ (demand / 2^l)^(1/(l+1)) bracket and keep
			// doubling from there. In practice unreachable for int64 job
			// counts, but never loop forever.
			break
		}
	}
	lo := int64(0)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if f(mid) >= demand {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r := lo // smallest R with (R+1)*count(R) >= demand
	count := NeighborhoodCountFloat(b, float64(r))
	if count <= 0 {
		return 0
	}
	omega := demand / count
	// omega must lie in [r, r+1]; below r means the crossing happened at the
	// jump up to count(r), so the infimum solution is exactly r.
	if omega < float64(r) {
		return float64(r)
	}
	if omega > float64(r+1) {
		return float64(r + 1)
	}
	return omega
}

// OmegaLHS evaluates omega * |N_floor(omega)(T)|, the left-hand side of
// equation (1.1), for diagnostics and tests.
func OmegaLHS(b Box, omega float64) float64 {
	if omega <= 0 {
		return 0
	}
	return omega * NeighborhoodCountFloat(b, math.Floor(omega))
}
