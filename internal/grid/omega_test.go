package grid

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveOmegaZeroDemand(t *testing.T) {
	b := mustBox(t, 2, P(0, 0), P(3, 3))
	if got := SolveOmega(b, 0); got != 0 {
		t.Errorf("SolveOmega(0) = %v", got)
	}
	if got := SolveOmega(b, -5); got != 0 {
		t.Errorf("SolveOmega(-5) = %v", got)
	}
}

func TestSolveOmegaSatisfiesEquation(t *testing.T) {
	// The returned omega must be the infimum omega with LHS(omega) >= D:
	// LHS at omega is >= D (up to float slack), and LHS just below is < D.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(3)
		var lo, hi Point
		for i := 0; i < dim; i++ {
			lo[i] = int32(rng.Intn(6))
			hi[i] = lo[i] + int32(rng.Intn(8))
		}
		b, err := NewBox(dim, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		d := math.Exp(rng.Float64()*14) + 0.5 // demands across 6 decades
		omega := SolveOmega(b, d)
		if omega <= 0 {
			t.Fatalf("omega = %v for demand %v", omega, d)
		}
		lhs := OmegaLHS(b, omega)
		if lhs < d*(1-1e-9) {
			t.Errorf("LHS(%v)=%v < demand %v (dim %d box %v..%v)",
				omega, lhs, d, dim, lo, hi)
		}
		below := omega * (1 - 1e-9)
		if math.Floor(below) == math.Floor(omega) { // same step segment
			if l := OmegaLHS(b, below); l > d*(1+1e-9) && omega > 1e-9 {
				t.Errorf("LHS just below omega (%v) = %v still exceeds demand %v",
					below, l, d)
			}
		}
	}
}

func TestSolveOmegaMonotoneInDemand(t *testing.T) {
	b := mustBox(t, 2, P(0, 0), P(4, 4))
	prev := 0.0
	for d := 1.0; d < 1e9; d *= 3 {
		omega := SolveOmega(b, d)
		if omega < prev {
			t.Fatalf("omega not monotone: d=%v gave %v after %v", d, omega, prev)
		}
		prev = omega
	}
}

func TestSolveOmegaPointAsymptotics(t *testing.T) {
	// Example 3 of the thesis (2-D point demand): capacity scales as d^(1/3).
	// The informal example uses the square (2W+1)^2 neighborhood; the formal
	// N_r is the L1 ball |N_r| = 2r^2+2r+1, so omega*2*omega^2 ~ d and
	// omega ~ (d/2)^(1/3). Same Theta, different constant.
	pt := mustBox(t, 2, P(0, 0), P(0, 0))
	d := 4e12
	omega := SolveOmega(pt, d)
	want := math.Cbrt(d / 2)
	if ratio := omega / want; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("point omega = %v, asymptotic %v (ratio %v)", omega, want, ratio)
	}
}

func TestSolveOmegaLineAsymptotics(t *testing.T) {
	// Example 2: demand d at every point of a long line; per the thesis
	// W2(2*W2+1) = d, so omega ~ sqrt(d/2) for a line much longer than omega.
	line := mustBox(t, 2, P(0, 0), P(100000, 0))
	perPoint := 5000.0
	d := perPoint * 100001
	omega := SolveOmega(line, d)
	want := math.Sqrt(perPoint / 2)
	if ratio := omega / want; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("line omega = %v, asymptotic %v (ratio %v)", omega, want, ratio)
	}
}

func TestSolveOmegaSquareApproachesDemand(t *testing.T) {
	// Example 1: demand d per point of an a x a square; as a -> infinity,
	// omega -> d (the square dominates its own boundary ring).
	d := 50.0
	for _, a := range []int{10, 100, 1000, 5000} {
		sq := mustBox(t, 2, P(0, 0), P(a-1, a-1))
		omega := SolveOmega(sq, d*float64(a)*float64(a))
		if a >= 1000 {
			if omega < 0.8*d || omega > d {
				t.Errorf("a=%d: omega=%v should approach d=%v", a, omega, d)
			}
		}
		if omega > d {
			t.Errorf("a=%d: omega=%v exceeds per-point demand %v", a, omega, d)
		}
	}
}
