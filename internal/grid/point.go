// Package grid provides geometry for the l-dimensional integer lattice Z^l
// under the Manhattan (L1) metric, the substrate every CMVRP component is
// built on: points, boxes, exact closed-form neighborhood counting
// |N_r(box)|, finite grids with prefix sums, and the omega_T equation solver
// from the thesis (eq. 1.1).
package grid

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxDim is the largest supported lattice dimension. The thesis analyzes
// general l but all applications use l <= 3; 4 leaves headroom for tests.
const MaxDim = 4

// Point is a lattice point in Z^l. Coordinates beyond the active dimension
// must be zero so that Point is directly comparable and usable as a map key.
type Point [MaxDim]int32

// P builds a Point from the given coordinates. Coordinates beyond MaxDim are
// rejected at construction time by panicking; this is a programming error,
// not a runtime condition, so a panic is appropriate (initialization-only).
func P(coords ...int) Point {
	if len(coords) > MaxDim {
		panic("grid: too many coordinates for Point")
	}
	var p Point
	for i, c := range coords {
		p[i] = int32(c)
	}
	return p
}

// Coord returns the i-th coordinate as an int.
func (p Point) Coord(i int) int { return int(p[i]) }

// Less orders points lexicographically by coordinate — a total order used
// to make collections derived from map iteration deterministic.
func (p Point) Less(q Point) bool {
	for i := 0; i < MaxDim; i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return false
}

// Add returns p translated by q (component-wise sum).
func (p Point) Add(q Point) Point {
	var r Point
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point {
	var r Point
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// CoordSum returns the sum of all coordinates. The online strategy's
// chessboard coloring (Section 3.2) colors a vertex black when the sum of its
// coordinates is even.
func (p Point) CoordSum() int {
	s := 0
	for i := range p {
		s += int(p[i])
	}
	return s
}

// String renders the point as "(x,y,...)" using the first dim nonzero-width
// coordinates; it always prints MaxDim coordinates' prefix up to the last
// nonzero, minimum 2, which is readable for the common 2-D case.
func (p Point) String() string {
	last := 1
	for i := 2; i < MaxDim; i++ {
		if p[i] != 0 {
			last = i
		}
	}
	parts := make([]string, 0, last+1)
	for i := 0; i <= last; i++ {
		parts = append(parts, strconv.Itoa(int(p[i])))
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Manhattan returns the L1 distance between a and b, the travel cost metric
// of the thesis (1 unit of energy per unit of rectilinear distance).
func Manhattan(a, b Point) int {
	d := 0
	for i := range a {
		delta := int(a[i] - b[i])
		if delta < 0 {
			delta = -delta
		}
		d += delta
	}
	return d
}

// Adjacent reports whether a and b are lattice neighbors (distance exactly 1).
func Adjacent(a, b Point) bool { return Manhattan(a, b) == 1 }

// Color is the chessboard color of a vertex per Section 3.2 of the thesis.
type Color int

// Vertex colors. Black vertices host the initially active vehicles.
const (
	Black Color = iota + 1
	White
)

// String implements fmt.Stringer for Color.
func (c Color) String() string {
	switch c {
	case Black:
		return "black"
	case White:
		return "white"
	default:
		return fmt.Sprintf("Color(%d)", int(c))
	}
}

// ColorOf returns the chessboard color of p: black iff the coordinate sum is
// even (thesis Section 3.2).
func ColorOf(p Point) Color {
	if p.CoordSum()%2 == 0 {
		return Black
	}
	return White
}
