package grid

import (
	"testing"
	"testing/quick"
)

func TestPConstruction(t *testing.T) {
	p := P(3, -2)
	if p.Coord(0) != 3 || p.Coord(1) != -2 || p.Coord(2) != 0 {
		t.Fatalf("P(3,-2) = %v", p)
	}
}

func TestPTooManyCoordsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >MaxDim coordinates")
		}
	}()
	P(1, 2, 3, 4, 5)
}

func TestManhattan(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want int
	}{
		{"same point", P(1, 2), P(1, 2), 0},
		{"unit step x", P(0, 0), P(1, 0), 1},
		{"unit step y", P(0, 0), P(0, -1), 1},
		{"diagonal", P(0, 0), P(3, 4), 7},
		{"negative coords", P(-2, -3), P(2, 3), 10},
		{"3d", P(1, 1, 1), P(2, 3, 5), 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Manhattan(tt.a, tt.b); got != tt.want {
				t.Errorf("Manhattan(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestManhattanMetricProperties(t *testing.T) {
	// Symmetry and triangle inequality, the metric axioms the energy
	// accounting depends on.
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a, b, c := P(int(ax), int(ay)), P(int(bx), int(by)), P(int(cx), int(cy))
		if Manhattan(a, b) != Manhattan(b, a) {
			return false
		}
		if Manhattan(a, c) > Manhattan(a, b)+Manhattan(b, c) {
			return false
		}
		return Manhattan(a, b) >= 0 && (Manhattan(a, b) == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSub(t *testing.T) {
	a, b := P(1, 2, 3), P(4, -5, 6)
	if got := a.Add(b); got != P(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("Add then Sub = %v, want %v", got, a)
	}
}

func TestColorOf(t *testing.T) {
	if ColorOf(P(0, 0)) != Black {
		t.Error("origin should be black")
	}
	if ColorOf(P(0, 1)) != White {
		t.Error("(0,1) should be white")
	}
	if ColorOf(P(1, 1)) != Black {
		t.Error("(1,1) should be black")
	}
	// Adjacent points always have opposite colors (bipartiteness, which the
	// online strategy's pairing relies on).
	f := func(x, y int8, axis uint8, dir bool) bool {
		p := P(int(x), int(y))
		q := p
		d := int32(1)
		if !dir {
			d = -1
		}
		q[axis%2] += d
		return ColorOf(p) != ColorOf(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointString(t *testing.T) {
	if s := P(1, -2).String(); s != "(1,-2)" {
		t.Errorf("String = %q", s)
	}
	if s := P(1, 2, 3).String(); s != "(1,2,3)" {
		t.Errorf("String = %q", s)
	}
}

func TestColorString(t *testing.T) {
	if Black.String() != "black" || White.String() != "white" {
		t.Error("color names wrong")
	}
	if Color(99).String() == "" {
		t.Error("unknown color should still render")
	}
}
