package lpchar

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

func benchDemand(b *testing.B, points int) *demand.Map {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	m := demand.NewMap(2)
	for i := 0; i < points; i++ {
		p := grid.P(rng.Intn(10), rng.Intn(10))
		if err := m.Add(p, 1+rng.Int63n(30)); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

func BenchmarkFlowValue(b *testing.B) {
	m := benchDemand(b, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FlowValue(m, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsetValue(b *testing.B) {
	m := benchDemand(b, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SubsetValue(m, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOmegaStarCubes(b *testing.B) {
	arena := grid.MustNew(64, 64)
	rng := rand.New(rand.NewSource(9))
	inner, err := grid.NewBox(2, grid.P(16, 16), grid.P(47, 47))
	if err != nil {
		b.Fatal(err)
	}
	m, err := demand.Uniform(rng, inner, 4000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OmegaStarCubes(m, arena); err != nil {
			b.Fatal(err)
		}
	}
}
