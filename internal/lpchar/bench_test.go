package lpchar

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

func benchDemand(b *testing.B, points int) *demand.Map {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	m := demand.NewMap(2)
	for i := 0; i < points; i++ {
		p := grid.P(rng.Intn(10), rng.Intn(10))
		if err := m.Add(p, 1+rng.Int63n(30)); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkFlowValueCold is the pre-refactor baseline shape: every bisection
// probe constructs a fresh supply graph (see coldFlowValue in solver_test).
func BenchmarkFlowValueCold(b *testing.B) {
	m := benchDemand(b, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		coldFlowValue(b, m, 3)
	}
}

// BenchmarkFlowValueWarm is the shipped path: one Solver construction plus
// ~60 construction-free probes on reset residual state.
func BenchmarkFlowValueWarm(b *testing.B) {
	m := benchDemand(b, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FlowValue(m, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowValueRebound measures the sweep-worker steady state: one
// retained Solver re-bound per instance, so graph arrays and the offset
// index are reused across instances too.
func BenchmarkFlowValueRebound(b *testing.B) {
	m := benchDemand(b, 12)
	var s Solver
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Bind(m, 3); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Value(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOmegaStarFlow times the self-consistent program (2.8) with the
// per-radius solver cache across its bracket and bisection.
func BenchmarkOmegaStarFlow(b *testing.B) {
	m := benchDemand(b, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OmegaStarFlow(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOmegaStarFlowLarge scales the self-consistent program to roughly
// ten times E4's support: 120 demand points over a 32x32 patch, where the
// bracket's large radii make the per-radius supply graphs expensive enough
// that the incremental machinery (witness certificates, radius extension,
// ladder resumes) dominates the measurement.
func BenchmarkOmegaStarFlowLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	m := demand.NewMap(2)
	for i := 0; i < 120; i++ {
		p := grid.P(rng.Intn(32), rng.Intn(32))
		if err := m.Add(p, 1+rng.Int63n(30)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OmegaStarFlow(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsetValue(b *testing.B) {
	m := benchDemand(b, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SubsetValue(m, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOmegaStarCubes(b *testing.B) {
	arena := grid.MustNew(64, 64)
	rng := rand.New(rand.NewSource(9))
	inner, err := grid.NewBox(2, grid.P(16, 16), grid.P(47, 47))
	if err != nil {
		b.Fatal(err)
	}
	m, err := demand.Uniform(rng, inner, 4000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OmegaStarCubes(m, arena); err != nil {
			b.Fatal(err)
		}
	}
}
