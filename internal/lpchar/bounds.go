package lpchar

import (
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/grid"
)

// boundSafetyRel sets the retreat margin of the coarse lower bound: a probe
// omega is certified infeasible — skipped without touching the flow network —
// only when it sits at least margin() = boundSafetyRel*(1+total) below a
// witness bound. By LP duality the flow deficit at such an omega is at least
// the margin, three orders of magnitude above the feasibility slack
// feasSlackRel*total+feasSlackAbs the oracle accepts, so a pruned probe's
// verdict provably equals the fresh Reset+MaxFlow verdict: pruning can
// reorder no bisection decision.
const boundSafetyRel = 1e-6

// maxBoundBoxVolume caps the densification the cube-witness scan performs.
// Larger supports keep the densification-free witnesses (heaviest point,
// whole support) and simply prune less.
const maxBoundBoxVolume = 1 << 20

// boundWitness is one subset T of the demand support with its neighborhood
// count precompiled: LPvalue(r) >= sum_T / |N_r(T)| for every radius
// (Lemma 2.2.2), so one witness serves every rung of every radius's ladder.
// The stored polynomial is that of a box containing T, whose count dominates
// |N_r(T)| — the quotient stays a valid lower bound.
type boundWitness struct {
	sum   float64
	neigh grid.NeighborhoodPoly
}

// coarseBounds aggregates radius-independent lower-bound witnesses for one
// demand instance: the heaviest single point, the whole support, and the
// max-sum cube at each doubling side length (one densification + prefix sum
// over the support bounding box, shared by every radius OmegaStarFlow
// visits). lowerAt turns them into a certified-infeasible threshold for a
// concrete radius.
type coarseBounds struct {
	built     bool
	m         *demand.Map
	total     int64
	points    int
	bbox      grid.Box
	witnesses []boundWitness
}

// matches reports whether the built witnesses describe m's current state.
// The pointer alone is not enough — a Map is mutable — so the cheap
// invariants (total, support size, bounding box) are rechecked; none of the
// checks allocate, keeping warm Value() calls off the heap.
func (cb *coarseBounds) matches(m *demand.Map) bool {
	if !cb.built || cb.m != m || cb.total != m.Total() || cb.points != m.SupportSize() {
		return false
	}
	if cb.total == 0 {
		return true
	}
	bbox, ok := m.BoundingBox()
	return ok && bbox == cb.bbox
}

// ensure (re)builds the witnesses when the bound instance changed.
func (cb *coarseBounds) ensure(m *demand.Map) error {
	if cb.matches(m) {
		return nil
	}
	return cb.build(m)
}

// build collects the witnesses for m.
func (cb *coarseBounds) build(m *demand.Map) error {
	cb.built = false
	cb.witnesses = cb.witnesses[:0]
	cb.m, cb.total, cb.points = m, m.Total(), m.SupportSize()
	if cb.total == 0 {
		cb.built = true
		return nil
	}
	bbox, ok := m.BoundingBox()
	if !ok {
		return fmt.Errorf("lpchar: empty support with nonzero total")
	}
	cb.bbox = bbox
	dim := m.Dim()
	unit, err := grid.Cube(dim, grid.Point{}, 1)
	if err != nil {
		return err
	}
	// Heaviest single point: T = {argmax d}.
	cb.witnesses = append(cb.witnesses, boundWitness{
		sum:   float64(m.Max()),
		neigh: grid.CompileNeighborhood(unit),
	})
	// Whole support: T = supp(d), boxed by its bounding box.
	cb.witnesses = append(cb.witnesses, boundWitness{
		sum:   float64(cb.total),
		neigh: grid.CompileNeighborhood(bbox),
	})
	// Max-sum cubes at doubling side lengths. Skipped — not failed — when
	// the bounding box is too large to densify; the witnesses above need no
	// densification. Clamping a cube into the box never loses demand, so the
	// in-box maximum is the lattice-wide maximum for each side.
	vol, err := bbox.VolumeChecked()
	if err != nil || vol > maxBoundBoxVolume {
		cb.built = true
		return nil
	}
	sizes := make([]int, dim)
	minSide := math.MaxInt
	for i := 0; i < dim; i++ {
		sizes[i] = int(bbox.Side(i))
		if sizes[i] < minSide {
			minSide = sizes[i]
		}
	}
	g, err := grid.New(sizes...)
	if err != nil {
		return err
	}
	vals := make([]int64, g.Len())
	for _, p := range m.Support() {
		vals[g.Index(p.Sub(bbox.Lo))] = m.At(p)
	}
	ps, err := grid.NewPrefixSum(g, vals)
	if err != nil {
		return err
	}
	for s := 1; s <= minSide; s *= 2 {
		sum, _, ok := ps.MaxCubeSum(s)
		if !ok || sum <= 0 {
			continue
		}
		cube, err := grid.Cube(dim, grid.Point{}, s)
		if err != nil {
			return err
		}
		cb.witnesses = append(cb.witnesses, boundWitness{
			sum:   float64(sum),
			neigh: grid.CompileNeighborhood(cube),
		})
	}
	cb.built = true
	return nil
}

// margin is the safety gap between a witness bound and the threshold it may
// veto probes at.
func (cb *coarseBounds) margin() float64 {
	return boundSafetyRel * (1 + float64(cb.total))
}

// lowerAt returns the certified-infeasible threshold for radius r: the flow
// oracle's verdict at every omega strictly below the returned value is
// guaranteed infeasible. Allocation-free.
func (cb *coarseBounds) lowerAt(r float64) float64 {
	best := 0.0
	for i := range cb.witnesses {
		w := &cb.witnesses[i]
		if n := w.neigh.Count(r); n > 0 {
			if v := w.sum / n; v > best {
				best = v
			}
		}
	}
	return best - cb.margin()
}
