package lpchar

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// TestLadderVerdictsMatchFresh is the certified probe's core contract:
// every probe() verdict — cut-certified infeasibles, oracle runs, cut
// adoptions — equals the from-scratch Reset+MaxFlow verdict on the same
// omega, and the flow the oracle leaves behind stays valid (capacity-
// respecting and conserved). Schedules mix random jumps (ascents, descents,
// revisits) with the exact convergent midpoint sequence Value() generates,
// because the certificates only start firing once infeasible oracle runs
// have donated tight cuts and the bisection closes in on the threshold.
func TestLadderVerdictsMatchFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	var inc, ref Solver
	for trial := 0; trial < 20; trial++ {
		dim := 1 + rng.Intn(2)
		m := randDemand(rng, dim, 6, 2+rng.Intn(5), 25)
		r := rng.Intn(4)
		if err := inc.Bind(m, r); err != nil {
			t.Fatal(err)
		}
		if err := ref.Bind(m, r); err != nil {
			t.Fatal(err)
		}
		maxD := float64(m.Max())
		check := func(omega float64) bool {
			t.Helper()
			incOK, err := inc.probe(omega)
			if err != nil {
				t.Fatal(err)
			}
			if err := inc.nw.ValidateFlow(inc.src, inc.sink); err != nil {
				t.Fatalf("trial %d omega %v: invalid retained flow: %v", trial, omega, err)
			}
			refOK, err := ref.FeasibleAt(omega)
			if err != nil {
				t.Fatal(err)
			}
			if incOK != refOK {
				t.Fatalf("trial %d omega %v: incremental %v != fresh %v", trial, omega, incOK, refOK)
			}
			return incOK
		}
		// Random jumps: ascents, descents into the rung window, descents
		// below every rung (full restart).
		for p := 0; p < 25; p++ {
			check(0.01 + rng.Float64()*maxD*1.1)
		}
		// The bisection's own midpoint sequence, converging onto the
		// threshold where the marginal guard must take over.
		lo, hi := 0.0, maxD
		for iter := 0; iter < bisectMaxIters && hi-lo > bisectTolRel*math.Max(1, hi); iter++ {
			mid := (lo + hi) / 2
			if check(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
	}
}

// TestExtendRadiusMatchesFresh pins the radius-differencing rule: a solver
// extended from r to r' (rings appended onto the retained graph) returns the
// same Value() — and indexes the same supplier set — as a solver freshly
// bound at r', across chained extensions and both index modes (dense offset
// array and the sparse map fallback).
func TestExtendRadiusMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	var ext, fresh Solver
	for trial := 0; trial < 15; trial++ {
		dim := 1 + rng.Intn(2)
		m := randDemand(rng, dim, 6, 2+rng.Intn(5), 25)
		r0 := rng.Intn(3)
		r1 := r0 + 1 + rng.Intn(3)
		if err := ext.Bind(m, r0); err != nil {
			t.Fatal(err)
		}
		if _, err := ext.Value(); err != nil {
			t.Fatal(err)
		}
		if err := ext.ExtendRadius(r1); err != nil {
			t.Fatal(err)
		}
		if got := ext.Radius(); got != r1 {
			t.Fatalf("trial %d: Radius after extend = %d, want %d", trial, got, r1)
		}
		v1, err := ext.Value()
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Bind(m, r1); err != nil {
			t.Fatal(err)
		}
		if ext.Suppliers() != fresh.Suppliers() {
			t.Fatalf("trial %d: extended suppliers %d != fresh %d", trial, ext.Suppliers(), fresh.Suppliers())
		}
		fv1, err := fresh.Value()
		if err != nil {
			t.Fatal(err)
		}
		if v1 != fv1 {
			t.Fatalf("trial %d: extended Value(r=%d) %v != fresh %v", trial, r1, v1, fv1)
		}
		// Chain a second extension on the already-extended graph.
		r2 := r1 + 1 + rng.Intn(2)
		if err := ext.ExtendRadius(r2); err != nil {
			t.Fatal(err)
		}
		v2, err := ext.Value()
		if err != nil {
			t.Fatal(err)
		}
		fv2, err := FlowValue(m, r2)
		if err != nil {
			t.Fatal(err)
		}
		if v2 != fv2 {
			t.Fatalf("trial %d: chained extended Value(r=%d) %v != fresh %v", trial, r2, v2, fv2)
		}
		// Shrinking must be refused (a rebind is required).
		if err := ext.ExtendRadius(r2 - 1); err == nil {
			t.Fatalf("trial %d: ExtendRadius below bound radius must fail", trial)
		}
	}
	// The sparse map fallback extends too: a spread support whose bounding
	// box is overwhelmingly padding.
	spread := demand.NewMap(2)
	if err := spread.Add(grid.P(0, 0), 5); err != nil {
		t.Fatal(err)
	}
	if err := spread.Add(grid.P(2100, 2100), 5); err != nil {
		t.Fatal(err)
	}
	if err := ext.Bind(spread, 1); err != nil {
		t.Fatal(err)
	}
	if ext.sup.dense {
		t.Fatal("spread instance should take the sparse fallback")
	}
	if err := ext.ExtendRadius(3); err != nil {
		t.Fatal(err)
	}
	if ext.sup.dense {
		t.Fatal("extension must retake the sparse decision for the spread instance")
	}
	sv, err := ext.Value()
	if err != nil {
		t.Fatal(err)
	}
	fv, err := FlowValue(spread, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sv != fv {
		t.Fatalf("sparse extended Value %v != fresh %v", sv, fv)
	}
}

// TestOmegaStarFlowMatchesPerRadiusFresh pins the reworked OmegaStarFlow —
// one extended/memoized solver plus witness-bound certificates — against a
// reference transcription of the retired algorithm: a fresh solver per radius
// and a plain bisection that evaluates the LP at every visited radius.
func TestOmegaStarFlowMatchesPerRadiusFresh(t *testing.T) {
	refValue := func(m *demand.Map, r int) float64 {
		t.Helper()
		s, err := NewSolver(m, r)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := 0.0, float64(m.Max())
		for iter := 0; iter < bisectMaxIters && hi-lo > bisectTolRel*math.Max(1, hi); iter++ {
			mid := (lo + hi) / 2
			ok, err := s.FeasibleAt(mid)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi
	}
	refOmega := func(m *demand.Map) float64 {
		t.Helper()
		if m.Total() == 0 {
			return 0
		}
		memo := map[int]float64{}
		value := func(r int) float64 {
			if v, ok := memo[r]; ok {
				return v
			}
			v := refValue(m, r)
			memo[r] = v
			return v
		}
		hi := 1
		for value(hi) > float64(hi+1) {
			hi *= 2
			if int64(hi) > m.Max()+1 {
				break
			}
		}
		lo := 0
		for lo < hi {
			mid := (lo + hi) / 2
			if value(mid) <= float64(mid+1) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		v := value(lo)
		if v < float64(lo) {
			return float64(lo)
		}
		if v > float64(lo+1) {
			return float64(lo + 1)
		}
		return v
	}
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 12; trial++ {
		dim := 1 + rng.Intn(2)
		m := randDemand(rng, dim, 6, 2+rng.Intn(5), 25)
		got, err := OmegaStarFlow(m)
		if err != nil {
			t.Fatal(err)
		}
		if want := refOmega(m); got != want {
			t.Fatalf("trial %d: OmegaStarFlow %v != per-radius fresh reference %v", trial, got, want)
		}
	}
	if v, err := OmegaStarFlow(demand.NewMap(2)); err != nil || v != 0 {
		t.Errorf("empty demand OmegaStarFlow = %v, %v", v, err)
	}
}

// TestSolverSecondValueAllocatesNothing extends the zero-allocation contract
// from single probes to whole bisections: after the first Value() call on a
// bound solver, further Value() calls — ladder init, rung snapshots, resumes,
// and marginal fresh re-probes included — stay off the heap.
func TestSolverSecondValueAllocatesNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	m := randDemand(rng, 2, 6, 6, 30)
	s, err := NewSolver(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Value()
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		v, err := s.Value()
		if err != nil {
			t.Fatal(err)
		}
		if v != first {
			t.Fatalf("repeat Value %v != first %v", v, first)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Value allocated %v times, want 0", allocs)
	}
}
