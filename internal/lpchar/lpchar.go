// Package lpchar computes the value of the thesis' linear program (2.1) —
// the minimal vehicle capacity omega that lets supply omega at every lattice
// point cover the demand d(j) when transports are limited to radius r — by
// three independent routes:
//
//  1. FlowValue: binary search on omega with a Dinic max-flow feasibility
//     oracle (exact up to binary-search tolerance);
//  2. SubsetValue: Lemma 2.2.2's closed form max_T sum(d)/|N_r(T)| by
//     brute-force enumeration of subsets T of the demand support (exact,
//     tiny instances only);
//  3. MaxOverCubes / MaxOverBoxes: the same maximization restricted to the
//     cube family Gamma of Corollary 2.2.6 using the closed-form
//     neighborhood count.
//
// Agreement of (1) and (2) on random instances is the reproduction of the
// duality chain Lemmas 2.2.1-2.2.3 (experiment E4). The package also solves
// the self-consistent program (2.8), where the radius equals the capacity,
// yielding omega* = max_T omega_T (Lemma 2.2.3).
package lpchar

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/demand"
	"repro/internal/grid"
)

// solverPool recycles Solvers across the one-shot entry points (FlowValue,
// OmegaStarFlow), extending the sweep workers' one-solver-per-worker
// discipline to callers without a natural place to retain one: network
// arrays, supply index buffers, and the coarse witness bounds all survive
// between calls. Rebinding a pooled solver is pinned indistinguishable from
// constructing a fresh one (TestSolverWarmEqualsCold), and the witness
// bounds revalidate their instance before reuse, so results are unaffected;
// callers probing one demand map repeatedly — E4 walks the same grid at
// five radii — skip the witness rebuild entirely.
var solverPool = sync.Pool{New: func() any { return new(Solver) }}

// ErrTooLarge is returned when an instance exceeds a solver's exact-method
// limits (subset enumeration, dense supply graphs).
var ErrTooLarge = errors.New("lpchar: instance too large for exact method")

// maxSubsetSupport bounds SubsetValue's 2^k enumeration.
const maxSubsetSupport = 18

// Feasible reports whether capacity omega suffices for radius-r transports:
// the transportation polytope of LP (2.1) with the given omega is nonempty.
// One-shot convenience over Solver — callers probing many omegas on one
// instance should build the Solver once and use FeasibleAt.
func Feasible(m *demand.Map, r int, omega float64) (bool, error) {
	if m.Total() == 0 {
		return true, nil
	}
	if omega <= 0 {
		return false, nil
	}
	s, err := NewSolver(m, r)
	if err != nil {
		return false, err
	}
	return s.FeasibleAt(omega)
}

// FlowValue computes the exact value of LP (2.1) for radius r by binary
// search on omega with the max-flow feasibility oracle: one Solver
// construction plus ~60 warm probes on reset residual state.
func FlowValue(m *demand.Map, r int) (float64, error) {
	if m.Total() == 0 {
		return 0, nil
	}
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	if err := s.Bind(m, r); err != nil {
		return 0, err
	}
	return s.Value()
}

// SubsetValue computes max over all subsets T of the support of
// sum_{x in T} d(x) / |N_r(T)| — the closed form of Lemma 2.2.2 — by exact
// enumeration. Only the support matters: adding a zero-demand point to T
// leaves the numerator unchanged and can only grow the denominator.
func SubsetValue(m *demand.Map, r int) (float64, error) {
	support := m.Support()
	k := len(support)
	if k == 0 {
		return 0, nil
	}
	if k > maxSubsetSupport {
		return 0, fmt.Errorf("%w: support %d > %d", ErrTooLarge, k, maxSubsetSupport)
	}
	// For each lattice point p near the support, record the bitmask of
	// support points within distance r. |N_r(T)| = number of points whose
	// mask intersects T = total - #points whose mask avoids T, and the
	// avoid-counts come from a subset-sum (SOS) transform. For compact
	// supports the masks live in a dense array over the support's
	// r-neighborhood bounding box (offset index): untouched offsets keep
	// mask 0 and are exactly the box points outside N_r(support). Spatially
	// spread supports whose box would be mostly padding fall back to a map,
	// like the supply index.
	bbox, ok := m.BoundingBox()
	if !ok {
		return 0, nil
	}
	box := bbox.Expand(r)
	var deltaCache supplyIndex
	deltas, err := deltaCache.ballOffsets(m.Dim(), r)
	if err != nil {
		return 0, err
	}
	cnt := make([]int64, 1<<k)
	totalPoints := int64(0)
	maxCovered := int64(k) * int64(len(deltas))
	if _, dense := denseIndexVolume(box, maxCovered); dense {
		ix := grid.NewBoxIndex(box)
		cover := make([]uint32, ix.Len())
		for i, s := range support {
			for _, d := range deltas {
				cover[ix.Offset(s.Add(d))] |= 1 << i
			}
		}
		for _, mask := range cover {
			if mask != 0 {
				cnt[mask]++
				totalPoints++
			}
		}
	} else {
		cover := make(map[grid.Point]uint32, maxCovered)
		for i, s := range support {
			for _, d := range deltas {
				cover[s.Add(d)] |= 1 << i
			}
		}
		for _, mask := range cover {
			cnt[mask]++
		}
		totalPoints = int64(len(cover))
	}
	// f[S] = number of points whose mask is a subset of S.
	f := make([]int64, 1<<k)
	copy(f, cnt)
	for bit := 0; bit < k; bit++ {
		for s := 0; s < 1<<k; s++ {
			if s&(1<<bit) != 0 {
				f[s] += f[s&^(1<<bit)]
			}
		}
	}
	demands := make([]int64, k)
	for i, s := range support {
		demands[i] = m.At(s)
	}
	full := (1 << k) - 1
	best := 0.0
	for tmask := 1; tmask <= full; tmask++ {
		neigh := totalPoints - f[full^tmask]
		if neigh == 0 {
			continue
		}
		var dsum int64
		for mm := tmask; mm != 0; mm &= mm - 1 {
			dsum += demands[bits.TrailingZeros32(uint32(mm))]
		}
		if v := float64(dsum) / float64(neigh); v > best {
			best = v
		}
	}
	return best, nil
}

// MaxOverBoxes maximizes sum(d in T)/|N_r(T)| over all axis-aligned boxes T
// inside the support's bounding box, using the exact closed-form
// neighborhood count. This realizes Corollary 2.2.6's simpler family
// (enlarged from cubes to all boxes, still a lower bound on the subset max).
func MaxOverBoxes(m *demand.Map, r int) (float64, grid.Box, error) {
	bbox, ok := m.BoundingBox()
	if !ok {
		return 0, grid.Box{}, nil
	}
	if bbox.Volume() > 1<<14 {
		return 0, grid.Box{}, fmt.Errorf("%w: bbox volume %d", ErrTooLarge, bbox.Volume())
	}
	best := 0.0
	var bestBox grid.Box
	dim := m.Dim()
	var lo, hi grid.Point
	var rec func(axis int)
	rec = func(axis int) {
		if axis == dim {
			b, err := grid.NewBox(dim, lo, hi)
			if err != nil {
				return
			}
			dsum := m.SumIn(b)
			if dsum == 0 {
				return
			}
			neigh := grid.NeighborhoodCountFloat(b, float64(r))
			if v := float64(dsum) / neigh; v > best {
				best, bestBox = v, b
			}
			return
		}
		for a := bbox.Lo[axis]; a <= bbox.Hi[axis]; a++ {
			for b := a; b <= bbox.Hi[axis]; b++ {
				lo[axis], hi[axis] = a, b
				rec(axis + 1)
			}
		}
		lo[axis], hi[axis] = 0, 0
	}
	rec(0)
	return best, bestBox, nil
}

// OmegaStarFlow solves the self-consistent program (2.8) — radius equals
// capacity — exactly: the unique omega with omega = LPvalue(r=floor(omega)).
// LPvalue(r) is non-increasing in r (Lemma 2.2.3's proof), so g(r) =
// LPvalue(r) - r is strictly decreasing and a binary search on the integer
// radius bracket followed by one LP evaluation pins the fixed point.
//
// One solver serves every radius the search visits: ascending steps extend
// the supply graph in place (ExtendRadius — nested L1 balls only add
// suppliers), descending steps rebind, and per-radius values are memoized so
// a revisited radius costs a map lookup. Radius segments the shared witness
// bounds prove irrelevant — LPvalue(r) certifiably above r+1 — are skipped
// without evaluating the LP at all; the certificate threshold sits a safety
// margin above r+1, so every skipped evaluation is one the bisection test
// was guaranteed to fail, and the search trajectory (and result) is
// identical to evaluating everywhere.
func OmegaStarFlow(m *demand.Map) (float64, error) {
	if m.Total() == 0 {
		return 0, nil
	}
	sol := solverPool.Get().(*Solver)
	defer solverPool.Put(sol)
	if err := sol.cb.ensure(m); err != nil {
		return 0, err
	}
	memo := make(map[int]float64)
	bound := false
	value := func(r int) (float64, error) {
		if v, ok := memo[r]; ok {
			return v, nil
		}
		switch {
		case !bound:
			if err := sol.Bind(m, r); err != nil {
				return 0, err
			}
			bound = true
		case r > sol.r:
			if err := sol.ExtendRadius(r); err != nil {
				return 0, err
			}
		case r < sol.r:
			if err := sol.Bind(m, r); err != nil {
				return 0, err
			}
		}
		v, err := sol.Value()
		if err != nil {
			return 0, err
		}
		memo[r] = v
		return v, nil
	}
	// exceeds(r) certifies LPvalue(r) > r+1 from the witness bounds alone:
	// lowerAt already retreats by the safety margin, and Value() can only
	// land above it (probes below are certified-infeasible), so the
	// bisection's "v <= r+1" test is known false without evaluating.
	exceeds := func(r int) bool {
		return sol.cb.lowerAt(float64(r)) > float64(r+1)
	}
	// Find smallest integer R with LPvalue(R) <= R+1; the fixed point lies
	// in radius segment [R, R+1). Bracket exponentially from small radii:
	// evaluating the LP at radius R costs O(R^l) supplier enumeration, so
	// probing near the (small) fixed point first matters enormously for
	// concentrated demands.
	hi := 1
	for {
		if !exceeds(hi) {
			v, err := value(hi)
			if err != nil {
				return 0, err
			}
			if v <= float64(hi+1) {
				break
			}
		}
		hi *= 2
		if int64(hi) > m.Max()+1 {
			break // LPvalue(r) <= max demand always, so this cannot recur
		}
	}
	lo := 0
	for lo < hi {
		mid := (lo + hi) / 2
		if exceeds(mid) {
			lo = mid + 1
			continue
		}
		v, err := value(mid)
		if err != nil {
			return 0, err
		}
		if v <= float64(mid+1) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r := lo
	if exceeds(r) {
		// v > r+1 certified: the clamp below would return r+1.
		return float64(r + 1), nil
	}
	v, err := value(r)
	if err != nil {
		return 0, err
	}
	// Within the segment the LP value is the constant v (radius floor(omega)
	// = r); the self-consistent solution is omega = v clamped to [r, r+1].
	if v < float64(r) {
		return float64(r), nil
	}
	if v > float64(r+1) {
		return float64(r + 1), nil
	}
	return v, nil
}

// OmegaStarCubes computes max over all cubes T (every side length s >= 1,
// every position inside the arena) of omega_T, the cube form of the thesis'
// lower bound (Corollaries 2.2.4 + 2.2.6). For a fixed side length only the
// maximal cube sum matters, because omega_T is monotone in the demand for a
// fixed shape, so one prefix-sum sweep per side length suffices.
//
// This convenience form densifies (m, arena) itself; pipelines that already
// hold a shared summed-area table — offline.Dense.Prefix(), the
// one-densification-per-pipeline rule — should call OmegaStarCubesPS.
func OmegaStarCubes(m *demand.Map, arena *grid.Grid) (float64, error) {
	ps, err := densify(m, arena)
	if err != nil {
		return 0, err
	}
	return OmegaStarCubesPS(ps)
}

// OmegaStarCubesPS is OmegaStarCubes on a prebuilt summed-area table.
func OmegaStarCubesPS(ps *grid.PrefixSum) (float64, error) {
	return cubeOmegaScan(ps, func(s int) int { return s + 1 })
}

// OmegaStarCubesDoubling is OmegaStarCubes restricted to power-of-two side
// lengths — the granularity Algorithm 1 actually inspects. Exposed for the
// ablation comparing full against doubling granularity.
func OmegaStarCubesDoubling(m *demand.Map, arena *grid.Grid) (float64, error) {
	ps, err := densify(m, arena)
	if err != nil {
		return 0, err
	}
	return OmegaStarCubesDoublingPS(ps)
}

// OmegaStarCubesDoublingPS is OmegaStarCubesDoubling on a prebuilt
// summed-area table.
func OmegaStarCubesDoublingPS(ps *grid.PrefixSum) (float64, error) {
	return cubeOmegaScan(ps, func(s int) int { return s * 2 })
}

// densify renders (m, arena) into a fresh summed-area table.
func densify(m *demand.Map, arena *grid.Grid) (*grid.PrefixSum, error) {
	vals, err := m.Values(arena)
	if err != nil {
		return nil, err
	}
	return grid.NewPrefixSum(arena, vals)
}

// cubeOmegaScan is the shared core of the cube omega* variants: walk side
// lengths per the step rule, take each side's maximal cube sum from the
// table, and solve the omega_T equation for it.
func cubeOmegaScan(ps *grid.PrefixSum, step func(int) int) (float64, error) {
	arena := ps.Grid()
	maxSide := arena.Size(0)
	for i := 1; i < arena.Dim(); i++ {
		if s := arena.Size(i); s < maxSide {
			maxSide = s
		}
	}
	best := 0.0
	for s := 1; s <= maxSide; s = step(s) {
		sum, _, ok := ps.MaxCubeSum(s)
		if !ok || sum <= 0 {
			continue
		}
		cube, err := grid.Cube(arena.Dim(), grid.Point{}, s)
		if err != nil {
			return 0, err
		}
		if w := grid.SolveOmega(cube, float64(sum)); w > best {
			best = w
		}
	}
	return best, nil
}
