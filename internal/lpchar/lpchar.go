// Package lpchar computes the value of the thesis' linear program (2.1) —
// the minimal vehicle capacity omega that lets supply omega at every lattice
// point cover the demand d(j) when transports are limited to radius r — by
// three independent routes:
//
//  1. FlowValue: binary search on omega with a Dinic max-flow feasibility
//     oracle (exact up to binary-search tolerance);
//  2. SubsetValue: Lemma 2.2.2's closed form max_T sum(d)/|N_r(T)| by
//     brute-force enumeration of subsets T of the demand support (exact,
//     tiny instances only);
//  3. MaxOverCubes / MaxOverBoxes: the same maximization restricted to the
//     cube family Gamma of Corollary 2.2.6 using the closed-form
//     neighborhood count.
//
// Agreement of (1) and (2) on random instances is the reproduction of the
// duality chain Lemmas 2.2.1-2.2.3 (experiment E4). The package also solves
// the self-consistent program (2.8), where the radius equals the capacity,
// yielding omega* = max_T omega_T (Lemma 2.2.3).
package lpchar

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/demand"
	"repro/internal/grid"
)

// ErrTooLarge is returned when an instance exceeds a solver's exact-method
// limits (subset enumeration, dense supply graphs).
var ErrTooLarge = errors.New("lpchar: instance too large for exact method")

// maxSubsetSupport bounds SubsetValue's 2^k enumeration.
const maxSubsetSupport = 18

// Feasible reports whether capacity omega suffices for radius-r transports:
// the transportation polytope of LP (2.1) with the given omega is nonempty.
// One-shot convenience over Solver — callers probing many omegas on one
// instance should build the Solver once and use FeasibleAt.
func Feasible(m *demand.Map, r int, omega float64) (bool, error) {
	if m.Total() == 0 {
		return true, nil
	}
	if omega <= 0 {
		return false, nil
	}
	s, err := NewSolver(m, r)
	if err != nil {
		return false, err
	}
	return s.FeasibleAt(omega)
}

// FlowValue computes the exact value of LP (2.1) for radius r by binary
// search on omega with the max-flow feasibility oracle: one Solver
// construction plus ~60 warm probes on reset residual state.
func FlowValue(m *demand.Map, r int) (float64, error) {
	if m.Total() == 0 {
		return 0, nil
	}
	var s Solver
	if err := s.Bind(m, r); err != nil {
		return 0, err
	}
	return s.Value()
}

// SubsetValue computes max over all subsets T of the support of
// sum_{x in T} d(x) / |N_r(T)| — the closed form of Lemma 2.2.2 — by exact
// enumeration. Only the support matters: adding a zero-demand point to T
// leaves the numerator unchanged and can only grow the denominator.
func SubsetValue(m *demand.Map, r int) (float64, error) {
	support := m.Support()
	k := len(support)
	if k == 0 {
		return 0, nil
	}
	if k > maxSubsetSupport {
		return 0, fmt.Errorf("%w: support %d > %d", ErrTooLarge, k, maxSubsetSupport)
	}
	// For each lattice point p near the support, record the bitmask of
	// support points within distance r. |N_r(T)| = number of points whose
	// mask intersects T = total - #points whose mask avoids T, and the
	// avoid-counts come from a subset-sum (SOS) transform. For compact
	// supports the masks live in a dense array over the support's
	// r-neighborhood bounding box (offset index): untouched offsets keep
	// mask 0 and are exactly the box points outside N_r(support). Spatially
	// spread supports whose box would be mostly padding fall back to a map,
	// like the supply index.
	bbox, ok := m.BoundingBox()
	if !ok {
		return 0, nil
	}
	box := bbox.Expand(r)
	var deltaCache supplyIndex
	deltas, err := deltaCache.ballOffsets(m.Dim(), r)
	if err != nil {
		return 0, err
	}
	cnt := make([]int64, 1<<k)
	totalPoints := int64(0)
	maxCovered := int64(k) * int64(len(deltas))
	if _, dense := denseIndexVolume(box, maxCovered); dense {
		ix := grid.NewBoxIndex(box)
		cover := make([]uint32, ix.Len())
		for i, s := range support {
			for _, d := range deltas {
				cover[ix.Offset(s.Add(d))] |= 1 << i
			}
		}
		for _, mask := range cover {
			if mask != 0 {
				cnt[mask]++
				totalPoints++
			}
		}
	} else {
		cover := make(map[grid.Point]uint32, maxCovered)
		for i, s := range support {
			for _, d := range deltas {
				cover[s.Add(d)] |= 1 << i
			}
		}
		for _, mask := range cover {
			cnt[mask]++
		}
		totalPoints = int64(len(cover))
	}
	// f[S] = number of points whose mask is a subset of S.
	f := make([]int64, 1<<k)
	copy(f, cnt)
	for bit := 0; bit < k; bit++ {
		for s := 0; s < 1<<k; s++ {
			if s&(1<<bit) != 0 {
				f[s] += f[s&^(1<<bit)]
			}
		}
	}
	demands := make([]int64, k)
	for i, s := range support {
		demands[i] = m.At(s)
	}
	full := (1 << k) - 1
	best := 0.0
	for tmask := 1; tmask <= full; tmask++ {
		neigh := totalPoints - f[full^tmask]
		if neigh == 0 {
			continue
		}
		var dsum int64
		for mm := tmask; mm != 0; mm &= mm - 1 {
			dsum += demands[bits.TrailingZeros32(uint32(mm))]
		}
		if v := float64(dsum) / float64(neigh); v > best {
			best = v
		}
	}
	return best, nil
}

// MaxOverBoxes maximizes sum(d in T)/|N_r(T)| over all axis-aligned boxes T
// inside the support's bounding box, using the exact closed-form
// neighborhood count. This realizes Corollary 2.2.6's simpler family
// (enlarged from cubes to all boxes, still a lower bound on the subset max).
func MaxOverBoxes(m *demand.Map, r int) (float64, grid.Box, error) {
	bbox, ok := m.BoundingBox()
	if !ok {
		return 0, grid.Box{}, nil
	}
	if bbox.Volume() > 1<<14 {
		return 0, grid.Box{}, fmt.Errorf("%w: bbox volume %d", ErrTooLarge, bbox.Volume())
	}
	best := 0.0
	var bestBox grid.Box
	dim := m.Dim()
	var lo, hi grid.Point
	var rec func(axis int)
	rec = func(axis int) {
		if axis == dim {
			b, err := grid.NewBox(dim, lo, hi)
			if err != nil {
				return
			}
			dsum := m.SumIn(b)
			if dsum == 0 {
				return
			}
			neigh := grid.NeighborhoodCountFloat(b, float64(r))
			if v := float64(dsum) / neigh; v > best {
				best, bestBox = v, b
			}
			return
		}
		for a := bbox.Lo[axis]; a <= bbox.Hi[axis]; a++ {
			for b := a; b <= bbox.Hi[axis]; b++ {
				lo[axis], hi[axis] = a, b
				rec(axis + 1)
			}
		}
		lo[axis], hi[axis] = 0, 0
	}
	rec(0)
	return best, bestBox, nil
}

// OmegaStarFlow solves the self-consistent program (2.8) — radius equals
// capacity — exactly: the unique omega with omega = LPvalue(r=floor(omega)).
// LPvalue(r) is non-increasing in r (Lemma 2.2.3's proof), so g(r) =
// LPvalue(r) - r is strictly decreasing and a binary search on the integer
// radius bracket followed by one LP evaluation pins the fixed point. Solvers
// are cached per radius across the bracket and bisection, so a radius the
// search revisits re-runs warm probes instead of rebuilding its supply
// graph.
func OmegaStarFlow(m *demand.Map) (float64, error) {
	if m.Total() == 0 {
		return 0, nil
	}
	solvers := make(map[int]*Solver)
	value := func(r int) (float64, error) {
		s := solvers[r]
		if s == nil {
			var err error
			if s, err = NewSolver(m, r); err != nil {
				return 0, err
			}
			solvers[r] = s
		}
		return s.Value()
	}
	// Find smallest integer R with LPvalue(R) <= R+1; the fixed point lies
	// in radius segment [R, R+1). Bracket exponentially from small radii:
	// evaluating the LP at radius R costs O(R^l) supplier enumeration, so
	// probing near the (small) fixed point first matters enormously for
	// concentrated demands.
	hi := 1
	for {
		v, err := value(hi)
		if err != nil {
			return 0, err
		}
		if v <= float64(hi+1) {
			break
		}
		hi *= 2
		if int64(hi) > m.Max()+1 {
			break // LPvalue(r) <= max demand always, so this cannot recur
		}
	}
	lo := 0
	for lo < hi {
		mid := (lo + hi) / 2
		v, err := value(mid)
		if err != nil {
			return 0, err
		}
		if v <= float64(mid+1) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r := lo
	v, err := value(r)
	if err != nil {
		return 0, err
	}
	// Within the segment the LP value is the constant v (radius floor(omega)
	// = r); the self-consistent solution is omega = v clamped to [r, r+1].
	if v < float64(r) {
		return float64(r), nil
	}
	if v > float64(r+1) {
		return float64(r + 1), nil
	}
	return v, nil
}

// OmegaStarCubes computes max over all cubes T (every side length s >= 1,
// every position inside the arena) of omega_T, the cube form of the thesis'
// lower bound (Corollaries 2.2.4 + 2.2.6). For a fixed side length only the
// maximal cube sum matters, because omega_T is monotone in the demand for a
// fixed shape, so one prefix-sum sweep per side length suffices.
func OmegaStarCubes(m *demand.Map, arena *grid.Grid) (float64, error) {
	vals, err := m.Values(arena)
	if err != nil {
		return 0, err
	}
	ps, err := grid.NewPrefixSum(arena, vals)
	if err != nil {
		return 0, err
	}
	maxSide := arena.Size(0)
	for i := 1; i < arena.Dim(); i++ {
		if s := arena.Size(i); s < maxSide {
			maxSide = s
		}
	}
	best := 0.0
	for s := 1; s <= maxSide; s++ {
		sum, _, ok := ps.MaxCubeSum(s)
		if !ok || sum <= 0 {
			continue
		}
		cube, err := grid.Cube(arena.Dim(), grid.Point{}, s)
		if err != nil {
			return 0, err
		}
		if w := grid.SolveOmega(cube, float64(sum)); w > best {
			best = w
		}
	}
	return best, nil
}

// OmegaStarCubesDoubling is OmegaStarCubes restricted to power-of-two side
// lengths — the granularity Algorithm 1 actually inspects. Exposed for the
// ablation comparing full against doubling granularity.
func OmegaStarCubesDoubling(m *demand.Map, arena *grid.Grid) (float64, error) {
	vals, err := m.Values(arena)
	if err != nil {
		return 0, err
	}
	ps, err := grid.NewPrefixSum(arena, vals)
	if err != nil {
		return 0, err
	}
	maxSide := arena.Size(0)
	for i := 1; i < arena.Dim(); i++ {
		if s := arena.Size(i); s < maxSide {
			maxSide = s
		}
	}
	best := 0.0
	for s := 1; s <= maxSide; s *= 2 {
		sum, _, ok := ps.MaxCubeSum(s)
		if !ok || sum <= 0 {
			continue
		}
		cube, err := grid.Cube(arena.Dim(), grid.Point{}, s)
		if err != nil {
			return 0, err
		}
		if w := grid.SolveOmega(cube, float64(sum)); w > best {
			best = w
		}
	}
	return best, nil
}
