package lpchar

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

func randDemand(rng *rand.Rand, dim, extent, points int, maxD int64) *demand.Map {
	m := demand.NewMap(dim)
	for i := 0; i < points; i++ {
		var p grid.Point
		for a := 0; a < dim; a++ {
			p[a] = int32(rng.Intn(extent))
		}
		if err := m.Add(p, 1+rng.Int63n(maxD)); err != nil {
			panic(err)
		}
	}
	return m
}

func TestFeasibleTrivial(t *testing.T) {
	m := demand.NewMap(2)
	ok, err := Feasible(m, 3, 0)
	if err != nil || !ok {
		t.Fatalf("empty demand should be feasible: %v %v", ok, err)
	}
	if err := m.Add(grid.P(0, 0), 5); err != nil {
		t.Fatal(err)
	}
	if ok, _ := Feasible(m, 3, 0); ok {
		t.Error("zero capacity with demand should be infeasible")
	}
}

func TestFlowValueSinglePoint(t *testing.T) {
	// Demand d at one point, radius r: LP value = d / |N_r(point)|.
	m, err := demand.PointMass(2, grid.P(0, 0), 130)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 1, 2, 3} {
		ball := int64(2*r*r + 2*r + 1)
		want := 130.0 / float64(ball)
		got, err := FlowValue(m, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("r=%d: flow value %v, want %v", r, got, want)
		}
	}
}

// TestDualityChain is experiment E4's core assertion: the flow-computed LP
// (2.1) value equals Lemma 2.2.2's closed form max_T sum(d)/|N_r(T)| on
// random instances. This exercises the entire duality chain of Lemmas
// 2.2.1-2.2.2.
func TestDualityChain(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(2)
		m := randDemand(rng, dim, 6, 2+rng.Intn(5), 20)
		r := rng.Intn(4)
		flowV, err := FlowValue(m, r)
		if err != nil {
			t.Fatal(err)
		}
		subsetV, err := SubsetValue(m, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(flowV-subsetV) > 1e-6*math.Max(1, subsetV) {
			t.Errorf("trial %d (dim %d r %d): flow %v != subset %v",
				trial, dim, r, flowV, subsetV)
		}
		// Boxes are a subfamily of subsets: their max never exceeds it.
		boxV, _, err := MaxOverBoxes(m, r)
		if err != nil {
			t.Fatal(err)
		}
		if boxV > subsetV*(1+1e-9) {
			t.Errorf("trial %d: box max %v exceeds subset max %v", trial, boxV, subsetV)
		}
		if boxV <= 0 {
			t.Errorf("trial %d: box max should be positive", trial)
		}
	}
}

func TestSubsetValueTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDemand(rng, 2, 30, 200, 3)
	if m.SupportSize() <= maxSubsetSupport {
		t.Skip("rng produced a small support")
	}
	if _, err := SubsetValue(m, 2); !errors.Is(err, ErrTooLarge) {
		t.Errorf("want ErrTooLarge, got %v", err)
	}
}

func TestEmptyInstances(t *testing.T) {
	m := demand.NewMap(2)
	if v, err := FlowValue(m, 3); err != nil || v != 0 {
		t.Errorf("FlowValue empty = %v, %v", v, err)
	}
	if v, err := SubsetValue(m, 3); err != nil || v != 0 {
		t.Errorf("SubsetValue empty = %v, %v", v, err)
	}
	if v, _, err := MaxOverBoxes(m, 3); err != nil || v != 0 {
		t.Errorf("MaxOverBoxes empty = %v, %v", v, err)
	}
	if v, err := OmegaStarFlow(m); err != nil || v != 0 {
		t.Errorf("OmegaStarFlow empty = %v, %v", v, err)
	}
}

// TestOmegaStarFixedPoint checks that omega* from the self-consistent
// program (2.8) satisfies LPvalue(floor(omega*)) ~ omega* (or sits at a
// segment boundary), and that it is sandwiched per Lemma 2.2.3.
func TestOmegaStarFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		m := randDemand(rng, 2, 5, 3+rng.Intn(4), 60)
		omega, err := OmegaStarFlow(m)
		if err != nil {
			t.Fatal(err)
		}
		if omega <= 0 {
			t.Fatalf("omega* = %v for nonempty demand", omega)
		}
		r := int(math.Floor(omega))
		v, err := FlowValue(m, r)
		if err != nil {
			t.Fatal(err)
		}
		// Either the fixed point is interior (v == omega) or omega sits at
		// the integer jump (v <= omega <= value on the previous segment).
		if math.Abs(v-omega) > 1e-6*math.Max(1, omega) {
			if math.Abs(omega-float64(r)) > 1e-9 || v > omega+1e-6 {
				t.Errorf("trial %d: omega*=%v but LPvalue(r=%d)=%v", trial, omega, r, v)
			}
			if r > 0 {
				prev, err := FlowValue(m, r-1)
				if err != nil {
					t.Fatal(err)
				}
				if prev < omega-1e-6 {
					t.Errorf("trial %d: jump fixed point invalid: prev=%v omega=%v",
						trial, prev, omega)
				}
			}
		}
	}
}

func TestOmegaStarCubesLowerBoundsSubsetFamily(t *testing.T) {
	// The cube family is a subfamily of all subsets, so the cube omega*
	// cannot exceed the flow (all-subsets) omega*; and by Corollary 2.2.6 it
	// is within the dimension constant. (Both solve the same self-consistent
	// equation over their families.)
	rng := rand.New(rand.NewSource(47))
	arena := grid.MustNew(8, 8)
	for trial := 0; trial < 10; trial++ {
		m := randDemand(rng, 2, 8, 4+rng.Intn(4), 40)
		cubeV, err := OmegaStarCubes(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		flowV, err := OmegaStarFlow(m)
		if err != nil {
			t.Fatal(err)
		}
		if cubeV > flowV*(1+1e-6)+1e-6 {
			t.Errorf("trial %d: cube omega* %v exceeds subset omega* %v",
				trial, cubeV, flowV)
		}
		if cubeV < flowV/8 {
			t.Errorf("trial %d: cube omega* %v unreasonably below subset omega* %v",
				trial, cubeV, flowV)
		}
		dblV, err := OmegaStarCubesDoubling(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		if dblV > cubeV*(1+1e-9) {
			t.Errorf("trial %d: doubling %v exceeds full cube sweep %v", trial, dblV, cubeV)
		}
		if dblV <= 0 {
			t.Errorf("trial %d: doubling value should be positive", trial)
		}
	}
}

func TestFlowValueMonotoneInRadius(t *testing.T) {
	// omega(r) is non-increasing in r (proof of Lemma 2.2.3).
	rng := rand.New(rand.NewSource(53))
	m := randDemand(rng, 2, 6, 6, 30)
	prev := math.Inf(1)
	for r := 0; r <= 6; r++ {
		v, err := FlowValue(m, r)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev*(1+1e-6) {
			t.Fatalf("LP value increased with radius: r=%d %v > %v", r, v, prev)
		}
		prev = v
	}
}

func TestOmegaStarCubesOutsideArena(t *testing.T) {
	m, err := demand.PointMass(2, grid.P(50, 50), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OmegaStarCubes(m, grid.MustNew(8, 8)); err == nil {
		t.Error("demand outside arena should fail")
	}
}
