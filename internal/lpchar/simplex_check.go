package lpchar

import (
	"fmt"

	"repro/internal/demand"
	"repro/internal/simplex"
)

// maxSimplexArcs bounds the explicit LP's size.
const maxSimplexArcs = 4000

// SimplexValue solves LP (2.1) by building it *explicitly* — variables
// omega and one flow f_ij per (supplier, demand) arc within radius r — and
// running the dense simplex solver. It is deliberately the most literal
// transcription of the thesis' program, used as a third independent check
// against FlowValue (combinatorial) and SubsetValue (the Lemma 2.2.2 closed
// form) on small instances.
//
// Standard form: maximize -omega subject to
//
//	sum_j f_ij - omega <= 0        (supplier capacity, one row per i)
//	-sum_i f_ij <= -d(j)           (demand coverage, one row per j)
//	all variables >= 0.
func SimplexValue(m *demand.Map, r int) (float64, error) {
	if m.Total() == 0 {
		return 0, nil
	}
	support := m.Support()
	var sup supplyIndex
	if err := sup.build(m, r, support); err != nil {
		return 0, err
	}
	suppliers := sup.suppliers
	deltas, err := sup.ballOffsets(m.Dim(), r)
	if err != nil {
		return 0, err
	}
	type arc struct{ i, j int }
	var arcs []arc
	for j, q := range support {
		for _, d := range deltas {
			if i := sup.supplierAt(q.Add(d)); i >= 0 {
				arcs = append(arcs, arc{i: int(i), j: j})
			}
		}
	}
	if len(arcs) > maxSimplexArcs {
		return 0, fmt.Errorf("%w: %d arcs > %d", ErrTooLarge, len(arcs), maxSimplexArcs)
	}
	// Variable layout: x[0] = omega, x[1+k] = flow on arcs[k].
	nVars := 1 + len(arcs)
	prob := simplex.Problem{C: make([]float64, nVars)}
	prob.C[0] = -1 // maximize -omega
	// Supplier rows.
	for i := range suppliers {
		row := make([]float64, nVars)
		row[0] = -1
		for k, a := range arcs {
			if a.i == i {
				row[1+k] = 1
			}
		}
		prob.A = append(prob.A, row)
		prob.B = append(prob.B, 0)
	}
	// Demand rows.
	for j, q := range support {
		row := make([]float64, nVars)
		for k, a := range arcs {
			if a.j == j {
				row[1+k] = -1
			}
		}
		prob.A = append(prob.A, row)
		prob.B = append(prob.B, -float64(m.At(q)))
	}
	sol, err := simplex.Solve(prob)
	if err != nil {
		return 0, err
	}
	switch sol.Status {
	case simplex.Optimal:
		return -sol.Value, nil
	case simplex.Infeasible:
		// Cannot happen: every demand point is its own supplier, so omega =
		// max d is always feasible. Surface it as a bug.
		return 0, fmt.Errorf("lpchar: explicit LP infeasible (radius %d)", r)
	default:
		return 0, fmt.Errorf("lpchar: explicit LP %v (radius %d)", sol.Status, r)
	}
}
