package lpchar

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// TestThreeWayAgreement is the strongest form of the E4 duality check: the
// combinatorial solver (binary search + Dinic), the Lemma 2.2.2 closed form
// (subset enumeration), and the literal simplex transcription of LP (2.1)
// must all agree.
func TestThreeWayAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 25; trial++ {
		dim := 1 + rng.Intn(2)
		m := demand.NewMap(dim)
		points := 2 + rng.Intn(4)
		for i := 0; i < points; i++ {
			var p grid.Point
			for a := 0; a < dim; a++ {
				p[a] = int32(rng.Intn(5))
			}
			if err := m.Add(p, 1+rng.Int63n(15)); err != nil {
				t.Fatal(err)
			}
		}
		r := rng.Intn(3)
		flowV, err := FlowValue(m, r)
		if err != nil {
			t.Fatal(err)
		}
		subsetV, err := SubsetValue(m, r)
		if err != nil {
			t.Fatal(err)
		}
		simplexV, err := SimplexValue(m, r)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-6 * math.Max(1, subsetV)
		if math.Abs(flowV-simplexV) > tol || math.Abs(subsetV-simplexV) > tol {
			t.Errorf("trial %d (dim %d r %d): flow %v subset %v simplex %v",
				trial, dim, r, flowV, subsetV, simplexV)
		}
	}
}

func TestSimplexValueEmpty(t *testing.T) {
	if v, err := SimplexValue(demand.NewMap(2), 2); err != nil || v != 0 {
		t.Errorf("empty: %v %v", v, err)
	}
}

func TestSimplexValueSinglePointExact(t *testing.T) {
	// d at one point, radius r: value must be d / |ball(r)| exactly.
	m, err := demand.PointMass(2, grid.P(0, 0), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 1, 2} {
		ball := float64(2*r*r + 2*r + 1)
		got, err := SimplexValue(m, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-100/ball) > 1e-9 {
			t.Errorf("r=%d: %v, want %v", r, got, 100/ball)
		}
	}
}

func TestSimplexValueTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b, err := grid.NewBox(2, grid.P(0, 0), grid.P(30, 30))
	if err != nil {
		t.Fatal(err)
	}
	m, err := demand.Uniform(rng, b, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimplexValue(m, 4); !errors.Is(err, ErrTooLarge) {
		t.Errorf("want ErrTooLarge, got %v", err)
	}
}
