package lpchar

import (
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/flow"
	"repro/internal/grid"
)

// maxSupplyBoxVolume bounds the dense offset index over the support's
// r-neighborhood bounding box. The suppliers themselves number at most
// |support| * ballVolume regardless of how the support is spread, so past
// this the dense array would be dominated by -1 padding (a spatially sparse
// instance) and the index falls back to a point-keyed map with the same
// discovery order — dense for the compact instances every hot path probes,
// never worse than the suppliers themselves for spread ones.
const maxSupplyBoxVolume = 1 << 22

// denseIndexVolume is the dense-vs-map decision shared by the supply index
// and SubsetValue's cover pass: it returns the box volume and whether a
// dense array over the box beats a map holding up to covered entries (the
// volume may exceed the entry count by at most 8x padding). Volumes that
// overflow int64 are by definition sparse.
func denseIndexVolume(box grid.Box, covered int64) (int64, bool) {
	vol, err := box.VolumeChecked()
	if err != nil {
		return 0, false
	}
	return vol, vol <= maxSupplyBoxVolume && vol <= 1024+8*covered
}

// supplyIndex indexes the supply positions of LP (2.1): every lattice point
// within distance r of the demand support — exactly the vehicles that can
// participate — mapped to a dense supplier id. For compact supports (all
// hot paths) the index is a []int32 over the r-neighborhood bounding box,
// replacing the map[grid.Point] lookups of the construction path; supports
// whose bounding box is overwhelmingly empty fall back to a map so sparse
// spread instances stay exactly as feasible as before the dense refactor.
// Buffers are retained across builds so a warm rebind reuses them.
type supplyIndex struct {
	ix        grid.BoxIndex
	dense     bool
	id        []int32              // dense: supplier id per box offset, -1 when none
	idMap     map[grid.Point]int32 // sparse fallback: supplier id by point
	suppliers []grid.Point         // suppliers in discovery order (sorted support x ball order)
	// deltas caches the L1-ball offsets |delta|_1 <= r in the row-major
	// order NeighborhoodPoints produces, keyed by (dim, r).
	deltas             []grid.Point
	deltaDim, deltaRad int
}

// ballOffsets returns the L1-ball offsets for (dim, r), cached. The order is
// NeighborhoodPoints' row-major scan of the bounding box, which is
// translation-invariant — so enumerating q+delta visits exactly the points
// NeighborhoodPoints(box(q), r) would, in the same order.
func (si *supplyIndex) ballOffsets(dim, r int) ([]grid.Point, error) {
	if si.deltas != nil && si.deltaDim == dim && si.deltaRad == r {
		return si.deltas, nil
	}
	origin, err := grid.NewBox(dim, grid.Point{}, grid.Point{})
	if err != nil {
		return nil, err
	}
	si.deltas = grid.NeighborhoodPoints(origin, r)
	si.deltaDim, si.deltaRad = dim, r
	return si.deltas, nil
}

// build indexes the suppliers of (m, r). support must be m.Support() (passed
// in so callers that already have it avoid a second sort).
func (si *supplyIndex) build(m *demand.Map, r int, support []grid.Point) error {
	bbox, ok := m.BoundingBox()
	if !ok {
		return fmt.Errorf("lpchar: empty support")
	}
	box := bbox.Expand(r)
	deltas, err := si.ballOffsets(m.Dim(), r)
	if err != nil {
		return err
	}
	// Both modes discover suppliers in the same order, so the built graph —
	// and every value computed from it — is identical either way.
	maxSuppliers := int64(len(support)) * int64(len(deltas))
	var vol int64
	vol, si.dense = denseIndexVolume(box, maxSuppliers)
	si.suppliers = si.suppliers[:0]
	if si.dense {
		si.idMap = nil
		si.ix = grid.NewBoxIndex(box)
		if int64(cap(si.id)) < vol {
			si.id = make([]int32, vol)
		}
		si.id = si.id[:vol]
		for i := range si.id {
			si.id[i] = -1
		}
		for _, s := range support {
			for _, d := range deltas {
				p := s.Add(d)
				off := si.ix.Offset(p)
				if si.id[off] < 0 {
					si.id[off] = int32(len(si.suppliers))
					si.suppliers = append(si.suppliers, p)
				}
			}
		}
		return nil
	}
	si.id = si.id[:0]
	si.idMap = make(map[grid.Point]int32, maxSuppliers)
	for _, s := range support {
		for _, d := range deltas {
			p := s.Add(d)
			if _, seen := si.idMap[p]; !seen {
				si.idMap[p] = int32(len(si.suppliers))
				si.suppliers = append(si.suppliers, p)
			}
		}
	}
	return nil
}

// supplierAt returns the supplier id of p, or -1. In dense mode p must lie
// inside the indexed box (every point within r of the support does).
func (si *supplyIndex) supplierAt(p grid.Point) int32 {
	if si.dense {
		return si.id[si.ix.Offset(p)]
	}
	if id, ok := si.idMap[p]; ok {
		return id
	}
	return -1
}

// Solver answers LP (2.1) feasibility probes for one (demand, radius) pair
// without rebuilding anything: the supply graph is constructed once through
// the dense offset index, the source-edge ids are recorded, and FeasibleAt
// rewrites only those capacities before re-running max-flow on reset
// residual state. A probe allocates nothing; a full Value() is one
// construction plus ~60 warm probes (versus ~60 cold graph builds before).
//
// Solvers are rebindable: Bind(m, r) rebuilds the graph in place, reusing
// the network arrays and index buffers — the "one solver per worker" rule
// experiment sweeps follow, mirroring the online layer's one-runner-per-
// worker discipline. A Solver is not safe for concurrent use.
type Solver struct {
	total float64
	maxD  float64
	r     int
	src   int
	sink  int
	nw    *flow.Network
	// srcEdges[i] is the source edge of supplier i — the only capacities a
	// probe rewrites.
	srcEdges []int
	sup      supplyIndex
}

// NewSolver builds a warm-reusable solver for LP (2.1) on (m, r).
func NewSolver(m *demand.Map, r int) (*Solver, error) {
	s := new(Solver)
	if err := s.Bind(m, r); err != nil {
		return nil, err
	}
	return s, nil
}

// Bind (re)builds the solver for a new instance, reusing all retained
// storage. The resulting solver is indistinguishable from a freshly
// constructed one (TestSolverWarmEqualsCold pins this).
func (s *Solver) Bind(m *demand.Map, r int) error {
	if r < 0 {
		return fmt.Errorf("lpchar: negative radius %d", r)
	}
	s.total = float64(m.Total())
	s.maxD = float64(m.Max())
	s.r = r
	if s.total == 0 {
		// Clear per-instance state so accessors don't report the previous
		// binding.
		s.sup.suppliers = s.sup.suppliers[:0]
		s.srcEdges = s.srcEdges[:0]
		return nil
	}
	support := m.Support()
	if err := s.sup.build(m, r, support); err != nil {
		return err
	}
	// Node layout (identical to the pre-solver construction): 0 = source,
	// 1..len(suppliers) = suppliers, then demands, then sink.
	n := 2 + len(s.sup.suppliers) + len(support)
	if s.nw == nil {
		nw, err := flow.NewNetwork(n)
		if err != nil {
			return err
		}
		s.nw = nw
	} else if err := s.nw.Reinit(n); err != nil {
		return err
	}
	s.src, s.sink = 0, n-1
	s.srcEdges = s.srcEdges[:0]
	for i := range s.sup.suppliers {
		id, err := s.nw.AddEdge(s.src, 1+i, 0)
		if err != nil {
			return err
		}
		s.srcEdges = append(s.srcEdges, id)
	}
	deltas, err := s.sup.ballOffsets(m.Dim(), r)
	if err != nil {
		return err
	}
	for j, q := range support {
		dj := 1 + len(s.sup.suppliers) + j
		if _, err := s.nw.AddEdge(dj, s.sink, float64(m.At(q))); err != nil {
			return err
		}
		for _, d := range deltas {
			if si := s.sup.supplierAt(q.Add(d)); si >= 0 {
				if _, err := s.nw.AddEdge(1+int(si), dj, math.Inf(1)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Suppliers returns the number of supply positions in the bound instance.
func (s *Solver) Suppliers() int { return len(s.sup.suppliers) }

// Radius returns the bound transport radius.
func (s *Solver) Radius() int { return s.r }

// FeasibleAt reports whether capacity omega suffices for the bound instance:
// the transportation polytope of LP (2.1) with the given omega is nonempty.
// A warm probe rewrites only the source capacities and allocates nothing.
func (s *Solver) FeasibleAt(omega float64) (bool, error) {
	if s.total == 0 {
		return true, nil
	}
	if omega <= 0 {
		return false, nil
	}
	s.nw.Reset()
	for _, id := range s.srcEdges {
		if err := s.nw.SetCapacity(id, omega); err != nil {
			return false, err
		}
	}
	val, err := s.nw.MaxFlow(s.src, s.sink)
	if err != nil {
		return false, err
	}
	return val >= s.total*(1-1e-9)-1e-9, nil
}

// Value computes the exact value of LP (2.1) for the bound instance by
// binary search on omega over warm FeasibleAt probes — bit-identical to the
// pre-solver bisection, since each probe solves the same network.
func (s *Solver) Value() (float64, error) {
	if s.total == 0 {
		return 0, nil
	}
	lo, hi := 0.0, s.maxD
	// max_j d(j) is always feasible (each point serves itself), so hi works.
	for iter := 0; iter < 60 && hi-lo > 1e-9*math.Max(1, hi); iter++ {
		mid := (lo + hi) / 2
		ok, err := s.FeasibleAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
