package lpchar

import (
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/flow"
	"repro/internal/grid"
)

// Probe tolerances shared by the fresh oracle (Reset+MaxFlow) and the
// cut-certified probe path, hoisted so the two cannot drift.
// feasSlackRel/feasSlackAbs are the relative and absolute slack under
// which FeasibleAt treats the max flow as saturating the total demand;
// bisectMaxIters/bisectTolRel bound Value()'s bisection on omega.
const (
	feasSlackRel   = 1e-9
	feasSlackAbs   = 1e-9
	bisectMaxIters = 60
	bisectTolRel   = 1e-9
)

// probeGuardRel is the safety margin of the cut certificates: a probe is
// declared infeasible without running the oracle only when its retained-cut
// upper bound sits more than probeGuardRel*(1+total) below the saturation
// threshold. In exact arithmetic the bound dominates the max flow outright,
// so the guard only needs to absorb float slop: a couple of ulps in
// evaluating the bound (integer demands sum exactly in float64) plus the
// accumulated rounding by which the oracle's Dinic value can exceed the
// exact max flow — at most ~1e-11 on these magnitudes, since Dinic's Eps
// cutoff only ever pushes the value DOWN. 1e-8 relative keeps three orders
// of magnitude of headroom while leaving the guard band around the
// threshold narrow, which matters because every probe inside the band runs
// the full oracle: each factor of two of unnecessary width costs one
// un-certified bisection step. Every certified verdict equals the verdict
// the fresh computation would have produced, which is what keeps Value()'s
// bisection trajectory and output bit-identical to the from-scratch
// implementation.
const probeGuardRel = 1e-8

// maxSupplyBoxVolume bounds the dense offset index over the support's
// r-neighborhood bounding box. The suppliers themselves number at most
// |support| * ballVolume regardless of how the support is spread, so past
// this the dense array would be dominated by -1 padding (a spatially sparse
// instance) and the index falls back to a point-keyed map with the same
// discovery order — dense for the compact instances every hot path probes,
// never worse than the suppliers themselves for spread ones.
const maxSupplyBoxVolume = 1 << 22

// denseIndexVolume is the dense-vs-map decision shared by the supply index
// and SubsetValue's cover pass: it returns the box volume and whether a
// dense array over the box beats a map holding up to covered entries (the
// volume may exceed the entry count by at most 8x padding). Volumes that
// overflow int64 are by definition sparse.
func denseIndexVolume(box grid.Box, covered int64) (int64, bool) {
	vol, err := box.VolumeChecked()
	if err != nil {
		return 0, false
	}
	return vol, vol <= maxSupplyBoxVolume && vol <= 1024+8*covered
}

// supplyIndex indexes the supply positions of LP (2.1): every lattice point
// within distance r of the demand support — exactly the vehicles that can
// participate — mapped to a dense supplier id. For compact supports (all
// hot paths) the index is a []int32 over the r-neighborhood bounding box,
// replacing the map[grid.Point] lookups of the construction path; supports
// whose bounding box is overwhelmingly empty fall back to a map so sparse
// spread instances stay exactly as feasible as before the dense refactor.
// Buffers are retained across builds so a warm rebind reuses them.
type supplyIndex struct {
	ix        grid.BoxIndex
	dense     bool
	id        []int32              // dense: supplier id per box offset, -1 when none
	idMap     map[grid.Point]int32 // sparse fallback: supplier id by point
	suppliers []grid.Point         // suppliers in discovery order (sorted support x ball order)
	// deltas caches the L1-ball offsets |delta|_1 <= r in the row-major
	// order NeighborhoodPoints produces, keyed by (dim, r).
	deltas             []grid.Point
	deltaDim, deltaRad int
}

// ballOffsets returns the L1-ball offsets for (dim, r), cached. The order is
// NeighborhoodPoints' row-major scan of the bounding box, which is
// translation-invariant — so enumerating q+delta visits exactly the points
// NeighborhoodPoints(box(q), r) would, in the same order.
func (si *supplyIndex) ballOffsets(dim, r int) ([]grid.Point, error) {
	if si.deltas != nil && si.deltaDim == dim && si.deltaRad == r {
		return si.deltas, nil
	}
	origin, err := grid.NewBox(dim, grid.Point{}, grid.Point{})
	if err != nil {
		return nil, err
	}
	si.deltas = grid.NeighborhoodPoints(origin, r)
	si.deltaDim, si.deltaRad = dim, r
	return si.deltas, nil
}

// build indexes the suppliers of (m, r). support must be m.Support() (passed
// in so callers that already have it avoid a second sort).
func (si *supplyIndex) build(m *demand.Map, r int, support []grid.Point) error {
	bbox, ok := m.BoundingBox()
	if !ok {
		return fmt.Errorf("lpchar: empty support")
	}
	box := bbox.Expand(r)
	deltas, err := si.ballOffsets(m.Dim(), r)
	if err != nil {
		return err
	}
	// Both modes discover suppliers in the same order, so the built graph —
	// and every value computed from it — is identical either way.
	maxSuppliers := int64(len(support)) * int64(len(deltas))
	var vol int64
	vol, si.dense = denseIndexVolume(box, maxSuppliers)
	si.suppliers = si.suppliers[:0]
	if si.dense {
		si.idMap = nil
		si.ix = grid.NewBoxIndex(box)
		if int64(cap(si.id)) < vol {
			si.id = make([]int32, vol)
		}
		si.id = si.id[:vol]
		for i := range si.id {
			si.id[i] = -1
		}
		for _, s := range support {
			for _, d := range deltas {
				p := s.Add(d)
				off := si.ix.Offset(p)
				if si.id[off] < 0 {
					si.id[off] = int32(len(si.suppliers))
					si.suppliers = append(si.suppliers, p)
				}
			}
		}
		return nil
	}
	si.id = si.id[:0]
	si.idMap = make(map[grid.Point]int32, maxSuppliers)
	for _, s := range support {
		for _, d := range deltas {
			p := s.Add(d)
			if _, seen := si.idMap[p]; !seen {
				si.idMap[p] = int32(len(si.suppliers))
				si.suppliers = append(si.suppliers, p)
			}
		}
	}
	return nil
}

// supplierAt returns the supplier id of p, or -1. In dense mode p must lie
// inside the indexed box (every point within r of the support does).
func (si *supplyIndex) supplierAt(p grid.Point) int32 {
	if si.dense {
		return si.id[si.ix.Offset(p)]
	}
	if id, ok := si.idMap[p]; ok {
		return id
	}
	return -1
}

// relayout re-indexes the existing suppliers over the support's expanded
// r-neighborhood bounding box, preserving supplier ids, so findOrAdd can
// discover radius-extension suppliers against the full existing set. The
// dense/sparse decision is retaken with the same rule a fresh build at r
// applies (the ball volume comes from the closed form — extension walks
// rings, never materializing the full ball), so an extended index and a
// fresh one always agree on mode.
func (si *supplyIndex) relayout(m *demand.Map, r int, supportLen int) error {
	bbox, ok := m.BoundingBox()
	if !ok {
		return fmt.Errorf("lpchar: empty support")
	}
	box := bbox.Expand(r)
	origin, err := grid.NewBox(m.Dim(), grid.Point{}, grid.Point{})
	if err != nil {
		return err
	}
	covered := int64(math.MaxInt64)
	if f := float64(supportLen) * grid.NeighborhoodCountFloat(origin, float64(r)); f < float64(math.MaxInt64)/2 {
		covered = int64(f)
	}
	var vol int64
	vol, si.dense = denseIndexVolume(box, covered)
	if si.dense {
		si.idMap = nil
		si.ix = grid.NewBoxIndex(box)
		if int64(cap(si.id)) < vol {
			si.id = make([]int32, vol)
		}
		si.id = si.id[:vol]
		for i := range si.id {
			si.id[i] = -1
		}
		for i, p := range si.suppliers {
			si.id[si.ix.Offset(p)] = int32(i)
		}
		return nil
	}
	si.id = si.id[:0]
	si.idMap = make(map[grid.Point]int32, len(si.suppliers))
	for i, p := range si.suppliers {
		si.idMap[p] = int32(i)
	}
	return nil
}

// findOrAdd returns p's supplier id, registering it as a fresh supplier (and
// reporting fresh=true) when unseen. In dense mode p must lie inside the
// relayout box.
func (si *supplyIndex) findOrAdd(p grid.Point) (int32, bool) {
	if si.dense {
		off := si.ix.Offset(p)
		if si.id[off] >= 0 {
			return si.id[off], false
		}
		id := int32(len(si.suppliers))
		si.id[off] = id
		si.suppliers = append(si.suppliers, p)
		return id, true
	}
	if id, ok := si.idMap[p]; ok {
		return id, false
	}
	id := int32(len(si.suppliers))
	si.idMap[p] = id
	si.suppliers = append(si.suppliers, p)
	return id, true
}

// ringOffsets returns the offsets at L1 distance exactly rr from the origin
// — the shell ball(rr) adds over ball(rr-1) — in the row-major order the
// full-ball enumeration visits them.
func (si *supplyIndex) ringOffsets(dim, rr int) ([]grid.Point, error) {
	origin, err := grid.NewBox(dim, grid.Point{}, grid.Point{})
	if err != nil {
		return nil, err
	}
	var zero grid.Point
	all := grid.NeighborhoodPoints(origin, rr)
	ring := all[:0]
	for _, d := range all {
		if grid.Manhattan(d, zero) == rr {
			ring = append(ring, d)
		}
	}
	return ring, nil
}

// Solver answers LP (2.1) feasibility probes for one (demand, radius) pair
// without rebuilding anything: the supply graph is constructed once through
// the dense offset index, the source-edge ids are recorded, and FeasibleAt
// rewrites only those capacities before re-running max-flow on reset
// residual state. A probe allocates nothing; a full Value() is one
// construction plus ~60 warm probes (versus ~60 cold graph builds before).
//
// Solvers are rebindable: Bind(m, r) rebuilds the graph in place, reusing
// the network arrays and index buffers — the "one solver per worker" rule
// experiment sweeps follow, mirroring the online layer's one-runner-per-
// worker discipline. A Solver is not safe for concurrent use.
//
// Value() retains structure across the probes of its bisection (PR 7) — but
// the retained structure is the LP dual, not the primal flow. The max-flow
// value is a concave piecewise-linear function of omega, and any s-t cut
// bounds it from above at EVERY omega by fixed-capacity-crossing plus
// (source-edges-crossing * omega). Each infeasible oracle run leaves a
// minimum cut behind — the tangent line at that omega — which the solver
// keeps and uses to certify later infeasible probes without touching the
// flow network at all. Feasible probes always run the oracle: the LP's
// feasibility slack (1e-9-relative) is tighter than the float drift between
// any two augmentation orders, so a saturation verdict can only be taken
// from the canonical fresh computation. (A retained-primal ladder —
// RaiseCapacity + MaxFlowResume on ascending omega — was measured here and
// lost: nearly every probe near the threshold had to re-run the fresh
// oracle anyway, and the resumes were pure overhead. The flow package keeps
// the resume API; the solver rides the dual.) Every probe's verdict equals
// the fresh Reset+MaxFlow verdict, so the bisection trajectory — and
// therefore Value()'s output — is bit-identical to the from-scratch ladder.
type Solver struct {
	total float64
	maxD  float64
	r     int
	src   int
	sink  int
	nw    *flow.Network
	// srcEdges[i] is the source edge of supplier i — the only capacities a
	// probe rewrites.
	srcEdges []int
	sup      supplyIndex
	// Instance handles for radius extension and the coarse bounds.
	m       *demand.Map
	support []grid.Point // bind-time support (sorted); demand j is support[j]
	supNode []int32      // supplier id -> network node
	demBase int          // node of demand j is demBase + j
	cb      coarseBounds // radius-independent lower-bound witnesses
	// Retained cut certificate: the max flow at source capacity omega is at
	// most cutFix + cutSrc*omega (cutSrc source edges cross the cut at
	// capacity omega; cutFix is the demand capacity crossing elsewhere).
	// Captured from the minimum cut of the last infeasible oracle run; valid
	// for the bound graph structure, so Bind and ExtendRadius reset it. The
	// all-sources cut |srcEdges|*omega is always available alongside.
	cutOK  bool
	cutFix float64
	cutSrc float64
}

// NewSolver builds a warm-reusable solver for LP (2.1) on (m, r).
func NewSolver(m *demand.Map, r int) (*Solver, error) {
	s := new(Solver)
	if err := s.Bind(m, r); err != nil {
		return nil, err
	}
	return s, nil
}

// Bind (re)builds the solver for a new instance, reusing all retained
// storage. The resulting solver is indistinguishable from a freshly
// constructed one (TestSolverWarmEqualsCold pins this).
func (s *Solver) Bind(m *demand.Map, r int) error {
	if r < 0 {
		return fmt.Errorf("lpchar: negative radius %d", r)
	}
	s.total = float64(m.Total())
	s.maxD = float64(m.Max())
	s.r = r
	s.m = m
	s.cutOK = false
	if s.total == 0 {
		// Clear per-instance state so accessors don't report the previous
		// binding.
		s.sup.suppliers = s.sup.suppliers[:0]
		s.srcEdges = s.srcEdges[:0]
		s.support = s.support[:0]
		s.supNode = s.supNode[:0]
		return nil
	}
	support := m.Support()
	s.support = support
	if err := s.sup.build(m, r, support); err != nil {
		return err
	}
	// Node layout (identical to the pre-solver construction): 0 = source,
	// 1..len(suppliers) = suppliers, then demands, then sink.
	n := 2 + len(s.sup.suppliers) + len(support)
	if s.nw == nil {
		nw, err := flow.NewNetwork(n)
		if err != nil {
			return err
		}
		s.nw = nw
	} else if err := s.nw.Reinit(n); err != nil {
		return err
	}
	s.src, s.sink = 0, n-1
	s.demBase = 1 + len(s.sup.suppliers)
	s.srcEdges = s.srcEdges[:0]
	s.supNode = s.supNode[:0]
	for i := range s.sup.suppliers {
		id, err := s.nw.AddEdge(s.src, 1+i, 0)
		if err != nil {
			return err
		}
		s.srcEdges = append(s.srcEdges, id)
		s.supNode = append(s.supNode, int32(1+i))
	}
	deltas, err := s.sup.ballOffsets(m.Dim(), r)
	if err != nil {
		return err
	}
	for j, q := range support {
		dj := 1 + len(s.sup.suppliers) + j
		if _, err := s.nw.AddEdge(dj, s.sink, float64(m.At(q))); err != nil {
			return err
		}
		for _, d := range deltas {
			if si := s.sup.supplierAt(q.Add(d)); si >= 0 {
				if _, err := s.nw.AddEdge(1+int(si), dj, math.Inf(1)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Suppliers returns the number of supply positions in the bound instance.
func (s *Solver) Suppliers() int { return len(s.sup.suppliers) }

// Radius returns the bound transport radius.
func (s *Solver) Radius() int { return s.r }

// saturated is the feasibility verdict shared by the fresh and incremental
// paths: the max-flow value covers the total demand within slack.
func (s *Solver) saturated(val float64) bool {
	return val >= s.total*(1-feasSlackRel)-feasSlackAbs
}

// FeasibleAt reports whether capacity omega suffices for the bound instance:
// the transportation polytope of LP (2.1) with the given omega is nonempty.
// A warm probe rewrites only the source capacities and allocates nothing.
// This is the from-scratch oracle (Reset + MaxFlow from zero flow); Value()
// answers the same question through probe(), which skips the oracle when a
// retained cut already determines its verdict.
func (s *Solver) FeasibleAt(omega float64) (bool, error) {
	if s.total == 0 {
		return true, nil
	}
	if omega <= 0 {
		return false, nil
	}
	val, err := s.freshProbe(omega)
	if err != nil {
		return false, err
	}
	return s.saturated(val), nil
}

// freshProbe is the canonical oracle computation: Reset to zero flow, set
// the source capacities, one full MaxFlow. Bit-identical to a cold solve.
func (s *Solver) freshProbe(omega float64) (float64, error) {
	s.nw.Reset()
	for _, id := range s.srcEdges {
		if err := s.nw.SetCapacity(id, omega); err != nil {
			return 0, err
		}
	}
	return s.nw.MaxFlow(s.src, s.sink)
}

// probe answers one bisection probe at omega > 0, returning exactly the
// verdict FeasibleAt would (pinned by TestLadderVerdictsMatchFresh and the
// golden E4 pins) while keeping certifiably infeasible probes off the flow
// network entirely: when the retained cut — or the trivial all-sources cut
// |srcEdges|*omega — bounds the achievable flow a full guard below the
// saturation threshold, no verdict can come out feasible and the oracle is
// skipped. Otherwise the fresh oracle runs, and an infeasible run donates
// its minimum cut as the new retained certificate — the tangent to the
// concave flow-value curve at the highest infeasible omega seen, which is
// exactly the line that prunes the remaining infeasible probes as the
// bisection closes in from below. A warm probe allocates nothing.
func (s *Solver) probe(omega float64) (bool, error) {
	thr := s.total*(1-feasSlackRel) - feasSlackAbs
	guard := probeGuardRel * (1 + s.total)
	bound := float64(len(s.srcEdges)) * omega
	if s.cutOK {
		if b := s.cutFix + s.cutSrc*omega; b < bound {
			bound = b
		}
	}
	if bound < thr-guard {
		return false, nil
	}
	val, err := s.freshProbe(omega)
	if err != nil {
		return false, err
	}
	if s.saturated(val) {
		return true, nil
	}
	s.adoptCut()
	return false, nil
}

// adoptCut captures the minimum cut the oracle's last (infeasible) run left
// behind: suppliers unreachable in the final residual BFS cross the cut on
// their omega-capacity source edge, reachable demands cross it on their
// demand edge. Within one bisection, lo only rises, so the newest cut —
// tangent at the highest infeasible omega so far — dominates every earlier
// one on all future probes and is adopted unconditionally.
func (s *Solver) adoptCut() {
	src := 0.0
	for _, node := range s.supNode {
		if !s.nw.MinCutReachable(int(node)) {
			src++
		}
	}
	fix := 0.0
	for j, q := range s.support {
		if s.nw.MinCutReachable(s.demBase + j) {
			fix += float64(s.m.At(q))
		}
	}
	s.cutFix, s.cutSrc = fix, src
	s.cutOK = true
}

// lowerBound returns the certified-infeasible threshold for the bound
// radius: probes strictly below it are guaranteed an infeasible verdict
// from the flow oracle, so Value() skips their flow solves entirely. The
// bound instance knows |N_r(support)| exactly — its supplier count — which
// sharpens the box witnesses' closed-form counts.
func (s *Solver) lowerBound() (float64, error) {
	if err := s.cb.ensure(s.m); err != nil {
		return 0, err
	}
	lb := s.cb.lowerAt(float64(s.r))
	if n := len(s.sup.suppliers); n > 0 {
		if v := s.total/float64(n) - s.cb.margin(); v > lb {
			lb = v
		}
	}
	return lb, nil
}

// Value computes the exact value of LP (2.1) for the bound instance by
// binary search on omega. Probes below the coarse witness bound and probes
// pruned by the retained cut certificates never run the flow oracle;
// because every probe's verdict matches the fresh Reset+MaxFlow oracle, the
// bisection trajectory and the returned value are bit-identical to the
// pre-incremental implementation.
func (s *Solver) Value() (float64, error) {
	if s.total == 0 {
		return 0, nil
	}
	lb, err := s.lowerBound()
	if err != nil {
		return 0, err
	}
	lo, hi := 0.0, s.maxD
	// max_j d(j) is always feasible (each point serves itself), so hi works.
	for iter := 0; iter < bisectMaxIters && hi-lo > bisectTolRel*math.Max(1, hi); iter++ {
		mid := (lo + hi) / 2
		if mid < lb {
			// Certified infeasible: the deficit at mid exceeds the
			// feasibility slack by the safety margin, so the oracle's
			// verdict is known without running it.
			lo = mid
			continue
		}
		ok, err := s.probe(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// ExtendRadius grows the bound radius in place. L1 balls are nested, so the
// radius-newR supply graph is the radius-r graph plus (a) suppliers at ring
// distance exactly r+1..newR from the support and (b) supplier->demand arcs
// for pairs at exactly those distances — and enumerating support x ring
// visits every such pair exactly once. The extended graph therefore has
// exactly the edge set a fresh Bind(m, newR) builds, with the additions
// appended rather than interleaved; Value() on the two orderings is pinned
// equal by TestExtendRadiusMatchesFresh. Shrinking requires a full Bind.
func (s *Solver) ExtendRadius(newR int) error {
	if newR < s.r {
		return fmt.Errorf("lpchar: ExtendRadius to %d below bound radius %d (rebind to shrink)", newR, s.r)
	}
	if s.total == 0 || newR == s.r {
		s.r = newR
		return nil
	}
	oldR := s.r
	if err := s.sup.relayout(s.m, newR, len(s.support)); err != nil {
		return err
	}
	for rr := oldR + 1; rr <= newR; rr++ {
		ring, err := s.sup.ringOffsets(s.m.Dim(), rr)
		if err != nil {
			return err
		}
		for j, q := range s.support {
			dj := s.demBase + j
			for _, d := range ring {
				sid, fresh := s.sup.findOrAdd(q.Add(d))
				if fresh {
					node, err := s.nw.AddNodes(1)
					if err != nil {
						return err
					}
					eid, err := s.nw.AddEdge(s.src, node, 0)
					if err != nil {
						return err
					}
					s.supNode = append(s.supNode, int32(node))
					s.srcEdges = append(s.srcEdges, eid)
				}
				if _, err := s.nw.AddEdge(int(s.supNode[sid]), dj, math.Inf(1)); err != nil {
					return err
				}
			}
		}
	}
	s.r = newR
	s.cutOK = false // the retained cut does not cover the appended suppliers
	return nil
}
