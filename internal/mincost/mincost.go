// Package mincost implements minimum-cost maximum-flow via successive
// shortest augmenting paths with Johnson potentials (Dijkstra after an
// initial Bellman-Ford). It is the substrate for the classical
// Transportation Problem solver (package transport), which the thesis
// contrasts with its own LP (2.1) in Section 2.2: there the supply
// distribution is a *variable*, here it is given and only the transport
// cost is minimized.
package mincost

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Eps is the tolerance for treating residual capacity as zero.
const Eps = 1e-9

// ErrNegativeCycle is returned when the initial graph contains a negative
// cost cycle reachable from the source.
var ErrNegativeCycle = errors.New("mincost: negative cost cycle")

// Network is a directed flow network with per-edge costs.
type Network struct {
	n     int
	heads []int32
	to    []int32
	next  []int32
	cap   []float64
	cost  []float64
}

// NewNetwork creates a network with n nodes.
func NewNetwork(n int) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("mincost: need at least 2 nodes, got %d", n)
	}
	heads := make([]int32, n)
	for i := range heads {
		heads[i] = -1
	}
	return &Network{n: n, heads: heads}, nil
}

// AddEdge adds a directed edge u->v with capacity and per-unit cost,
// returning the edge id.
func (nw *Network) AddEdge(u, v int, capacity, cost float64) (int, error) {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		return 0, fmt.Errorf("mincost: edge (%d,%d) out of range [0,%d)", u, v, nw.n)
	}
	if capacity < 0 || math.IsNaN(capacity) || math.IsNaN(cost) {
		return 0, fmt.Errorf("mincost: invalid capacity %v or cost %v", capacity, cost)
	}
	id := len(nw.to)
	nw.to = append(nw.to, int32(v), int32(u))
	nw.cap = append(nw.cap, capacity, 0)
	nw.cost = append(nw.cost, cost, -cost)
	nw.next = append(nw.next, nw.heads[u], nw.heads[v])
	nw.heads[u] = int32(id)
	nw.heads[v] = int32(id + 1)
	return id, nil
}

// Flow returns the flow pushed through edge id after MinCostFlow.
func (nw *Network) Flow(id int) float64 { return nw.cap[id^1] }

// Result reports a min-cost flow computation.
type Result struct {
	// Flow is the total flow shipped (the maximum flow value, or the
	// requested amount if it was reachable).
	Flow float64
	// Cost is the total cost of the shipped flow.
	Cost float64
}

// MinCostFlow ships up to `want` units from s to t at minimum cost (pass
// math.Inf(1) for min-cost *max*-flow) and returns the shipped amount and
// its cost.
func (nw *Network) MinCostFlow(s, t int, want float64) (*Result, error) {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n || s == t {
		return nil, fmt.Errorf("mincost: bad terminals s=%d t=%d", s, t)
	}
	if want < 0 {
		return nil, fmt.Errorf("mincost: negative target flow %v", want)
	}
	pot := make([]float64, nw.n)
	// Initial potentials by Bellman-Ford (handles negative edge costs).
	if err := nw.bellmanFord(s, pot); err != nil {
		return nil, err
	}
	dist := make([]float64, nw.n)
	inEdge := make([]int32, nw.n)
	res := &Result{}
	for res.Flow < want-Eps {
		if !nw.dijkstra(s, t, pot, dist, inEdge) {
			break // t unreachable: max flow achieved
		}
		// Update potentials and find bottleneck along the s-t path.
		for v := 0; v < nw.n; v++ {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
			}
		}
		bottleneck := want - res.Flow
		for v := t; v != s; {
			e := inEdge[v]
			if nw.cap[e] < bottleneck {
				bottleneck = nw.cap[e]
			}
			v = int(nw.to[e^1])
		}
		for v := t; v != s; {
			e := inEdge[v]
			nw.cap[e] -= bottleneck
			nw.cap[e^1] += bottleneck
			res.Cost += bottleneck * nw.cost[e]
			v = int(nw.to[e^1])
		}
		res.Flow += bottleneck
	}
	return res, nil
}

func (nw *Network) bellmanFord(s int, pot []float64) error {
	for i := range pot {
		pot[i] = math.Inf(1)
	}
	pot[s] = 0
	for iter := 0; iter < nw.n; iter++ {
		changed := false
		for u := 0; u < nw.n; u++ {
			if math.IsInf(pot[u], 1) {
				continue
			}
			for e := nw.heads[u]; e != -1; e = nw.next[e] {
				if nw.cap[e] > Eps && pot[u]+nw.cost[e] < pot[nw.to[e]]-Eps {
					pot[nw.to[e]] = pot[u] + nw.cost[e]
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == nw.n-1 {
			return ErrNegativeCycle
		}
	}
	// Unreachable nodes keep +Inf potential; Dijkstra skips them.
	return nil
}

type pqItem struct {
	node int32
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	item := old[n-1]
	*p = old[:n-1]
	return item
}

// dijkstra computes reduced-cost shortest paths from s; returns false when t
// is unreachable in the residual graph.
func (nw *Network) dijkstra(s, t int, pot, dist []float64, inEdge []int32) bool {
	for i := range dist {
		dist[i] = math.Inf(1)
		inEdge[i] = -1
	}
	dist[s] = 0
	q := pq{{node: int32(s)}}
	for len(q) > 0 {
		item := heap.Pop(&q).(pqItem)
		u := int(item.node)
		if item.dist > dist[u]+Eps {
			continue
		}
		for e := nw.heads[u]; e != -1; e = nw.next[e] {
			v := int(nw.to[e])
			if nw.cap[e] <= Eps || math.IsInf(pot[v], 1) {
				continue
			}
			nd := dist[u] + nw.cost[e] + pot[u] - pot[v]
			if nd < dist[v]-Eps {
				dist[v] = nd
				inEdge[v] = e
				heap.Push(&q, pqItem{node: int32(v), dist: nd})
			}
		}
	}
	return !math.IsInf(dist[t], 1)
}
