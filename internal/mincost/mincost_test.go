package mincost

import (
	"math"
	"math/rand"
	"testing"
)

func mustNet(t *testing.T, n int) *Network {
	t.Helper()
	nw, err := NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func addEdge(t *testing.T, nw *Network, u, v int, c, cost float64) int {
	t.Helper()
	id, err := nw.AddEdge(u, v, c, cost)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestValidation(t *testing.T) {
	if _, err := NewNetwork(1); err == nil {
		t.Error("1 node should fail")
	}
	nw := mustNet(t, 3)
	if _, err := nw.AddEdge(0, 5, 1, 1); err == nil {
		t.Error("out of range should fail")
	}
	if _, err := nw.AddEdge(0, 1, -1, 1); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := nw.AddEdge(0, 1, 1, math.NaN()); err == nil {
		t.Error("NaN cost should fail")
	}
	if _, err := nw.MinCostFlow(0, 0, 1); err == nil {
		t.Error("s==t should fail")
	}
	if _, err := nw.MinCostFlow(0, 1, -1); err == nil {
		t.Error("negative want should fail")
	}
}

func TestSingleEdge(t *testing.T) {
	nw := mustNet(t, 2)
	id := addEdge(t, nw, 0, 1, 5, 3)
	res, err := nw.MinCostFlow(0, 1, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Flow-5) > Eps || math.Abs(res.Cost-15) > Eps {
		t.Fatalf("result %+v", res)
	}
	if math.Abs(nw.Flow(id)-5) > Eps {
		t.Errorf("edge flow %v", nw.Flow(id))
	}
}

func TestPartialFlow(t *testing.T) {
	nw := mustNet(t, 2)
	addEdge(t, nw, 0, 1, 5, 3)
	res, err := nw.MinCostFlow(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Flow-2) > Eps || math.Abs(res.Cost-6) > Eps {
		t.Fatalf("result %+v", res)
	}
}

func TestPrefersCheapPath(t *testing.T) {
	// Two parallel 2-hop paths: cheap (cost 1+1) cap 3, expensive (5+5)
	// cap 10. Shipping 5 units must use the cheap path fully first.
	nw := mustNet(t, 4)
	addEdge(t, nw, 0, 1, 3, 1)
	addEdge(t, nw, 1, 3, 3, 1)
	addEdge(t, nw, 0, 2, 10, 5)
	addEdge(t, nw, 2, 3, 10, 5)
	res, err := nw.MinCostFlow(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0*2 + 2.0*10
	if math.Abs(res.Flow-5) > Eps || math.Abs(res.Cost-want) > Eps {
		t.Fatalf("flow %v cost %v, want 5 / %v", res.Flow, res.Cost, want)
	}
}

func TestReroutingThroughResidual(t *testing.T) {
	// Classic instance where the optimum requires cancelling flow on an
	// earlier augmenting path via the residual reverse edge.
	nw := mustNet(t, 4)
	addEdge(t, nw, 0, 1, 1, 1)
	addEdge(t, nw, 0, 2, 1, 10)
	addEdge(t, nw, 1, 2, 1, -8)
	addEdge(t, nw, 1, 3, 1, 10)
	addEdge(t, nw, 2, 3, 1, 1)
	// One unit: the cheapest route is 0-1-2-3 at cost 1-8+1 = -6.
	res, err := nw.MinCostFlow(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Flow-1) > Eps || math.Abs(res.Cost-(-6)) > 1e-9 {
		t.Fatalf("1 unit: flow %v cost %v, want 1 / -6", res.Flow, res.Cost)
	}
	// Max flow: 2 units must split onto 0-1-3 and 0-2-3 (2-3 has cap 1),
	// total cost 11 + 11 = 22 — the earlier negative shortcut gets undone
	// through the residual graph.
	nw2 := mustNet(t, 4)
	addEdge(t, nw2, 0, 1, 1, 1)
	addEdge(t, nw2, 0, 2, 1, 10)
	addEdge(t, nw2, 1, 2, 1, -8)
	addEdge(t, nw2, 1, 3, 1, 10)
	addEdge(t, nw2, 2, 3, 1, 1)
	res, err = nw2.MinCostFlow(0, 3, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Flow-2) > Eps || math.Abs(res.Cost-22) > 1e-9 {
		t.Fatalf("max flow: flow %v cost %v, want 2 / 22", res.Flow, res.Cost)
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	nw := mustNet(t, 3)
	addEdge(t, nw, 0, 1, 1, -5)
	addEdge(t, nw, 1, 0, 1, -5)
	addEdge(t, nw, 1, 2, 1, 1)
	if _, err := nw.MinCostFlow(0, 2, 1); err == nil {
		t.Error("negative cycle should be detected")
	}
}

func TestDisconnected(t *testing.T) {
	nw := mustNet(t, 4)
	addEdge(t, nw, 0, 1, 5, 1)
	addEdge(t, nw, 2, 3, 5, 1)
	res, err := nw.MinCostFlow(0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("result %+v", res)
	}
}

// TestAgainstBruteForceTransport cross-checks min-cost flow on random small
// bipartite transportation instances against exhaustive enumeration of
// integer shipping plans.
func TestAgainstBruteForceTransport(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		nSup, nDem := 2, 2
		sup := []int{1 + rng.Intn(3), 1 + rng.Intn(3)}
		cost := [2][2]float64{}
		for i := 0; i < nSup; i++ {
			for j := 0; j < nDem; j++ {
				cost[i][j] = float64(rng.Intn(10))
			}
		}
		dem := []int{1 + rng.Intn(2), 1 + rng.Intn(2)}
		total := dem[0] + dem[1]
		if sup[0]+sup[1] < total {
			continue
		}
		// Brute force over x00 in 0..min(sup0,dem0) etc.
		best := math.Inf(1)
		for x00 := 0; x00 <= min(sup[0], dem[0]); x00++ {
			for x01 := 0; x01 <= min(sup[0]-x00, dem[1]); x01++ {
				x10 := dem[0] - x00
				x11 := dem[1] - x01
				if x10 < 0 || x11 < 0 || x10+x11 > sup[1] {
					continue
				}
				c := float64(x00)*cost[0][0] + float64(x01)*cost[0][1] +
					float64(x10)*cost[1][0] + float64(x11)*cost[1][1]
				if c < best {
					best = c
				}
			}
		}
		if math.IsInf(best, 1) {
			continue
		}
		nw := mustNet(t, 6) // 0 src, 1-2 suppliers, 3-4 demands, 5 sink
		for i := 0; i < nSup; i++ {
			addEdge(t, nw, 0, 1+i, float64(sup[i]), 0)
			for j := 0; j < nDem; j++ {
				addEdge(t, nw, 1+i, 3+j, math.Inf(1), cost[i][j])
			}
		}
		for j := 0; j < nDem; j++ {
			addEdge(t, nw, 3+j, 5, float64(dem[j]), 0)
		}
		res, err := nw.MinCostFlow(0, 5, float64(total))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Flow-float64(total)) > Eps {
			t.Fatalf("trial %d: shipped %v of %d", trial, res.Flow, total)
		}
		if math.Abs(res.Cost-best) > 1e-6 {
			t.Fatalf("trial %d: cost %v, brute force %v (sup %v dem %v cost %v)",
				trial, res.Cost, best, sup, dem, cost)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
