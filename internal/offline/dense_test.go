package offline

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// TestDenseSharedViewMatchesStandalone pins that one shared Dense view
// driving the whole pipeline (characterize, estimate, construct) returns
// exactly what the standalone per-call functions return — the offline
// warm ≡ cold contract.
func TestDenseSharedViewMatchesStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	arena := grid.MustNew(16, 16)
	inner, err := grid.NewBox(2, grid.P(4, 4), grid.P(11, 11))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		m, err := demand.Uniform(rng, inner, 300)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDense(m, arena)
		if err != nil {
			t.Fatal(err)
		}

		charShared, err := d.OmegaC()
		if err != nil {
			t.Fatal(err)
		}
		charCold, err := OmegaC(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		if charShared != charCold {
			t.Fatalf("trial %d: shared OmegaC %+v != standalone %+v", trial, charShared, charCold)
		}

		resShared, err := d.Algorithm1()
		if err != nil {
			t.Fatal(err)
		}
		resCold, err := Algorithm1(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		if resShared != resCold {
			t.Fatalf("trial %d: shared Algorithm1 %+v != standalone %+v", trial, resShared, resCold)
		}

		schedShared, err := d.BuildSchedule(charShared)
		if err != nil {
			t.Fatal(err)
		}
		schedWithChar, err := BuildScheduleWithChar(m, arena, charCold)
		if err != nil {
			t.Fatal(err)
		}
		schedCold, err := BuildSchedule(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(schedShared, schedWithChar) {
			t.Fatalf("trial %d: shared schedule differs from BuildScheduleWithChar", trial)
		}
		if !reflect.DeepEqual(schedShared, schedCold) {
			t.Fatalf("trial %d: shared schedule differs from BuildSchedule", trial)
		}
		if _, err := VerifySchedule(m, schedShared, schedShared.W); err != nil {
			t.Fatalf("trial %d: shared schedule invalid: %v", trial, err)
		}
	}
}

func TestDenseAt(t *testing.T) {
	arena := grid.MustNew(4, 4)
	m := demand.NewMap(2)
	if err := m.Add(grid.P(2, 3), 7); err != nil {
		t.Fatal(err)
	}
	d, err := NewDense(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	if d.Arena() != arena {
		t.Error("Arena() should return the construction arena")
	}
	if got := d.At(grid.P(2, 3)); got != 7 {
		t.Errorf("At = %d, want 7", got)
	}
	if got := d.At(grid.P(0, 0)); got != 0 {
		t.Errorf("At empty cell = %d, want 0", got)
	}
}

func TestDenseOutsideArena(t *testing.T) {
	m := demand.NewMap(2)
	if err := m.Add(grid.P(50, 50), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDense(m, grid.MustNew(8, 8)); err == nil {
		t.Error("demand outside arena should fail")
	}
}
