package offline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// The thesis analyzes general dimension l; Algorithm 1 and the schedule
// construction must work beyond the plane. These tests sweep l = 1 and 3.

func TestAlgorithm1OneDimensional(t *testing.T) {
	arena := grid.MustNew(64)
	m := demand.NewMap(1)
	if err := m.Add(grid.P(32), 40); err != nil {
		t.Fatal(err)
	}
	res, err := Algorithm1(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch != BranchCube {
		t.Fatalf("branch %v", res.Branch)
	}
	// 1-D constant: (2*3^1 + 1) * w.
	if res.W != float64(7*res.CubeSide) {
		t.Errorf("W = %v for cube side %d", res.W, res.CubeSide)
	}
}

func TestAlgorithm1ThreeDimensional(t *testing.T) {
	arena := grid.MustNew(8, 8, 8)
	m := demand.NewMap(3)
	if err := m.Add(grid.P(4, 4, 4), 100); err != nil {
		t.Fatal(err)
	}
	res, err := Algorithm1(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	if res.Branch != BranchCube {
		t.Fatalf("branch %v", res.Branch)
	}
	// w=2: aligned 2-cube sum 100 <= 2*6^3 = 432, so the first level works.
	if res.CubeSide != 2 {
		t.Errorf("cube side %d", res.CubeSide)
	}
	if want := float64((2*27 + 3) * 2); res.W != want {
		t.Errorf("W = %v, want %v", res.W, want)
	}
}

func TestScheduleOneAndThreeDimensional(t *testing.T) {
	cases := []struct {
		name  string
		arena *grid.Grid
		dim   int
		fill  func(m *demand.Map, rng *rand.Rand) error
	}{
		{
			name: "1d-uniform", arena: grid.MustNew(64), dim: 1,
			fill: func(m *demand.Map, rng *rand.Rand) error {
				for i := 0; i < 200; i++ {
					if err := m.Add(grid.P(16+rng.Intn(32)), 1); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			name: "3d-cluster", arena: grid.MustNew(12, 12, 12), dim: 3,
			fill: func(m *demand.Map, rng *rand.Rand) error {
				for i := 0; i < 300; i++ {
					p := grid.P(4+rng.Intn(4), 4+rng.Intn(4), 4+rng.Intn(4))
					if err := m.Add(p, 1); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			m := demand.NewMap(tc.dim)
			if err := tc.fill(m, rng); err != nil {
				t.Fatal(err)
			}
			sched, err := BuildSchedule(m, tc.arena)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := VerifySchedule(m, sched, sched.W); err != nil {
				t.Fatal(err)
			}
			bound := float64(2*pow(3, tc.dim)+int64(tc.dim))*math.Max(sched.OmegaC, 1) + 4
			if sched.W > bound {
				t.Errorf("W %v exceeds dimension bound %v (omega_c %v)",
					sched.W, bound, sched.OmegaC)
			}
		})
	}
}

func TestOmegaCDimensionalConstants(t *testing.T) {
	// The same point demand needs less capacity in higher dimension (more
	// vehicles within reach): omega scales like d^(1/(l+1)).
	d := int64(4000)
	prev := math.Inf(1)
	for _, tc := range []struct {
		arena *grid.Grid
		pt    grid.Point
	}{
		{grid.MustNew(256), grid.P(128)},
		{grid.MustNew(64, 64), grid.P(32, 32)},
		{grid.MustNew(32, 32, 32), grid.P(16, 16, 16)},
	} {
		m := demand.NewMap(tc.arena.Dim())
		if err := m.Add(tc.pt, d); err != nil {
			t.Fatal(err)
		}
		char, err := OmegaC(m, tc.arena)
		if err != nil {
			t.Fatal(err)
		}
		if char.Omega >= prev {
			t.Errorf("dim %d: omega_c %v did not shrink (prev %v)",
				tc.arena.Dim(), char.Omega, prev)
		}
		prev = char.Omega
	}
}
