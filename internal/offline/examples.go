package offline

import (
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/grid"
)

// This file realizes the thesis' two illustrated example strategies as
// concrete, verifier-checked schedules — turning the Figure 2.2 and Figure
// 2.3 pictures into executable constructions.

// LineStrategy builds the Figure 2.2 schedule for Example 2: demand d at
// every point of a horizontal line. Every vehicle within L1 distance
// floor(W2) of the line moves vertically to its nearest line point and
// serves with its remaining energy, where W2 solves W*(2W+1) = d. The
// returned schedule uses per-vehicle capacity 2*W2 (+1 rounding), exactly
// the thesis' claim.
func LineStrategy(start grid.Point, length int, d int64) (*Schedule, *demand.Map, error) {
	if length < 1 || d < 0 {
		return nil, nil, fmt.Errorf("offline: bad line strategy params length=%d d=%d", length, d)
	}
	m, err := demand.Line(start, length, d)
	if err != nil {
		return nil, nil, err
	}
	if d == 0 {
		return &Schedule{}, m, nil
	}
	// W2: the positive root of w(2w+1) = d.
	df := float64(d)
	w2 := (-1 + math.Sqrt(1+8*df)) / 4
	capacity := 2*w2 + 1 // +1 absorbs integer rounding of the band radius
	// Round the band radius: floor() collapses the band at near-integer
	// roots (floor(1-eps) = 0) and the pooled-capacity guarantee tolerates
	// r = round(w2) on both sides.
	r := int(math.Round(w2))
	sched := &Schedule{CubeSide: 2*r + 1, OmegaC: w2}
	y0 := start.Coord(1)
	for i := 0; i < length; i++ {
		x := start.Coord(0) + i
		remaining := d
		// The column of vehicles at offsets -r..r serves this line point.
		for dy := -r; dy <= r && remaining > 0; dy++ {
			home := grid.P(x, y0+dy)
			walk := float64(abs(dy))
			budget := int64(math.Floor(capacity - walk - 1e-9))
			if budget <= 0 {
				continue
			}
			serve := remaining
			if serve > budget {
				serve = budget
			}
			remaining -= serve
			pl := VehiclePlan{Home: home}
			if dy == 0 {
				pl.ServeHome = serve
			} else {
				pl.Moved = true
				pl.Dest = grid.P(x, y0)
				pl.ServeDest = serve
			}
			sched.Plans = append(sched.Plans, pl)
			if e := pl.Energy(); e > sched.W {
				sched.W = e
			}
		}
		if remaining > 0 {
			return nil, nil, fmt.Errorf("offline: line strategy short %d jobs at x=%d (W2=%v)",
				remaining, x, w2)
		}
	}
	return sched, m, nil
}

// PointStrategy builds the Figure 2.3 schedule for Example 3: demand d at a
// single point p. Every vehicle in the (2r+1) x (2r+1) square centered at p
// (r = floor(W3), W3 the root of W*(2W+1)^2 = d) walks to p and serves with
// what remains of capacity 3*W3 (+2 rounding slack), the thesis' claim.
func PointStrategy(p grid.Point, d int64) (*Schedule, *demand.Map, error) {
	if d < 0 {
		return nil, nil, fmt.Errorf("offline: negative demand %d", d)
	}
	m, err := demand.PointMass(2, p, d)
	if err != nil {
		return nil, nil, err
	}
	if d == 0 {
		return &Schedule{}, m, nil
	}
	df := float64(d)
	w3 := solveCubic(df)
	capacity := 3*w3 + 2
	// Round, not floor: see LineStrategy.
	r := int(math.Round(w3))
	sched := &Schedule{CubeSide: 2*r + 1, OmegaC: w3}
	remaining := d
	for dx := -r; dx <= r && remaining > 0; dx++ {
		for dy := -r; dy <= r && remaining > 0; dy++ {
			home := p.Add(grid.P(dx, dy))
			walk := float64(abs(dx) + abs(dy))
			budget := int64(math.Floor(capacity - walk - 1e-9))
			if budget <= 0 {
				continue
			}
			serve := remaining
			if serve > budget {
				serve = budget
			}
			remaining -= serve
			pl := VehiclePlan{Home: home}
			if walk == 0 {
				pl.ServeHome = serve
			} else {
				pl.Moved = true
				pl.Dest = p
				pl.ServeDest = serve
			}
			sched.Plans = append(sched.Plans, pl)
			if e := pl.Energy(); e > sched.W {
				sched.W = e
			}
		}
	}
	if remaining > 0 {
		return nil, nil, fmt.Errorf("offline: point strategy short %d jobs (W3=%v)", remaining, w3)
	}
	return sched, m, nil
}

// solveCubic returns the positive root of w*(2w+1)^2 = d by bisection.
func solveCubic(d float64) float64 {
	lo, hi := 0.0, 1.0
	for hi*(2*hi+1)*(2*hi+1) < d {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if mid*(2*mid+1)*(2*mid+1) < d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
