package offline

import (
	"math"
	"testing"

	"repro/internal/grid"
)

// The Figure 2.2 / 2.3 strategies as executable constructions: the schedules
// they emit must pass the independent verifier at the thesis' capacities.

func TestLineStrategyFeasibleAtTwoW2(t *testing.T) {
	for _, d := range []int64{1, 8, 50, 500, 5000} {
		sched, m, err := LineStrategy(grid.P(0, 50), 64, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		maxE, err := VerifySchedule(m, sched, sched.W)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		// The thesis' claim: capacity 2*W2 suffices (we allow +1 rounding).
		w2 := (-1 + math.Sqrt(1+8*float64(d))) / 4
		if maxE > 2*w2+1+1e-9 {
			t.Errorf("d=%d: strategy used %v > 2*W2+1 = %v", d, maxE, 2*w2+1)
		}
	}
}

func TestLineStrategyZeroAndErrors(t *testing.T) {
	sched, _, err := LineStrategy(grid.P(0, 0), 4, 0)
	if err != nil || len(sched.Plans) != 0 {
		t.Errorf("zero demand: %v %v", sched, err)
	}
	if _, _, err := LineStrategy(grid.P(0, 0), 0, 5); err == nil {
		t.Error("length 0 should fail")
	}
	if _, _, err := LineStrategy(grid.P(0, 0), 4, -1); err == nil {
		t.Error("negative demand should fail")
	}
}

func TestPointStrategyFeasibleAtThreeW3(t *testing.T) {
	for _, d := range []int64{1, 9, 100, 10000, 1000000} {
		sched, m, err := PointStrategy(grid.P(1000, 1000), d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		maxE, err := VerifySchedule(m, sched, sched.W)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		w3 := solveCubic(float64(d))
		if maxE > 3*w3+2+1e-9 {
			t.Errorf("d=%d: strategy used %v > 3*W3+2 = %v", d, maxE, 3*w3+2)
		}
	}
}

func TestPointStrategyZeroAndErrors(t *testing.T) {
	sched, _, err := PointStrategy(grid.P(0, 0), 0)
	if err != nil || len(sched.Plans) != 0 {
		t.Errorf("zero demand: %v %v", sched, err)
	}
	if _, _, err := PointStrategy(grid.P(0, 0), -1); err == nil {
		t.Error("negative demand should fail")
	}
}

func TestSolveCubic(t *testing.T) {
	for _, d := range []float64{1, 64, 4096, 1e9} {
		w := solveCubic(d)
		if got := w * (2*w + 1) * (2*w + 1); math.Abs(got-d) > 1e-6*d {
			t.Errorf("d=%v: root %v gives %v", d, w, got)
		}
	}
}
