// Package offline implements the offline half of the thesis' contribution
// (Chapter 2): the cube characterization omega_c of Corollary 2.2.7, the
// linear-time approximation Algorithm 1 for Woff, and the constructive
// vehicle schedule of Lemma 2.2.5 together with a feasibility verifier. The
// schedule is what turns the existence proof into a deployable plan: it
// demonstrates the upper bound Woff <= (2*3^l + l) * omega* by construction.
package offline

import (
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/grid"
)

// pow returns base^exp for small integer exponents.
func pow(base, exp int) int64 {
	r := int64(1)
	for i := 0; i < exp; i++ {
		r *= int64(base)
	}
	return r
}

// Dense is the dense offline view of one (demand, arena) pair: the
// arena-indexed value array and, lazily, its summed-area table — built once
// and shared by every Chapter 2 solver, so the full offline pipeline
// (characterize, estimate, construct) densifies the demand exactly once.
// A Dense is immutable after construction apart from the lazily built
// prefix sum, and is not safe for concurrent use.
type Dense struct {
	m     *demand.Map
	arena *grid.Grid
	vals  []int64
	ps    *grid.PrefixSum
}

// NewDense densifies m over arena (m.Values fails for demand outside it).
func NewDense(m *demand.Map, arena *grid.Grid) (*Dense, error) {
	vals, err := m.Values(arena)
	if err != nil {
		return nil, err
	}
	return &Dense{m: m, arena: arena, vals: vals}, nil
}

// Arena returns the arena the view was built over.
func (d *Dense) Arena() *grid.Grid { return d.arena }

// At returns the demand at p through the dense array (no map lookup).
func (d *Dense) At(p grid.Point) int64 { return d.vals[d.arena.Index(p)] }

// Prefix returns the summed-area table over the dense values, building it on
// first use and sharing it thereafter. OmegaC needs it; Algorithm1 does not
// (its pyramid aggregates vals directly), so laziness keeps the standalone
// Algorithm1 path's cost unchanged. Exported so pipeline consumers — the
// lpchar cube omega* scans in E11 — reuse this table instead of densifying
// the same demand again (the one-densification-per-pipeline rule).
func (d *Dense) Prefix() (*grid.PrefixSum, error) {
	if d.ps == nil {
		ps, err := grid.NewPrefixSum(d.arena, d.vals)
		if err != nil {
			return nil, err
		}
		d.ps = ps
	}
	return d.ps, nil
}

// CubeChar is the result of the Corollary 2.2.7 characterization: the value
// omega_c together with the cube side its feasibility check passed at. The
// side is *not* always ceil(Omega): when the crossing happens exactly at an
// integer segment boundary, omega_c = s-1 but the partition that works uses
// side s, so schedule construction must take Side from here.
type CubeChar struct {
	Omega float64
	Side  int
}

// OmegaC computes the cube quantity of Corollary 2.2.7:
//
//	omega_c = min{ omega : omega * (3*ceil(omega))^l = max_{T in Gamma_omega} sum d }
//
// where Gamma_omega is the family of ceil(omega)-cubes. For each integer
// side s the candidate is f(s) = maxCubeSum(s) / (3s)^l, valid when it lands
// in the segment (s-1, s]; below the segment the crossing happens at the
// boundary s-1 (still with side s). The scan stops once the segment floor
// exceeds the best candidate, since all later candidates are at least s-1.
func OmegaC(m *demand.Map, arena *grid.Grid) (CubeChar, error) {
	d, err := NewDense(m, arena)
	if err != nil {
		return CubeChar{}, err
	}
	return d.OmegaC()
}

// OmegaC is the Corollary 2.2.7 characterization on the shared dense view.
func (d *Dense) OmegaC() (CubeChar, error) {
	m, arena := d.m, d.arena
	if m.Total() == 0 {
		return CubeChar{}, nil
	}
	ps, err := d.Prefix()
	if err != nil {
		return CubeChar{}, err
	}
	l := arena.Dim()
	maxSide := arena.Size(0)
	for i := 1; i < l; i++ {
		if s := arena.Size(i); s < maxSide {
			maxSide = s
		}
	}
	best := CubeChar{Omega: math.Inf(1)}
	for s := 1; s <= maxSide; s++ {
		if float64(s-1) >= best.Omega {
			break
		}
		sum, _, ok := ps.MaxCubeSum(s)
		if !ok || sum <= 0 {
			continue
		}
		f := float64(sum) / float64(pow(3*s, l))
		var cand float64
		switch {
		case f > float64(s):
			continue // capacity s insufficient at this cube size
		case f > float64(s-1):
			cand = f
		default:
			cand = float64(s - 1) // crossing at the segment boundary
		}
		if cand < best.Omega {
			best = CubeChar{Omega: cand, Side: s}
		}
	}
	if math.IsInf(best.Omega, 1) {
		// No cube size fits inside the arena with enough capacity; the
		// arena is too small relative to the demand concentration.
		return CubeChar{}, fmt.Errorf("offline: no feasible cube size within arena (max side %d)", maxSide)
	}
	return best, nil
}

// Alg1Result carries Algorithm 1's answer plus diagnostics.
type Alg1Result struct {
	// W is the returned per-vehicle capacity estimate.
	W float64
	// CubeSide is the side length w at which the pyramid check passed, or 0
	// when a degenerate branch (steps 1-4 of the listing) returned early.
	CubeSide int
	// Branch records which return statement fired, for tests and tracing.
	Branch Alg1Branch
}

// Alg1Branch identifies Algorithm 1's exit points.
type Alg1Branch int

// Exit points of Algorithm 1 (line numbers follow the thesis listing).
const (
	// BranchDenseGrid is line 2: n <= average demand.
	BranchDenseGrid Alg1Branch = iota + 1
	// BranchTinyDemand is line 4: max demand <= 1.
	BranchTinyDemand
	// BranchFullGrid is line 7: the pyramid reached w = n.
	BranchFullGrid
	// BranchCube is line 14: some cube size w passed the density check.
	BranchCube
)

// String implements fmt.Stringer.
func (b Alg1Branch) String() string {
	switch b {
	case BranchDenseGrid:
		return "dense-grid"
	case BranchTinyDemand:
		return "tiny-demand"
	case BranchFullGrid:
		return "full-grid"
	case BranchCube:
		return "cube"
	default:
		return fmt.Sprintf("Alg1Branch(%d)", int(b))
	}
}

// Algorithm1 is a faithful transcription of the thesis' linear-time
// 2(2*3^l+l)-approximation for Woff (Section 2.3). The arena must be an
// n x ... x n grid with n a power of two. It aggregates demand over aligned
// w-cubes with doubling w and returns (2*3^l+l)*w for the first w whose
// aligned cube sums all satisfy sum <= w*(3w)^l.
func Algorithm1(m *demand.Map, arena *grid.Grid) (Alg1Result, error) {
	d, err := NewDense(m, arena)
	if err != nil {
		return Alg1Result{}, err
	}
	return d.Algorithm1()
}

// Algorithm1 runs the thesis' linear-time estimate on the shared dense view
// (the doubling pyramid aggregates the already-densified values; no prefix
// sum is needed).
func (d *Dense) Algorithm1() (Alg1Result, error) {
	m, arena, vals := d.m, d.arena, d.vals
	l := arena.Dim()
	n := arena.Size(0)
	for i := 1; i < l; i++ {
		if arena.Size(i) != n {
			return Alg1Result{}, fmt.Errorf("offline: arena must be square, got %d and %d", n, arena.Size(i))
		}
	}
	if n&(n-1) != 0 {
		return Alg1Result{}, fmt.Errorf("offline: arena side %d must be a power of two", n)
	}
	maxD := float64(m.Max())
	avgD := float64(m.Total()) / float64(arena.Len())
	fallback := math.Min(maxD, 2*avgD+float64(l*n))
	// Lines 1-2: the grid is saturated; every vehicle can reach everywhere.
	if float64(n) <= avgD {
		return Alg1Result{W: fallback, Branch: BranchDenseGrid}, nil
	}
	// Lines 3-4: nobody can afford to move at all.
	if maxD <= 1 {
		return Alg1Result{W: maxD, Branch: BranchTinyDemand}, nil
	}
	// Lines 5-14: the doubling pyramid. cur holds aligned w/2-cube sums.
	cur := vals
	side := n
	for w := 2; ; w *= 2 {
		if w > n {
			return Alg1Result{W: fallback, Branch: BranchFullGrid}, nil
		}
		next, nextSide := aggregate(cur, side, l)
		cur, side = next, nextSide
		threshold := float64(w) * float64(pow(3*w, l))
		ok := true
		for _, v := range cur {
			if float64(v) > threshold {
				ok = false
				break
			}
		}
		if ok {
			return Alg1Result{
				W:        float64(2*pow(3, l)+int64(l)) * float64(w),
				CubeSide: w,
				Branch:   BranchCube,
			}, nil
		}
	}
}

// aggregate halves the resolution of an l-dimensional side^l dense array by
// summing 2^l-blocks (lines 8-9 of Algorithm 1).
func aggregate(vals []int64, side, l int) ([]int64, int) {
	half := side / 2
	out := make([]int64, pow(half, l))
	// Strides for the input and output arrays (row-major).
	inStride := make([]int64, l)
	outStride := make([]int64, l)
	is, os := int64(1), int64(1)
	for i := l - 1; i >= 0; i-- {
		inStride[i], outStride[i] = is, os
		is *= int64(side)
		os *= int64(half)
	}
	idx := make([]int, l)
	for o := range out {
		// Decode output coordinates.
		rem := int64(o)
		for i := 0; i < l; i++ {
			idx[i] = int(rem / outStride[i])
			rem %= outStride[i]
		}
		var sum int64
		for mask := 0; mask < 1<<l; mask++ {
			in := int64(0)
			for i := 0; i < l; i++ {
				c := 2 * idx[i]
				if mask&(1<<i) != 0 {
					c++
				}
				in += int64(c) * inStride[i]
			}
			sum += vals[in]
		}
		out[o] = sum
	}
	return out, half
}
