package offline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/lpchar"
)

func TestPow(t *testing.T) {
	if pow(3, 2) != 9 || pow(2, 0) != 1 || pow(6, 3) != 216 {
		t.Fatal("pow broken")
	}
}

func TestOmegaCEmptyAndErrors(t *testing.T) {
	arena := grid.MustNew(8, 8)
	if c, err := OmegaC(demand.NewMap(2), arena); err != nil || c.Omega != 0 {
		t.Errorf("empty: %v %v", c, err)
	}
	m, err := demand.PointMass(2, grid.P(100, 100), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OmegaC(m, arena); err == nil {
		t.Error("demand outside arena should fail")
	}
}

func TestOmegaCPointMass(t *testing.T) {
	// Point demand d: cube side 1 gives f(1) = d/9 in 2-D; valid only when
	// d <= 9. Larger d climbs to larger cubes: omega_c roughly (d/9s^2)
	// with s = ceil(omega_c), i.e. omega_c ~ (d/9)^(1/3).
	arena := grid.MustNew(64, 64)
	for _, d := range []int64{5, 100, 5000} {
		m, err := demand.PointMass(2, grid.P(32, 32), d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := OmegaC(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Cbrt(float64(d) / 9)
		if got.Omega < want/3 || got.Omega > want*3 {
			t.Errorf("d=%d: omega_c=%v, expected near %v", d, got.Omega, want)
		}
		if got.Side < int(got.Omega) {
			t.Errorf("d=%d: side %d below omega %v", d, got.Side, got.Omega)
		}
	}
}

func TestOmegaCSandwichesOmegaStar(t *testing.T) {
	// Corollary 2.2.7: omega_c <= Woff and Woff <= (2*3^l+l)*omega_c, with
	// Woff >= omega* (the all-subsets LP value). We verify the computable
	// sandwich: omega_c and omega* agree within the dimension constant.
	rng := rand.New(rand.NewSource(61))
	arena := grid.MustNew(16, 16)
	b, err := grid.NewBox(2, grid.P(4, 4), grid.P(11, 11))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		m, err := demand.Uniform(rng, b, 60+rng.Int63n(300))
		if err != nil {
			t.Fatal(err)
		}
		char, err := OmegaC(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		omegaStar, err := lpchar.OmegaStarFlow(m)
		if err != nil {
			t.Fatal(err)
		}
		// omega_c <= omega_{T_c} <= max_T omega_T = omega* (thesis proof of
		// Cor 2.2.7); allow float slack.
		if char.Omega > omegaStar*(1+1e-6)+1e-6 {
			t.Errorf("trial %d: omega_c %v > omega* %v", trial, char.Omega, omegaStar)
		}
		// And it cannot be more than the dimension constant below.
		factor := float64(2*pow(3, 2) + 2)
		if omegaStar > factor*math.Max(char.Omega, 1) {
			t.Errorf("trial %d: omega* %v exceeds %v * omega_c (%v)",
				trial, omegaStar, factor, char.Omega)
		}
	}
}

func TestAlgorithm1Validation(t *testing.T) {
	m := demand.NewMap(2)
	if _, err := Algorithm1(m, grid.MustNew(8, 4)); err == nil {
		t.Error("non-square arena should fail")
	}
	if _, err := Algorithm1(m, grid.MustNew(6, 6)); err == nil {
		t.Error("non-power-of-two side should fail")
	}
}

func TestAlgorithm1Branches(t *testing.T) {
	arena := grid.MustNew(8, 8)

	t.Run("tiny demand", func(t *testing.T) {
		m := demand.NewMap(2)
		if err := m.Add(grid.P(3, 3), 1); err != nil {
			t.Fatal(err)
		}
		res, err := Algorithm1(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		if res.Branch != BranchTinyDemand || res.W != 1 {
			t.Errorf("got %+v", res)
		}
	})

	t.Run("dense grid", func(t *testing.T) {
		m := demand.NewMap(2)
		for _, p := range arena.Bounds().Points() {
			if err := m.Add(p, 20); err != nil {
				t.Fatal(err)
			}
		}
		res, err := Algorithm1(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		if res.Branch != BranchDenseGrid {
			t.Errorf("got branch %v", res.Branch)
		}
		// min{D, 2*Dhat + l*n} = min{20, 40+16} = 20.
		if res.W != 20 {
			t.Errorf("W = %v, want 20", res.W)
		}
	})

	t.Run("cube", func(t *testing.T) {
		m, err := demand.PointMass(2, grid.P(4, 4), 50)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Algorithm1(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		if res.Branch != BranchCube {
			t.Fatalf("got branch %v", res.Branch)
		}
		// w=2 check: aligned 2-cube sum 50 <= 2*(6^2) = 72, so w=2 passes.
		if res.CubeSide != 2 {
			t.Errorf("cube side %d, want 2", res.CubeSide)
		}
		if want := float64(2*9+2) * 2; res.W != want {
			t.Errorf("W = %v, want %v", res.W, want)
		}
	})
}

// TestAlgorithm1ApproximationGuarantee is experiment E5's core assertion:
// Algorithm 1's output is sandwiched between the exact lower bound omega*
// and 2(2*3^l+l) * a Theta(omega*) quantity on random workloads.
func TestAlgorithm1ApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	arena := grid.MustNew(16, 16)
	inner, err := grid.NewBox(2, grid.P(4, 4), grid.P(11, 11))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		m, err := demand.Uniform(rng, inner, 50+rng.Int63n(400))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Algorithm1(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		omegaStar, err := lpchar.OmegaStarFlow(m)
		if err != nil {
			t.Fatal(err)
		}
		// Upper-bound side: W >= Woff >= omega* must hold for the returned
		// capacity to be sufficient... Algorithm 1 returns a capacity that
		// is *sufficient*, so it must be at least omega*.
		if res.W < omegaStar*(1-1e-6) {
			t.Errorf("trial %d: Alg1 W %v below lower bound omega* %v",
				trial, res.W, omegaStar)
		}
		// Approximation side: W <= 2(2*3^l+l) * Woff and Woff <=
		// (2*3^l+l)*omega*; combined generous cap keeps the ratio bounded.
		cap := 2 * float64(2*pow(3, 2)+2) * float64(2*pow(3, 2)+2) * math.Max(omegaStar, 1)
		if res.W > cap {
			t.Errorf("trial %d: Alg1 W %v exceeds approximation cap %v (omega* %v)",
				trial, res.W, cap, omegaStar)
		}
	}
}

func TestBuildScheduleServesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	arena := grid.MustNew(32, 32)
	inner, err := grid.NewBox(2, grid.P(8, 8), grid.P(23, 23))
	if err != nil {
		t.Fatal(err)
	}
	workloads := map[string]*demand.Map{}
	u, err := demand.Uniform(rng, inner, 800)
	if err != nil {
		t.Fatal(err)
	}
	workloads["uniform"] = u
	c, err := demand.Clusters(rng, inner, 4, 250, 3)
	if err != nil {
		t.Fatal(err)
	}
	workloads["clusters"] = c
	p, err := demand.PointMass(2, grid.P(16, 16), 900)
	if err != nil {
		t.Fatal(err)
	}
	workloads["point"] = p
	ln, err := demand.Line(grid.P(8, 16), 16, 40)
	if err != nil {
		t.Fatal(err)
	}
	workloads["line"] = ln

	for name, m := range workloads {
		t.Run(name, func(t *testing.T) {
			sched, err := BuildSchedule(m, arena)
			if err != nil {
				t.Fatal(err)
			}
			maxE, err := VerifySchedule(m, sched, sched.W)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(maxE-sched.W) > 1e-9 {
				t.Errorf("verifier max %v != schedule W %v", maxE, sched.W)
			}
			// Lemma 2.2.5: the constructed capacity is within (2*3^l+l)
			// times omega (plus rounding slack from integer budgets).
			bound := float64(2*pow(3, 2)+2)*math.Max(sched.OmegaC, 1) + 4
			if sched.W > bound {
				t.Errorf("schedule W %v exceeds Lemma 2.2.5 bound %v (omega_c %v)",
					sched.W, bound, sched.OmegaC)
			}
		})
	}
}

func TestBuildScheduleEmpty(t *testing.T) {
	sched, err := BuildSchedule(demand.NewMap(2), grid.MustNew(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Plans) != 0 || sched.W != 0 {
		t.Error("empty schedule should be trivial")
	}
}

func TestBuildScheduleWithOmegaTooSmallFails(t *testing.T) {
	arena := grid.MustNew(16, 16)
	m, err := demand.PointMass(2, grid.P(8, 8), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildScheduleWithChar(m, arena, CubeChar{Omega: 0.5, Side: 1}); err == nil {
		t.Error("starving the construction should fail, not mis-schedule")
	}
	if _, err := BuildScheduleWithChar(m, arena, CubeChar{Omega: -1, Side: 1}); err == nil {
		t.Error("negative omega should fail")
	}
}

func TestVerifyScheduleCatchesCheating(t *testing.T) {
	m, err := demand.PointMass(2, grid.P(1, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	good := &Schedule{Plans: []VehiclePlan{{Home: grid.P(1, 1), ServeHome: 4}}, W: 4}
	if _, err := VerifySchedule(m, good, 4); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	cases := map[string]*Schedule{
		"under-serves": {Plans: []VehiclePlan{{Home: grid.P(1, 1), ServeHome: 3}}},
		"over-serves": {Plans: []VehiclePlan{
			{Home: grid.P(1, 1), ServeHome: 4},
			{Home: grid.P(0, 0), Moved: true, Dest: grid.P(1, 1), ServeDest: 2}}},
		"duplicate vehicle": {Plans: []VehiclePlan{
			{Home: grid.P(1, 1), ServeHome: 2},
			{Home: grid.P(1, 1), ServeHome: 2}}},
		"phantom dest service": {Plans: []VehiclePlan{
			{Home: grid.P(1, 1), ServeHome: 4, ServeDest: 1}}},
		"negative service": {Plans: []VehiclePlan{
			{Home: grid.P(1, 1), ServeHome: -1}}},
	}
	for name, sched := range cases {
		if _, err := VerifySchedule(m, sched, 100); err == nil {
			t.Errorf("%s: verifier accepted a bad schedule", name)
		}
	}
	// Capacity violation.
	if _, err := VerifySchedule(m, good, 3); err == nil {
		t.Error("capacity violation not caught")
	}
}

func TestAlg1BranchString(t *testing.T) {
	for _, b := range []Alg1Branch{BranchDenseGrid, BranchTinyDemand, BranchFullGrid, BranchCube, Alg1Branch(99)} {
		if b.String() == "" {
			t.Errorf("empty string for branch %d", int(b))
		}
	}
}
