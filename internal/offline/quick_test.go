package offline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/demand"
	"repro/internal/grid"
)

// TestQuickScheduleAlwaysFeasible property-checks the Lemma 2.2.5
// construction end to end: for random workloads the built schedule always
// passes the independent verifier at its own W and stays above the cube
// lower bound — the constructive heart of Theorem 1.4.1.
func TestQuickScheduleAlwaysFeasible(t *testing.T) {
	arena := grid.MustNew(16, 16)
	f := func(seed int64, nPoints uint8, heavy bool) bool {
		rng := rand.New(rand.NewSource(seed))
		m := demand.NewMap(2)
		points := int(nPoints%20) + 1
		for i := 0; i < points; i++ {
			p := grid.P(2+rng.Intn(12), 2+rng.Intn(12))
			jobs := rng.Int63n(15) + 1
			if heavy {
				jobs *= 20
			}
			if err := m.Add(p, jobs); err != nil {
				return false
			}
		}
		sched, err := BuildSchedule(m, arena)
		if err != nil {
			// The arena is large relative to these demands; construction
			// must not fail.
			t.Logf("seed %d: build failed: %v", seed, err)
			return false
		}
		if _, err := VerifySchedule(m, sched, sched.W); err != nil {
			t.Logf("seed %d: verify failed: %v", seed, err)
			return false
		}
		return sched.W+1e-9 >= sched.OmegaC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickAlgorithm1DominatesOmegaC property-checks that Algorithm 1's
// returned capacity never undercuts the omega_c characterization (it is an
// upper-bound estimate, so dropping below the lower bound would be a bug).
func TestQuickAlgorithm1DominatesOmegaC(t *testing.T) {
	arena := grid.MustNew(16, 16)
	f := func(seed int64, nPoints uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := demand.NewMap(2)
		for i := 0; i < int(nPoints%15)+1; i++ {
			p := grid.P(rng.Intn(16), rng.Intn(16))
			if err := m.Add(p, rng.Int63n(40)+2); err != nil {
				return false
			}
		}
		res, err := Algorithm1(m, arena)
		if err != nil {
			return false
		}
		char, err := OmegaC(m, arena)
		if err != nil {
			return false
		}
		return res.W+1e-9 >= char.Omega
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
