package offline

import (
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/grid"
)

// VehiclePlan is the offline itinerary of one vehicle under Lemma 2.2.5's
// constructive strategy: serve some jobs at home, optionally move once, and
// serve some jobs at the destination.
type VehiclePlan struct {
	Home      grid.Point
	ServeHome int64
	// Moved is false for vehicles that stay at home; Dest/ServeDest are then
	// meaningless.
	Moved     bool
	Dest      grid.Point
	ServeDest int64
}

// Energy returns the total energy this plan consumes.
func (v VehiclePlan) Energy() float64 {
	e := float64(v.ServeHome)
	if v.Moved {
		e += float64(grid.Manhattan(v.Home, v.Dest)) + float64(v.ServeDest)
	}
	return e
}

// Schedule is a complete offline solution: one plan per vehicle that moves
// or serves, plus the capacity it certifies.
type Schedule struct {
	// Plans lists every vehicle with nonzero activity.
	Plans []VehiclePlan
	// W is the maximum per-vehicle energy consumed — the capacity this
	// schedule certifies as sufficient.
	W float64
	// CubeSide is the partition granularity used (ceil(omega_c)).
	CubeSide int
	// OmegaC is the cube characterization value the construction was sized
	// from.
	OmegaC float64
}

// BuildSchedule realizes Lemma 2.2.5 constructively: it partitions the arena
// into aligned ceil(omega_c)-cubes, lets every vehicle first serve up to
// B = 3^l * omega_c jobs at its own position, then assigns surplus demand to
// helper vehicles from the same cube, each of which moves once and serves up
// to B jobs at its destination. The thesis guarantees enough helpers exist
// because the demand in each cube is at most omega_c*(3*ceil(omega_c))^l =
// B * cubeVolume.
func BuildSchedule(m *demand.Map, arena *grid.Grid) (*Schedule, error) {
	if m.Total() == 0 {
		return &Schedule{}, nil
	}
	d, err := NewDense(m, arena)
	if err != nil {
		return nil, err
	}
	char, err := d.OmegaC()
	if err != nil {
		return nil, err
	}
	return d.BuildSchedule(char)
}

// BuildScheduleWithChar is BuildSchedule with an explicit characterization
// (exposed so experiments can feed in other omegas, e.g. the exact omega*).
// The cube side must be the one whose density check the omega passed, i.e.
// omega * (3*Side)^l must upper-bound every Side-cube demand sum.
func BuildScheduleWithChar(m *demand.Map, arena *grid.Grid, char CubeChar) (*Schedule, error) {
	d, err := NewDense(m, arena)
	if err != nil {
		return nil, err
	}
	return d.BuildSchedule(char)
}

// BuildSchedule is the Lemma 2.2.5 construction on the shared dense view:
// cube demand sums and per-cell lookups go through the dense value array, so
// the full SolveOffline pipeline touches the point-keyed demand map only at
// its API boundary (the verifier).
func (d *Dense) BuildSchedule(char CubeChar) (*Schedule, error) {
	m, arena := d.m, d.arena
	if m.Total() == 0 {
		return &Schedule{}, nil
	}
	if char.Omega <= 0 {
		return nil, fmt.Errorf("offline: omega %v must be positive for nonzero demand", char.Omega)
	}
	l := arena.Dim()
	s := char.Side
	if s < 1 {
		s = int(math.Ceil(char.Omega))
		if s < 1 {
			s = 1
		}
	}
	// The per-vehicle budget covers a cube's worst-case demand share:
	// demand <= omega*(3s)^l spread over s^l vehicles each serving up to B
	// at home and B away, so B = omega*3^l.
	budget := float64(pow(3, l)) * char.Omega
	sched := &Schedule{CubeSide: s, OmegaC: char.Omega}
	// Process each aligned cube independently (clipped at arena edges).
	var corner [grid.MaxDim]int
	if err := d.buildCubes(sched, s, budget, corner, 0, l); err != nil {
		return nil, err
	}
	return sched, nil
}

func (d *Dense) buildCubes(sched *Schedule, s int,
	budget float64, corner [grid.MaxDim]int, axis, l int) error {
	arena := d.arena
	if axis < l {
		for c := 0; c < arena.Size(axis); c += s {
			corner[axis] = c
			if err := d.buildCubes(sched, s, budget, corner, axis+1, l); err != nil {
				return err
			}
		}
		return nil
	}
	var lo, hi grid.Point
	for i := 0; i < l; i++ {
		lo[i] = int32(corner[i])
		h := corner[i] + s - 1
		if h >= arena.Size(i) {
			h = arena.Size(i) - 1
		}
		hi[i] = int32(h)
	}
	cube, err := grid.NewBox(l, lo, hi)
	if err != nil {
		return err
	}
	return d.buildOneCube(cube, sched, budget)
}

// buildOneCube runs the two-phase assignment inside one cube.
func (d *Dense) buildOneCube(cube grid.Box, sched *Schedule, budget float64) error {
	cells := cube.Points()
	// Round the per-vehicle service budget B = 3^l*omega *up*: the helper
	// count guarantee sum ceil(L(x)/Bi) <= cubeVolume needs B/Bi <= 1.
	ibudget := int64(math.Ceil(budget))
	if ibudget < 1 {
		ibudget = 1
	}
	// Phase 1: serve at home.
	leftover := make(map[grid.Point]int64)
	plans := make(map[grid.Point]*VehiclePlan, len(cells))
	anyDemand := false
	for _, p := range cells {
		dp := d.At(p)
		if dp > 0 {
			anyDemand = true
		}
		serve := dp
		if serve > ibudget {
			serve = ibudget
		}
		if serve > 0 {
			plans[p] = &VehiclePlan{Home: p, ServeHome: serve}
		}
		if rest := dp - serve; rest > 0 {
			leftover[p] = rest
		}
	}
	if !anyDemand {
		return nil
	}
	// Phase 2: helpers. Iterate cells deterministically; a helper is any
	// vehicle not yet assigned a move. Each helper serves up to ibudget jobs
	// at one leftover position.
	helperIdx := 0
	for _, x := range cells {
		rest := leftover[x]
		for rest > 0 {
			// Find the next unmoved vehicle.
			var helper grid.Point
			found := false
			for ; helperIdx < len(cells); helperIdx++ {
				h := cells[helperIdx]
				if pl, ok := plans[h]; ok && pl.Moved {
					continue
				}
				helper = h
				found = true
				helperIdx++
				break
			}
			if !found {
				return fmt.Errorf("offline: cube %v..%v ran out of helpers (omega too small: leftover %d at %v)",
					cube.Lo, cube.Hi, rest, x)
			}
			serve := rest
			if serve > ibudget {
				serve = ibudget
			}
			pl := plans[helper]
			if pl == nil {
				pl = &VehiclePlan{Home: helper}
				plans[helper] = pl
			}
			pl.Moved = true
			pl.Dest = x
			pl.ServeDest = serve
			rest -= serve
		}
	}
	for _, p := range cells {
		if pl, ok := plans[p]; ok {
			sched.Plans = append(sched.Plans, *pl)
			if e := pl.Energy(); e > sched.W {
				sched.W = e
			}
		}
	}
	return nil
}

// VerifySchedule checks that a schedule is feasible and complete: every job
// is served, no vehicle appears twice, every vehicle's energy is within
// capacity, and helpers only serve where demand exists. Returns the maximum
// per-vehicle energy observed.
func VerifySchedule(m *demand.Map, sched *Schedule, capacity float64) (float64, error) {
	served := make(map[grid.Point]int64)
	seen := make(map[grid.Point]bool)
	maxE := 0.0
	for i, pl := range sched.Plans {
		if seen[pl.Home] {
			return 0, fmt.Errorf("offline: vehicle at %v appears twice (plan %d)", pl.Home, i)
		}
		seen[pl.Home] = true
		if pl.ServeHome < 0 || pl.ServeDest < 0 {
			return 0, fmt.Errorf("offline: negative service in plan %d", i)
		}
		served[pl.Home] += pl.ServeHome
		if pl.Moved {
			served[pl.Dest] += pl.ServeDest
		} else if pl.ServeDest != 0 {
			return 0, fmt.Errorf("offline: unmoved vehicle %v claims dest service", pl.Home)
		}
		e := pl.Energy()
		if e > capacity+1e-9 {
			return 0, fmt.Errorf("offline: vehicle %v uses %v > capacity %v", pl.Home, e, capacity)
		}
		if e > maxE {
			maxE = e
		}
	}
	for _, p := range m.Support() {
		if served[p] != m.At(p) {
			return 0, fmt.Errorf("offline: position %v served %d of %d jobs",
				p, served[p], m.At(p))
		}
	}
	for p, s := range served {
		if s > m.At(p) {
			return 0, fmt.Errorf("offline: position %v over-served (%d > %d)", p, s, m.At(p))
		}
	}
	return maxE, nil
}
