package online

import (
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// warmEpisodeAllocs measures steady-state allocations of one reset+run
// episode on a long-lived runner, after a cold run has sized all storage.
func warmEpisodeAllocs(t *testing.T, monitoring bool) float64 {
	t.Helper()
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	r, err := NewRunner(Options{
		Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1, Monitoring: monitoring,
	})
	if err != nil {
		t.Fatal(err)
	}
	drive := func() {
		res, err := r.Run(seq)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("run failed: %v", res.Failures[0])
		}
	}
	drive() // cold run sizes mailboxes, ring buffers, event storage
	return testing.AllocsPerRun(5, func() {
		if err := r.Reset(24, 1); err != nil {
			t.Fatal(err)
		}
		drive()
	})
}

// TestWarmOnlineEpisodeAllocCeiling is the CI alloc guard for the online
// layer: a warm episode's allocations are bounded by a hard ceiling so
// boxing (or any other per-message allocation) cannot creep back into the
// delivery path. The residual allocations are per-event bookkeeping
// (failure strings, trace events), not per-message: the hot-point workload
// delivers ~1300 messages per episode, so a per-message regression blows
// the ceiling immediately.
func TestWarmOnlineEpisodeAllocCeiling(t *testing.T) {
	const ceiling = 450
	if got := warmEpisodeAllocs(t, false); got > ceiling {
		t.Errorf("warm online episode allocated %.0f objects/run, ceiling %d", got, ceiling)
	}
}

// TestWarmMonitoringEpisodeAllocCeiling pins the monitored variant: the two
// full-arena InjectMany waves per job arrival must write inline message
// values into retained slots, adding nothing to the episode's allocations.
func TestWarmMonitoringEpisodeAllocCeiling(t *testing.T) {
	const ceiling = 450
	if got := warmEpisodeAllocs(t, true); got > ceiling {
		t.Errorf("warm monitoring episode allocated %.0f objects/run, ceiling %d", got, ceiling)
	}
}
