package online

import (
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// BenchmarkOnlineRun times a full online episode with steady replacement
// pressure: a hot point exhausting vehicles in one cube.
func BenchmarkOnlineRun(b *testing.B) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := NewRunner(Options{Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run(seq)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK() {
			b.Fatalf("run failed: %v", res.Failures[0])
		}
	}
}

// BenchmarkOnlineRunMonitoring measures the monitoring ring's overhead on
// the same workload.
func BenchmarkOnlineRunMonitoring(b *testing.B) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := NewRunner(Options{
			Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1, Monitoring: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run(seq)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK() {
			b.Fatalf("run failed: %v", res.Failures[0])
		}
	}
}

// BenchmarkMinCapacitySerial and ...Parallel compare the capacity search's
// wall-clock: the probes are embarrassingly parallel, so the parallel
// variant should win on any multi-core machine.
func BenchmarkMinCapacitySerial(b *testing.B) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MinCapacity(seq, Options{Arena: arena, CubeSide: 8, Seed: 1}, 1, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinCapacityParallel(b *testing.B) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MinCapacityParallel(seq, Options{Arena: arena, CubeSide: 8, Seed: 1}, 1, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionBuild times the static geometry construction.
func BenchmarkPartitionBuild(b *testing.B) {
	arena := grid.MustNew(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPartition(arena, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineRunWarm is BenchmarkOnlineRun on one long-lived runner
// reset per iteration — the steady state of the warm-started capacity
// search, with all construction (partition, vehicles, engines, mailboxes)
// amortized away.
func BenchmarkOnlineRunWarm(b *testing.B) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	r, err := NewRunner(Options{Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 {
			if err := r.Reset(24, 1); err != nil {
				b.Fatal(err)
			}
		}
		res, err := r.Run(seq)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK() {
			b.Fatalf("run failed: %v", res.Failures[0])
		}
	}
}

// BenchmarkOnlineRunMonitoringWarm is BenchmarkOnlineRunMonitoring on one
// long-lived runner reset per episode — the sweep engine's steady state for
// monitored scenarios. With inline round/existing messages written straight
// into mailbox slots and the reused heard maps, the per-arrival monitoring
// waves allocate nothing.
func BenchmarkOnlineRunMonitoringWarm(b *testing.B) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	r, err := NewRunner(Options{
		Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1, Monitoring: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 {
			if err := r.Reset(24, 1); err != nil {
				b.Fatal(err)
			}
		}
		res, err := r.Run(seq)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK() {
			b.Fatalf("run failed: %v", res.Failures[0])
		}
	}
}
