package online

import (
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// The online strategy is dimension-generic (thesis Chapter 3 works on Z^l);
// exercise the 1-D and 3-D paths end to end.

func TestOnlineOneDimensional(t *testing.T) {
	arena := grid.MustNew(16)
	// A 1-D side-4 cube holds 4 vehicles (2 pairs): only ~3 can serve the
	// hot spot (the 4th stays active on the other pair), so keep the load
	// within 3 vehicles' worth of capacity 12 minus moves.
	r := mustRunner(t, Options{Arena: arena, CubeSide: 4, Capacity: 12, Seed: 2})
	jobs := make([]grid.Point, 24)
	for i := range jobs {
		jobs[i] = grid.P(8)
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("1-D failures: %v", res.Failures)
	}
	if res.Replacements == 0 {
		t.Error("expected replacements in the hammered 1-D cube")
	}
}

func TestOnlineThreeDimensional(t *testing.T) {
	arena := grid.MustNew(4, 4, 4)
	r := mustRunner(t, Options{Arena: arena, CubeSide: 4, Capacity: 16, Seed: 3})
	jobs := make([]grid.Point, 40)
	for i := range jobs {
		jobs[i] = grid.P(2, 2, 2)
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("3-D failures: %v", res.Failures)
	}
	if res.MaxEnergy > 16 {
		t.Errorf("energy %v exceeds capacity", res.MaxEnergy)
	}
}

func TestPartitionThreeDimensionalPairing(t *testing.T) {
	arena := grid.MustNew(6, 6, 6)
	part, err := NewPartition(arena, 3)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	singles := 0
	for _, pr := range part.Pairs() {
		if pr.Single {
			singles++
			covered++
			continue
		}
		covered += 2
		if grid.Manhattan(pr.Cells[0], pr.Cells[1]) != 1 {
			t.Fatalf("pair cells not adjacent: %v %v", pr.Cells[0], pr.Cells[1])
		}
	}
	if int64(covered) != arena.Len() {
		t.Errorf("pairs cover %d of %d cells", covered, arena.Len())
	}
	// 8 cubes of 27 cells: one single each.
	if singles != 8 {
		t.Errorf("%d singles, want 8", singles)
	}
}
