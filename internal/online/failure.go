package online

import (
	"errors"
	"fmt"

	"repro/internal/grid"
)

// FailureModel is the pluggable failure layer of the online simulator: it
// generalizes the three crash knobs that grew ad hoc on Options
// (FailInitiate, DeadBeforeArrival, Longevity) and adds the Byzantine mode.
// All maps are keyed by home cell and densified once at the NewRunner /
// ResetEpisode boundary; the simulation itself never hashes a point.
//
// The taxonomy (see DESIGN.md "Failure models"):
//
//	crash-initiate — FailInitiate: on exhaustion the vehicle silently skips
//	                 its replacement search (Section 3.2.5 scenario 2).
//	crash-schedule — DeadBeforeArrival: the vehicle dies right before the
//	                 given arrival index (scenario 3).
//	crash-wearout  — Longevity: the Chapter 4 breakdown fraction p_i; the
//	                 vehicle dies once it has spent p of its capacity.
//	byzantine      — Byzantine: a *dead* vehicle keeps emitting msgExisting
//	                 beacons to its watcher instead of going silent, so the
//	                 beacon-timeout rescue path never fires for it. Only the
//	                 evidence channel — customer complaints about jobs that
//	                 went unserved — can unmask it (see Runner.Run and
//	                 vehicle.onCheck).
type FailureModel struct {
	// FailInitiate marks home cells whose vehicle, upon exhaustion, fails to
	// start its replacement search.
	FailInitiate map[grid.Point]bool
	// DeadBeforeArrival kills the vehicle homed at a cell right before the
	// given arrival index is processed. Dead vehicles stop serving and
	// initiating but keep relaying messages.
	DeadBeforeArrival map[grid.Point]int
	// Longevity gives vehicles the Chapter 4 breakdown parameter p_i
	// (0 = broken from the start, 1 or absent = never breaks).
	Longevity map[grid.Point]float64
	// Byzantine marks home cells whose vehicle, once dead, keeps lying to
	// its watcher: it emits liveness beacons as if it were the healthy
	// active server of its pair. The beacon itself is forgeable; completed
	// work is not — the rescue path for these casualties is evidence-based.
	Byzantine map[grid.Point]bool
}

// failureModel normalizes the two ways failure knobs reach Options: the
// legacy flat fields and the aggregated Failure model. Setting both is
// rejected so an episode's failure configuration always has one source of
// truth.
func (o *Options) failureModel() (FailureModel, error) {
	if o.Failure == nil {
		return FailureModel{
			FailInitiate:      o.FailInitiate,
			DeadBeforeArrival: o.DeadBeforeArrival,
			Longevity:         o.Longevity,
		}, nil
	}
	if len(o.FailInitiate) > 0 || len(o.DeadBeforeArrival) > 0 || len(o.Longevity) > 0 {
		return FailureModel{}, errors.New(
			"online: set either Options.Failure or the legacy FailInitiate/DeadBeforeArrival/Longevity fields, not both")
	}
	return *o.Failure, nil
}

// worstUnknown returns the smallest (Point.Less) key of m that lies outside
// the arena. Scanning for the minimum keeps the reported cell — and hence
// the error text — independent of map iteration order.
func worstUnknown[V any](arena *grid.Grid, m map[grid.Point]V) (grid.Point, bool) {
	var bad grid.Point
	found := false
	for p := range m {
		if arena.Contains(p) {
			continue
		}
		if !found || p.Less(bad) {
			bad = p
			found = true
		}
	}
	return bad, found
}

// validate checks every map key against the arena at construction time,
// matching the unknown-cell error DeadBeforeArrival reports lazily when its
// event fires (densifyDeadEvents keeps that behavior: a dead event can be
// scheduled past the sequence end and never fire, so it is only an error if
// reached). FailInitiate, Longevity, and Byzantine entries have no firing
// time — a key outside the arena can only be a bug, so it is rejected up
// front. Longevity values are range-checked here too.
func (m FailureModel) validate(arena *grid.Grid) error {
	if cell, ok := worstUnknown(arena, m.FailInitiate); ok {
		return fmt.Errorf("online: FailInitiate cell %v not in arena", cell)
	}
	if cell, ok := worstUnknown(arena, m.Longevity); ok {
		return fmt.Errorf("online: Longevity cell %v not in arena", cell)
	}
	if cell, ok := worstUnknown(arena, m.Byzantine); ok {
		return fmt.Errorf("online: Byzantine cell %v not in arena", cell)
	}
	var badCell grid.Point
	badP, found := 0.0, false
	for cell, p := range m.Longevity {
		if p >= 0 && p <= 1 {
			continue
		}
		if !found || cell.Less(badCell) {
			badCell, badP = cell, p
			found = true
		}
	}
	if found {
		return fmt.Errorf("online: longevity %v at %v outside [0,1]", badP, badCell)
	}
	return nil
}

// VehicleClass scales one vehicle's abilities relative to the uniform fleet
// of the thesis. A zero multiplier means "default" (1.0), so partial
// literals stay valid; negative multipliers are rejected.
type VehicleClass struct {
	// Name labels the class in traces and tables.
	Name string
	// Speed divides the energy cost of walking: a vehicle of speed s pays
	// 1/s per lattice step (s > 1 models faster or more frugal locomotion).
	Speed float64
	// Energy divides the energy cost of serving one job: 1/e per job.
	Energy float64
	// Capacity multiplies the episode's budget W for this vehicle.
	Capacity float64
}

func orOne(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

// stepCost, jobCost, capMult are the densified per-vehicle multipliers.
func (c VehicleClass) stepCost() float64 { return 1 / orOne(c.Speed) }
func (c VehicleClass) jobCost() float64  { return 1 / orOne(c.Energy) }
func (c VehicleClass) capMult() float64  { return orOne(c.Capacity) }

// Fleet makes the fleet heterogeneous: a class table plus an assignment of
// vehicles (by home cell) to classes. With no explicit Assign entry a
// vehicle gets the partition-aware default: classes round-robin along its
// cube's snake-ordered pair list, so every cube carries the same class mix
// regardless of where it sits in the arena — heterogeneous vehicles,
// homogeneous cubes.
type Fleet struct {
	// Classes is the class table; class 0 is the default for a one-entry
	// fleet. Must be non-empty when Fleet is set.
	Classes []VehicleClass
	// Assign maps home cells to indices into Classes, overriding the
	// partition-aware default for those cells.
	Assign map[grid.Point]int
}

// validate rejects empty class tables, negative multipliers, out-of-range
// assignments, and — matching FailureModel.validate — assignment keys
// outside the arena.
func (f *Fleet) validate(arena *grid.Grid) error {
	if f == nil {
		return nil
	}
	if len(f.Classes) == 0 {
		return errors.New("online: Fleet.Classes must be non-empty")
	}
	for i, c := range f.Classes {
		if c.Speed < 0 || c.Energy < 0 || c.Capacity < 0 {
			return fmt.Errorf("online: fleet class %d (%q) has a negative multiplier", i, c.Name)
		}
	}
	if cell, ok := worstUnknown(arena, f.Assign); ok {
		return fmt.Errorf("online: Fleet.Assign cell %v not in arena", cell)
	}
	var badCell grid.Point
	badIdx, found := 0, false
	for cell, idx := range f.Assign {
		if idx >= 0 && idx < len(f.Classes) {
			continue
		}
		if !found || cell.Less(badCell) {
			badCell, badIdx = cell, idx
			found = true
		}
	}
	if found {
		return fmt.Errorf("online: Fleet.Assign class %d at %v outside [0,%d)",
			badIdx, badCell, len(f.Classes))
	}
	return nil
}

// classAt resolves the class of the vehicle homed at cell (with pair id
// pairID): the explicit Assign entry when present, else the partition-aware
// round-robin. Cube pair ids are contiguous in snake order, so the pair's
// rank within its cube is an index subtraction, not a scan.
func (f *Fleet) classAt(part *Partition, cell grid.Point, pairID int) VehicleClass {
	if idx, ok := f.Assign[cell]; ok {
		return f.Classes[idx]
	}
	first := part.CubePairs(part.Pairs()[pairID].Cube)[0]
	return f.Classes[(pairID-first)%len(f.Classes)]
}

// SearchProtocol selects the Phase I dissemination protocol used to locate
// idle replacement candidates.
type SearchProtocol int

const (
	// SearchDiffuse is the thesis' Dijkstra-Scholten diffusing computation
	// (Algorithm 2): a full flood of the communication neighborhood with
	// exact termination detection. The default.
	SearchDiffuse SearchProtocol = iota
	// SearchGossip is the fanout-limited gossip alternative (package
	// gossip): each node forwards the rumor to at most Options.GossipFanout
	// deterministically chosen neighbors. Cheaper in messages, but the
	// rumor may miss the only idle candidate — the fidelity/traffic knob.
	SearchGossip
)

// validateSearch rejects unknown protocols and malformed fanouts at the same
// construction-time boundary as the failure and fleet knobs.
func validateSearch(protocol SearchProtocol, fanout int) error {
	switch protocol {
	case SearchDiffuse, SearchGossip:
	default:
		return fmt.Errorf("online: unknown search protocol %d", int(protocol))
	}
	if fanout < 0 {
		return fmt.Errorf("online: GossipFanout %d must be >= 0", fanout)
	}
	if fanout > 0 && protocol != SearchGossip {
		return errors.New("online: GossipFanout set but Search is not SearchGossip")
	}
	return nil
}

// validateExtensions runs every construction-time check the failure, fleet,
// and search knobs need, and returns the normalized failure model. Shared by
// NewRunner and ResetEpisode so both boundaries reject exactly the same
// inputs (ResetEpisode validates before mutating anything).
func (o *Options) validateExtensions(arena *grid.Grid) (FailureModel, error) {
	model, err := o.failureModel()
	if err != nil {
		return FailureModel{}, err
	}
	if err := model.validate(arena); err != nil {
		return FailureModel{}, err
	}
	if err := o.Fleet.validate(arena); err != nil {
		return FailureModel{}, err
	}
	if err := validateSearch(o.Search, o.GossipFanout); err != nil {
		return FailureModel{}, err
	}
	return model, nil
}
