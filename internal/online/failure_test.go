package online

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// failureJobs is the golden failure-injection workload (80 seed-42 arrivals
// on the 6x6 arena) reused by the scenario tests below.
func failureJobs() *demand.Sequence {
	rng := rand.New(rand.NewSource(42))
	jobs := make([]grid.Point, 80)
	for i := range jobs {
		jobs[i] = grid.P(rng.Intn(6), rng.Intn(6))
	}
	return demand.NewSequence(jobs)
}

func failureBase() Options {
	return Options{
		Arena: grid.MustNew(6, 6), CubeSide: 6, Capacity: 20, Seed: 9,
		Monitoring: true,
	}
}

// --- satellite 1: eager validation of map-keyed knobs ----------------------

func TestFailInitiateUnknownCellEager(t *testing.T) {
	opts := Options{
		Arena: grid.MustNew(2, 2), CubeSide: 2, Capacity: 5, Seed: 1,
		FailInitiate: map[grid.Point]bool{grid.P(7, 7): true},
	}
	if _, err := NewRunner(opts); err == nil || !strings.Contains(err.Error(), "FailInitiate") {
		t.Errorf("NewRunner err = %v, want FailInitiate cell error", err)
	}
}

func TestLongevityUnknownCellEager(t *testing.T) {
	opts := Options{
		Arena: grid.MustNew(2, 2), CubeSide: 2, Capacity: 5, Seed: 1,
		Longevity: map[grid.Point]float64{grid.P(7, 7): 0.5},
	}
	if _, err := NewRunner(opts); err == nil || !strings.Contains(err.Error(), "Longevity") {
		t.Errorf("NewRunner err = %v, want Longevity cell error", err)
	}
}

func TestByzantineUnknownCellEager(t *testing.T) {
	opts := Options{
		Arena: grid.MustNew(2, 2), CubeSide: 2, Capacity: 5, Seed: 1,
		Failure: &FailureModel{Byzantine: map[grid.Point]bool{grid.P(7, 7): true}},
	}
	if _, err := NewRunner(opts); err == nil || !strings.Contains(err.Error(), "Byzantine") {
		t.Errorf("NewRunner err = %v, want Byzantine cell error", err)
	}
}

func TestLongevityOutOfRangeEager(t *testing.T) {
	opts := Options{
		Arena: grid.MustNew(2, 2), CubeSide: 2, Capacity: 5, Seed: 1,
		Longevity: map[grid.Point]float64{grid.P(0, 0): 1.5},
	}
	if _, err := NewRunner(opts); err == nil || !strings.Contains(err.Error(), "outside [0,1]") {
		t.Errorf("NewRunner err = %v, want longevity range error", err)
	}
}

func TestFailureAndLegacyFieldsAreExclusive(t *testing.T) {
	opts := Options{
		Arena: grid.MustNew(2, 2), CubeSide: 2, Capacity: 5, Seed: 1,
		FailInitiate: map[grid.Point]bool{grid.P(0, 0): true},
		Failure:      &FailureModel{},
	}
	if _, err := NewRunner(opts); err == nil || !strings.Contains(err.Error(), "not both") {
		t.Errorf("NewRunner err = %v, want exclusivity error", err)
	}
}

// TestResetEpisodeValidatesBeforeMutating pins that a bad episode config is
// rejected up front and leaves the pooled runner fully usable.
func TestResetEpisodeValidatesBeforeMutating(t *testing.T) {
	good := Options{Arena: grid.MustNew(4, 4), CubeSide: 4, Capacity: 10, Seed: 1}
	r := mustRunner(t, good)
	for _, bad := range []Options{
		{Arena: good.Arena, CubeSide: 4, Capacity: 10, Seed: 1,
			FailInitiate: map[grid.Point]bool{grid.P(9, 9): true}},
		{Arena: good.Arena, CubeSide: 4, Capacity: 10, Seed: 1,
			Longevity: map[grid.Point]float64{grid.P(9, 9): 0.5}},
		{Arena: good.Arena, CubeSide: 4, Capacity: 10, Seed: 1,
			Failure: &FailureModel{Byzantine: map[grid.Point]bool{grid.P(9, 9): true}}},
		{Arena: good.Arena, CubeSide: 4, Capacity: 10, Seed: 1,
			GossipFanout: 2}, // fanout without SearchGossip
		{Arena: good.Arena, CubeSide: 4, Capacity: 10, Seed: 1,
			Fleet: &Fleet{}}, // no classes
	} {
		if err := r.ResetEpisode(bad); err == nil {
			t.Errorf("ResetEpisode(%+v) should fail", bad)
		}
	}
	// The runner survives rejected episodes unchanged.
	if err := r.ResetEpisode(good); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(demand.NewSequence([]grid.Point{grid.P(0, 0)}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("post-rejection run failed: %+v", res)
	}
}

// --- satellite 2: the precomputed watched-by index --------------------------

func TestWatchedPairInvertsWatcherPair(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {6, 6}, {8, 8}, {5, 7}} {
		part, err := NewPartition(grid.MustNew(dims[0], dims[1]), 2)
		if err != nil {
			t.Fatal(err)
		}
		for p := range part.Pairs() {
			if got := part.WatcherPair(part.WatchedPair(p)); got != p {
				t.Errorf("%v: WatcherPair(WatchedPair(%d)) = %d", dims, p, got)
			}
			if got := part.WatchedPair(part.WatcherPair(p)); got != p {
				t.Errorf("%v: WatchedPair(WatcherPair(%d)) = %d", dims, p, got)
			}
		}
	}
}

// --- tentpole (a): the Byzantine mode and its evidence channel --------------

// TestByzantineBeaconsFoolSilenceDetection is the acceptance scenario: a
// vehicle that dies but keeps emitting heartbeats is invisible to the
// beacon-timeout path (MonitorRescues stays zero for it) yet is unmasked and
// replaced through the evidence channel, restoring service.
func TestByzantineBeaconsFoolSilenceDetection(t *testing.T) {
	lying := failureBase()
	lying.Failure = &FailureModel{
		DeadBeforeArrival: map[grid.Point]int{grid.P(2, 2): 10},
		Byzantine:         map[grid.Point]bool{grid.P(2, 2): true},
	}
	silent := failureBase()
	silent.Failure = &FailureModel{
		DeadBeforeArrival: map[grid.Point]int{grid.P(2, 2): 10},
	}

	resSilent, err := mustRunner(t, silent).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	if resSilent.MonitorRescues == 0 {
		t.Fatalf("control: silent crash not caught by beacon timeout: %+v", resSilent)
	}
	if resSilent.EvidenceRescues != 0 {
		t.Errorf("control: silent crash should not need the evidence channel: %+v", resSilent)
	}

	resLying, err := mustRunner(t, lying).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	if resLying.MonitorRescues != 0 {
		t.Errorf("byzantine: beacon timeout fired despite forged heartbeats: %+v", resLying)
	}
	if resLying.EvidenceRescues == 0 {
		t.Fatalf("byzantine: evidence channel never fired: %+v", resLying)
	}
	if resLying.Replacements == 0 {
		t.Errorf("byzantine: no replacement dispatched: %+v", resLying)
	}
	// Service recovered: the replacement keeps serving after the lapse, so
	// only a bounded prefix of the dead pair's jobs is lost.
	if resLying.Served+int64(len(resLying.Failures)) != 80 {
		t.Errorf("accounting: served %d + failures %d != 80",
			resLying.Served, len(resLying.Failures))
	}
	if resLying.Served < 70 {
		t.Errorf("byzantine: service did not recover, served only %d/80", resLying.Served)
	}
	// The lapse was measured by the latency clock.
	if resLying.ReplaceLatencyCount == 0 || resLying.MeanReplaceLatency() < 1 {
		t.Errorf("latency accounting: %+v", resLying)
	}
}

// TestByzantineWithoutMonitoring pins the control: with the heartbeat ring
// off there is no watcher to complain to, so the lying casualty is never
// replaced and its jobs are lost.
func TestByzantineWithoutMonitoring(t *testing.T) {
	opts := failureBase()
	opts.Monitoring = false
	opts.Failure = &FailureModel{
		DeadBeforeArrival: map[grid.Point]int{grid.P(2, 2): 10},
		Byzantine:         map[grid.Point]bool{grid.P(2, 2): true},
	}
	res, err := mustRunner(t, opts).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	if res.MonitorRescues != 0 || res.EvidenceRescues != 0 || res.Replacements != 0 {
		t.Errorf("no-monitoring control dispatched a rescue: %+v", res)
	}
	if len(res.Failures) == 0 {
		t.Error("no-monitoring control lost no jobs — scenario not exercising the dead pair")
	}
}

// --- tentpole (b): heterogeneous fleets -------------------------------------

// TestUnitFleetIsBitIdenticalToBaseline pins the IEEE bit-exactness claim:
// a fleet of all-1.0 classes multiplies every cost by exactly 1.0, so the
// run is indistinguishable from the uniform thesis fleet.
func TestUnitFleetIsBitIdenticalToBaseline(t *testing.T) {
	opts := failureBase()
	opts.FailInitiate = map[grid.Point]bool{grid.P(0, 0): true, grid.P(3, 3): true}
	opts.DeadBeforeArrival = map[grid.Point]int{grid.P(2, 2): 10}
	opts.Longevity = map[grid.Point]float64{grid.P(5, 5): 0.5, grid.P(1, 4): 0}
	base, err := mustRunner(t, opts).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	classed := opts
	classed.Fleet = &Fleet{Classes: []VehicleClass{
		{Name: "standard"}, // zero multipliers mean 1.0
		{Name: "explicit", Speed: 1, Energy: 1, Capacity: 1},
	}}
	got, err := mustRunner(t, classed).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("unit fleet diverged from baseline:\nbase %+v\ngot  %+v", base, got)
	}
}

func TestFastFleetChangesEnergyProfile(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	opts := Options{Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1}
	base, err := mustRunner(t, opts).Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	fast := opts
	fast.Fleet = &Fleet{Classes: []VehicleClass{{Name: "fast", Speed: 4}}}
	res, err := mustRunner(t, fast).Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != base.Served {
		t.Errorf("fast fleet served %d, baseline %d", res.Served, base.Served)
	}
	// Walking is 4x cheaper, so replacements exhaust later: the speed class
	// must show up in the energy accounting (peak energy lands elsewhere,
	// never above a baseline that walks at full price per step).
	if res.MaxEnergy == base.MaxEnergy {
		t.Errorf("fast fleet peak energy %v identical to baseline — speed class not applied", res.MaxEnergy)
	}
	if res.Searches > base.Searches {
		t.Errorf("fast fleet exhausted more often: %d searches vs baseline %d",
			res.Searches, base.Searches)
	}
}

func TestSmallTankFleetExhaustsSooner(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	opts := Options{Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1}
	base, err := mustRunner(t, opts).Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	small := opts
	small.Fleet = &Fleet{Classes: []VehicleClass{{Name: "small", Capacity: 0.5}}}
	res, err := mustRunner(t, small).Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Searches <= base.Searches && res.OK() {
		t.Errorf("half-capacity fleet: searches %d (base %d), ok=%v — capacity class not applied",
			res.Searches, base.Searches, res.OK())
	}
}

func TestFleetDefaultAssignmentIsPartitionAware(t *testing.T) {
	part, err := NewPartition(grid.MustNew(6, 6), 3)
	if err != nil {
		t.Fatal(err)
	}
	f := &Fleet{Classes: []VehicleClass{{Name: "a"}, {Name: "b"}, {Name: "c"}}}
	for cube := 0; cube < part.NumCubes(); cube++ {
		pairs := part.CubePairs(cube)
		for i, pid := range pairs {
			pr := part.Pairs()[pid]
			got := f.classAt(part, pr.ServicePos(), pid)
			want := f.Classes[i%len(f.Classes)]
			if got.Name != want.Name {
				t.Errorf("cube %d pair %d (rank %d): class %q, want %q",
					cube, pid, i, got.Name, want.Name)
			}
		}
	}
	// An explicit assignment overrides the round-robin.
	pr := part.Pairs()[0]
	f.Assign = map[grid.Point]int{pr.ServicePos(): 2}
	if got := f.classAt(part, pr.ServicePos(), 0); got.Name != "c" {
		t.Errorf("assign override ignored: got %q", got.Name)
	}
}

func TestFleetValidation(t *testing.T) {
	base := Options{Arena: grid.MustNew(4, 4), CubeSide: 4, Capacity: 10, Seed: 1}
	for name, fleet := range map[string]*Fleet{
		"no classes":         {},
		"negative speed":     {Classes: []VehicleClass{{Speed: -1}}},
		"unknown cell":       {Classes: []VehicleClass{{}}, Assign: map[grid.Point]int{grid.P(9, 9): 0}},
		"index out of range": {Classes: []VehicleClass{{}}, Assign: map[grid.Point]int{grid.P(0, 0): 3}},
	} {
		opts := base
		opts.Fleet = fleet
		if _, err := NewRunner(opts); err == nil {
			t.Errorf("%s: NewRunner should fail", name)
		}
	}
}

// --- tentpole (c): the gossip dissemination alternative ---------------------

// TestFullFloodGossipMatchesDiffuse pins the degradation guarantee: with
// fanout 0 the gossip engine's flood, ack tree, and payload path coincide
// with the diffusing computation, so the whole episode result is identical.
func TestFullFloodGossipMatchesDiffuse(t *testing.T) {
	opts := failureBase()
	opts.FailInitiate = map[grid.Point]bool{grid.P(0, 0): true, grid.P(3, 3): true}
	opts.DeadBeforeArrival = map[grid.Point]int{grid.P(2, 2): 10}
	opts.Longevity = map[grid.Point]float64{grid.P(5, 5): 0.5, grid.P(1, 4): 0}
	base, err := mustRunner(t, opts).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	if base.Searches == 0 {
		t.Fatal("scenario exercises no searches — comparison is vacuous")
	}
	gossiped := opts
	gossiped.Search = SearchGossip
	got, err := mustRunner(t, gossiped).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("full-flood gossip diverged from diffuse:\nbase %+v\ngot  %+v", base, got)
	}
}

func TestGossipFanoutWithoutGossipIsRejected(t *testing.T) {
	opts := Options{
		Arena: grid.MustNew(4, 4), CubeSide: 4, Capacity: 10, Seed: 1,
		GossipFanout: 3,
	}
	if _, err := NewRunner(opts); err == nil {
		t.Error("GossipFanout without SearchGossip should fail")
	}
}

func TestGossipFanoutLimitsTraffic(t *testing.T) {
	// The hot-point workload exhausts vehicles and reliably runs Phase I
	// searches, so the fanout knob has traffic to limit.
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	opts := Options{
		Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1,
		Search: SearchGossip,
	}
	run := func(fanout int) *Result {
		o := opts
		o.GossipFanout = fanout
		res, err := mustRunner(t, o).Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		if res.Searches == 0 {
			t.Fatalf("fanout %d: no searches — scenario not exercising gossip", fanout)
		}
		return res
	}
	full := run(0)
	limited := run(1)
	if limited.Messages >= full.Messages {
		t.Errorf("fanout 1 delivered %d messages, full flood %d — no traffic saving",
			limited.Messages, full.Messages)
	}
	// Determinism: the limited run replays bit-for-bit.
	if again := run(1); !reflect.DeepEqual(limited, again) {
		t.Errorf("fanout-1 run not deterministic:\nfirst %+v\nagain %+v", limited, again)
	}
}

// --- satellite 3: all four failure modes stacked ----------------------------

// stackedOptions exercises crash-initiate, crash-schedule, crash-wearout,
// and byzantine failures together, on a heterogeneous fleet, under gossip
// dissemination.
func stackedOptions() Options {
	opts := failureBase()
	opts.Failure = &FailureModel{
		FailInitiate:      map[grid.Point]bool{grid.P(0, 0): true},
		DeadBeforeArrival: map[grid.Point]int{grid.P(2, 2): 10},
		Longevity:         map[grid.Point]float64{grid.P(5, 5): 0.5, grid.P(1, 4): 0},
		Byzantine:         map[grid.Point]bool{grid.P(2, 2): true, grid.P(5, 5): true},
	}
	opts.Fleet = &Fleet{Classes: []VehicleClass{
		{Name: "standard"},
		{Name: "scout", Speed: 2, Capacity: 0.75},
	}}
	opts.Search = SearchGossip
	opts.GossipFanout = 3
	return opts
}

func TestStackedFailureModesAccounting(t *testing.T) {
	res, err := mustRunner(t, stackedOptions()).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	// Every arrival is accounted for exactly once.
	if res.Served+int64(len(res.Failures)) != 80 {
		t.Errorf("served %d + failures %d != 80", res.Served, len(res.Failures))
	}
	// Every replacement came out of a completed search, and every rescue
	// (silent or evidence) initiated one.
	if res.Replacements > res.Searches {
		t.Errorf("replacements %d > searches %d", res.Replacements, res.Searches)
	}
	if res.MonitorRescues+res.EvidenceRescues > res.Searches {
		t.Errorf("rescues %d+%d > searches %d",
			res.MonitorRescues, res.EvidenceRescues, res.Searches)
	}
	if res.Searches < res.SearchFailures {
		t.Errorf("search failures %d > searches %d", res.SearchFailures, res.Searches)
	}
	// The byzantine casualty is only ever unmasked by evidence.
	if res.EvidenceRescues == 0 {
		t.Errorf("stacked run never used the evidence channel: %+v", res)
	}
	if res.ReplaceLatencySum < res.ReplaceLatencyCount {
		t.Errorf("latency sum %d < count %d (latencies are >= 1 arrival)",
			res.ReplaceLatencySum, res.ReplaceLatencyCount)
	}
}

// TestStackedWarmResetMatchesFresh pins the pooled warm-start contract for
// the full option surface: a runner recycled through ResetEpisode replays the
// stacked scenario bit-for-bit against a fresh construction.
func TestStackedWarmResetMatchesFresh(t *testing.T) {
	opts := stackedOptions()
	fresh, err := mustRunner(t, opts).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool()
	// Warm the pool with a plain episode on the same geometry, then switch
	// to the stacked one: every knob must be re-applied by ResetEpisode.
	plain := failureBase()
	r, err := pool.Get(plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(failureJobs()); err != nil {
		t.Fatal(err)
	}
	r, err = pool.Get(opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := r.Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, warm) {
		t.Errorf("warm stacked run diverged:\nfresh %+v\nwarm  %+v", fresh, warm)
	}
	// And switching back to the plain episode clears every stacked knob.
	r, err = pool.Get(plain)
	if err != nil {
		t.Fatal(err)
	}
	warmPlain, err := r.Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	freshPlain, err := mustRunner(t, plain).Run(failureJobs())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(freshPlain, warmPlain) {
		t.Errorf("plain episode after stacked one diverged:\nfresh %+v\nwarm  %+v",
			freshPlain, warmPlain)
	}
}
