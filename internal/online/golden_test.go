package online

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// The golden counters below were captured from the map-keyed simulator that
// preceded the dense arena-indexed core, on the exact scenarios of this
// file. The dense refactor reproduces them bit for bit: any drift in these
// values means the delivery schedule (and hence every fixed-seed experiment
// in EXPERIMENTS.md) has silently changed.

type goldenCounters struct {
	served         int64
	messages       int64
	replacements   int64
	searches       int64
	searchFailures int64
	monitorRescues int64
	maxEnergy      float64
	failures       int
}

func checkGolden(t *testing.T, res *Result, want goldenCounters) {
	t.Helper()
	got := goldenCounters{
		served:         res.Served,
		messages:       res.Messages,
		replacements:   res.Replacements,
		searches:       res.Searches,
		searchFailures: res.SearchFailures,
		monitorRescues: res.MonitorRescues,
		maxEnergy:      res.MaxEnergy,
		failures:       len(res.Failures),
	}
	if got != want {
		t.Errorf("golden counters drifted:\n got %+v\nwant %+v", got, want)
	}
}

// TestGoldenTraceHotPoint locks the fixed-seed schedule of a replacement-
// heavy run: one hot point exhausting vehicles in a single 8x8 cube.
func TestGoldenTraceHotPoint(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	run := func() *Result {
		r := mustRunner(t, Options{Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1})
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := goldenCounters{
		served: 60, messages: 1310, replacements: 2, searches: 2,
		maxEnergy: 23,
	}
	checkGolden(t, run(), want)
	// Same seed, fresh runner: bit-for-bit identical.
	checkGolden(t, run(), want)
}

// TestGoldenTraceFailureInjection locks the schedule of a run exercising
// every failure-injection path at once: monitoring, fail-initiate vehicles,
// a mid-sequence death, and Chapter 4 longevity breakdowns.
func TestGoldenTraceFailureInjection(t *testing.T) {
	arena := grid.MustNew(6, 6)
	rng := rand.New(rand.NewSource(42))
	jobs := make([]grid.Point, 80)
	for i := range jobs {
		jobs[i] = grid.P(rng.Intn(6), rng.Intn(6))
	}
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 6, Capacity: 20, Seed: 9, Monitoring: true,
		FailInitiate:      map[grid.Point]bool{grid.P(0, 0): true, grid.P(3, 3): true},
		DeadBeforeArrival: map[grid.Point]int{grid.P(2, 2): 10},
		Longevity:         map[grid.Point]float64{grid.P(5, 5): 0.5, grid.P(1, 4): 0},
	})
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, res, goldenCounters{
		served: 80, messages: 7616, replacements: 1, searches: 1,
		monitorRescues: 1, maxEnergy: 11,
	})
}

// TestGoldenMinCapacity locks the serial capacity search's answer on the
// hot-point workload (the probes are fixed-seed runs, so the bisection path
// is fully deterministic).
func TestGoldenMinCapacity(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	won, err := MinCapacity(seq, Options{Arena: arena, CubeSide: 8, Seed: 1}, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if won != 7.0625 {
		t.Errorf("serial MinCapacity = %v, want golden 7.0625", won)
	}
}

// TestGoldenResetMatchesFresh is the warm-start contract test: a Runner
// that is Reset and re-run must be bit-for-bit identical to a freshly
// constructed one — same Served/Messages/Replacements/MonitorRescues — on
// both golden scenarios, including after intermediate runs at *different*
// capacities and seeds.
func TestGoldenResetMatchesFresh(t *testing.T) {
	t.Run("hot-point", func(t *testing.T) {
		arena := grid.MustNew(8, 8)
		jobs := make([]grid.Point, 60)
		for i := range jobs {
			jobs[i] = grid.P(4, 4)
		}
		want := goldenCounters{
			served: 60, messages: 1310, replacements: 2, searches: 2,
			maxEnergy: 23,
		}
		r := mustRunner(t, Options{Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1})
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, res, want)
		// Perturb the runner with episodes at other capacities and seeds,
		// then come back: the golden schedule must reappear exactly.
		for _, probe := range []struct {
			capacity float64
			seed     int64
		}{{7, 1}, {100, 5}, {24, 99}} {
			if err := r.Reset(probe.capacity, probe.seed); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Run(demand.NewSequence(jobs)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Reset(24, 1); err != nil {
			t.Fatal(err)
		}
		res, err = r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, res, want)
	})
	t.Run("failure-injection", func(t *testing.T) {
		arena := grid.MustNew(6, 6)
		rng := rand.New(rand.NewSource(42))
		jobs := make([]grid.Point, 80)
		for i := range jobs {
			jobs[i] = grid.P(rng.Intn(6), rng.Intn(6))
		}
		want := goldenCounters{
			served: 80, messages: 7616, replacements: 1, searches: 1,
			monitorRescues: 1, maxEnergy: 11,
		}
		r := mustRunner(t, Options{
			Arena: arena, CubeSide: 6, Capacity: 20, Seed: 9, Monitoring: true,
			FailInitiate:      map[grid.Point]bool{grid.P(0, 0): true, grid.P(3, 3): true},
			DeadBeforeArrival: map[grid.Point]int{grid.P(2, 2): 10},
			Longevity:         map[grid.Point]float64{grid.P(5, 5): 0.5, grid.P(1, 4): 0},
		})
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, res, want)
		// Monitoring, dead events, and longevity breakdowns all have cursor
		// or per-vehicle state that Reset must restore.
		for i := 0; i < 2; i++ {
			if err := r.Reset(20, 9); err != nil {
				t.Fatal(err)
			}
			res, err = r.Run(demand.NewSequence(jobs))
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, res, want)
		}
	})
}

// TestGoldenSharedPartition pins that a runner built on a prebuilt shared
// Partition replays the same golden schedule as one that builds its own.
func TestGoldenSharedPartition(t *testing.T) {
	arena := grid.MustNew(8, 8)
	part, err := NewPartition(arena, 8)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	want := goldenCounters{
		served: 60, messages: 1310, replacements: 2, searches: 2,
		maxEnergy: 23,
	}
	for i := 0; i < 2; i++ {
		r := mustRunner(t, Options{
			Arena: arena, CubeSide: 8, Partition: part, Capacity: 24, Seed: 1,
		})
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, res, want)
	}
}

// TestGoldenMinCapacityWarmEqualsCold pins that the warm-started searches
// (long-lived reset runners) agree exactly with cold per-probe construction
// across worker counts.
func TestGoldenMinCapacityWarmEqualsCold(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	base := Options{Arena: arena, CubeSide: 8, Seed: 1}

	// Cold oracle: a fresh runner per probe, as the searches did before the
	// warm-start restructure.
	cold := func(w float64) bool {
		opts := base
		opts.Capacity = w
		r := mustRunner(t, opts)
		res, err := r.Run(seq)
		if err != nil {
			t.Fatal(err)
		}
		return res.OK() && res.SearchFailures == 0
	}
	// Warm oracle: one runner reset per probe.
	warm := &prober{seq: seq, base: base}
	for _, w := range []float64{2, 4, 5, 6.5, 7.0625, 7.25, 8, 24} {
		ok, err := warm.probe(w)
		if err != nil {
			t.Fatal(err)
		}
		if want := cold(w); ok != want {
			t.Errorf("capacity %v: warm probe %v, cold probe %v", w, ok, want)
		}
	}

	if won, err := MinCapacity(seq, base, 1, 0.05); err != nil || won != 7.0625 {
		t.Errorf("serial warm MinCapacity = %v, %v; want golden 7.0625", won, err)
	}
	for _, workers := range []int{2, 4} {
		opts := base
		opts.SearchWorkers = workers
		won, err := MinCapacityParallel(seq, opts, 1, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		again, err := MinCapacityParallel(seq, opts, 1, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if won != again {
			t.Errorf("workers=%d: warm parallel search nondeterministic: %v vs %v",
				workers, won, again)
		}
	}
}
