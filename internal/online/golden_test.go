package online

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// The golden counters below were captured from the map-keyed simulator that
// preceded the dense arena-indexed core, on the exact scenarios of this
// file. The dense refactor reproduces them bit for bit: any drift in these
// values means the delivery schedule (and hence every fixed-seed experiment
// in EXPERIMENTS.md) has silently changed.

type goldenCounters struct {
	served         int64
	messages       int64
	replacements   int64
	searches       int64
	searchFailures int64
	monitorRescues int64
	maxEnergy      float64
	failures       int
}

func checkGolden(t *testing.T, res *Result, want goldenCounters) {
	t.Helper()
	got := goldenCounters{
		served:         res.Served,
		messages:       res.Messages,
		replacements:   res.Replacements,
		searches:       res.Searches,
		searchFailures: res.SearchFailures,
		monitorRescues: res.MonitorRescues,
		maxEnergy:      res.MaxEnergy,
		failures:       len(res.Failures),
	}
	if got != want {
		t.Errorf("golden counters drifted:\n got %+v\nwant %+v", got, want)
	}
}

// TestGoldenTraceHotPoint locks the fixed-seed schedule of a replacement-
// heavy run: one hot point exhausting vehicles in a single 8x8 cube.
func TestGoldenTraceHotPoint(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	run := func() *Result {
		r := mustRunner(t, Options{Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1})
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := goldenCounters{
		served: 60, messages: 1310, replacements: 2, searches: 2,
		maxEnergy: 23,
	}
	checkGolden(t, run(), want)
	// Same seed, fresh runner: bit-for-bit identical.
	checkGolden(t, run(), want)
}

// TestGoldenTraceFailureInjection locks the schedule of a run exercising
// every failure-injection path at once: monitoring, fail-initiate vehicles,
// a mid-sequence death, and Chapter 4 longevity breakdowns.
func TestGoldenTraceFailureInjection(t *testing.T) {
	arena := grid.MustNew(6, 6)
	rng := rand.New(rand.NewSource(42))
	jobs := make([]grid.Point, 80)
	for i := range jobs {
		jobs[i] = grid.P(rng.Intn(6), rng.Intn(6))
	}
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 6, Capacity: 20, Seed: 9, Monitoring: true,
		FailInitiate:      map[grid.Point]bool{grid.P(0, 0): true, grid.P(3, 3): true},
		DeadBeforeArrival: map[grid.Point]int{grid.P(2, 2): 10},
		Longevity:         map[grid.Point]float64{grid.P(5, 5): 0.5, grid.P(1, 4): 0},
	})
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, res, goldenCounters{
		served: 80, messages: 7616, replacements: 1, searches: 1,
		monitorRescues: 1, maxEnergy: 11,
	})
}

// TestGoldenMinCapacity locks the serial capacity search's answer on the
// hot-point workload (the probes are fixed-seed runs, so the bisection path
// is fully deterministic).
func TestGoldenMinCapacity(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	won, err := MinCapacity(seq, Options{Arena: arena, CubeSide: 8, Seed: 1}, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if won != 7.0625 {
		t.Errorf("serial MinCapacity = %v, want golden 7.0625", won)
	}
}
