package online

import (
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// Chapter 4 scenario 4 made concrete: vehicles with longevity p_i break
// after spending p_i * W, and only the monitoring ring keeps service alive.

func TestLongevityValidation(t *testing.T) {
	_, err := NewRunner(Options{
		Arena: grid.MustNew(4, 4), CubeSide: 4, Capacity: 10,
		Longevity: map[grid.Point]float64{grid.P(0, 0): 1.5},
	})
	if err == nil {
		t.Error("longevity > 1 should fail")
	}
}

func TestLongevityBreaksMidRun(t *testing.T) {
	arena := grid.MustNew(4, 4)
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 4, Capacity: 20, Seed: 3, Monitoring: true,
	})
	pos := r.Partition().Pairs()[0].ServicePos()
	// Same run but the serving vehicle breaks at 25% capacity (after ~5
	// jobs of cost 1).
	r2 := mustRunner(t, Options{
		Arena: arena, CubeSide: 4, Capacity: 20, Seed: 3, Monitoring: true,
		Longevity: map[grid.Point]float64{pos: 0.25},
	})
	jobs := make([]grid.Point, 12)
	for i := range jobs {
		jobs[i] = pos
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Replacements != 0 {
		t.Fatalf("healthy baseline: %+v", res)
	}
	res2, err := r2.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	// The breaking vehicle serves its last job, then the watcher recruits.
	if !res2.OK() {
		t.Fatalf("longevity run failures: %v", res2.Failures)
	}
	if res2.MonitorRescues == 0 {
		t.Error("expected a monitor rescue after the breakdown")
	}
	if res2.Replacements == 0 {
		t.Error("expected a replacement for the broken vehicle")
	}
}

func TestLongevityZeroBrokenFromStart(t *testing.T) {
	arena := grid.MustNew(4, 4)
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 4, Capacity: 20, Seed: 5,
		Longevity: map[grid.Point]float64{grid.P(0, 0): 0},
	})
	// The black vertex (0,0) is broken: its pair must have been activated
	// on the white partner instead.
	pairID, ok := r.Partition().PairOf(grid.P(0, 0))
	if !ok {
		t.Fatal("no pair for (0,0)")
	}
	active := r.vehicles[r.pairActive[pairID]]
	if active.home == grid.P(0, 0) || active.state != Active {
		t.Fatalf("pair activated on %v (state %v)", active.home, active.state)
	}
	// Service at the broken vertex still works via the partner.
	res, err := r.Run(demand.NewSequence([]grid.Point{grid.P(0, 0)}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}

func TestLongevityBrokenVehicleStillRelays(t *testing.T) {
	// A ring of broken vehicles around the hot pair must not stop Phase I
	// from reaching idle candidates beyond them (dead vehicles relay).
	arena := grid.MustNew(4, 4)
	lon := map[grid.Point]float64{}
	// Break the middle band; keep the far column healthy and idle.
	for _, p := range []grid.Point{
		grid.P(1, 0), grid.P(1, 1), grid.P(1, 2), grid.P(1, 3),
		grid.P(2, 0), grid.P(2, 1), grid.P(2, 2), grid.P(2, 3),
	} {
		lon[p] = 0
	}
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 4, Capacity: 16, Seed: 7,
		Longevity: lon,
	})
	pos := r.Partition().Pairs()[0].ServicePos()
	if pos.Coord(0) >= 1 && pos.Coord(0) <= 2 {
		t.Skip("pair 0 landed inside the broken band for this partition")
	}
	jobs := make([]grid.Point, 20)
	for i := range jobs {
		jobs[i] = pos
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served < 14 {
		t.Fatalf("served only %d of 20 through the broken band: %v",
			res.Served, res.Failures)
	}
	if res.Replacements == 0 {
		t.Error("expected recruits from beyond the broken band")
	}
}
