// Package online implements the decentralized on-line strategy of thesis
// Chapter 3: the arena is partitioned into cubes, vertices are paired into
// adjacent black/white pairs (Section 3.2), each pair is served by one
// active vehicle, and exhausted vehicles are replaced by idle ones located
// through Dijkstra-Scholten diffusing computations (Algorithm 2) followed by
// a Phase II move order. The package also implements the Section 3.2.5
// monitoring-ring extension that survives vehicles failing to initiate
// replacement searches and vehicles breaking down outright.
package online

import (
	"fmt"

	"repro/internal/grid"
)

// Pair is one black/white vertex pair of Section 3.2. A pair with Single set
// has only Cells[0] (the odd cell left over by an odd-volume cube).
type Pair struct {
	Cells  [2]grid.Point
	Single bool
	Cube   int
}

// ServicePos returns the canonical service location of the pair (where a
// replacement vehicle is sent). Cells[0] is the black vertex when possible.
func (p Pair) ServicePos() grid.Point { return p.Cells[0] }

// Covers reports whether position x belongs to the pair.
func (p Pair) Covers(x grid.Point) bool {
	if p.Cells[0] == x {
		return true
	}
	return !p.Single && p.Cells[1] == x
}

// Partition is the static geometry of the online strategy: the cube
// decomposition, the pairing, and the intra-cube communication graph.
// Per-cell lookups are dense slices indexed by Arena.Index — the cell's
// arena index doubles as its vehicle's sim.NodeID, so the hot layers above
// never hash a point.
//
// A Partition is immutable after NewPartition returns and therefore safe to
// share: a capacity search builds one and hands it to every probe runner
// (including concurrent workers) via Options.Partition. Accessors returning
// internal slices document that callers must not mutate them — that is the
// whole sharing contract.
type Partition struct {
	arena    *grid.Grid
	cubeSide int

	pairs   []Pair
	pairIdx []int32 // arena index -> pair index
	cubeIdx []int32 // arena index -> cube index

	cubePairs [][]int   // cube -> pair indices (snake order)
	commIdx   [][]int32 // arena index -> same-cube cells within distance 2
	watchIdx  []int32   // pair -> the pair it watches (inverse of WatcherPair)
	numCubes  int
}

// NewPartition decomposes the arena into aligned side-s cubes (clipped at
// the boundary), pairs each cube's cells along a boustrophedon (snake) walk
// — consecutive snake cells are lattice-adjacent, hence opposite chessboard
// colors — and precomputes the communication graph: vehicles within L1
// distance 2 in the same cube are neighbors (Section 3.2's "constant
// distance... we use 2 here").
func NewPartition(arena *grid.Grid, cubeSide int) (*Partition, error) {
	if cubeSide < 1 {
		return nil, fmt.Errorf("online: cube side %d must be >= 1", cubeSide)
	}
	p := &Partition{
		arena:    arena,
		cubeSide: cubeSide,
		pairIdx:  make([]int32, arena.Len()),
		cubeIdx:  make([]int32, arena.Len()),
		commIdx:  make([][]int32, arena.Len()),
	}
	for i := range p.pairIdx {
		p.pairIdx[i] = -1
		p.cubeIdx[i] = -1
	}
	var corner [grid.MaxDim]int
	if err := p.walkCubes(corner, 0); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Partition) walkCubes(corner [grid.MaxDim]int, axis int) error {
	if axis < p.arena.Dim() {
		for c := 0; c < p.arena.Size(axis); c += p.cubeSide {
			corner[axis] = c
			if err := p.walkCubes(corner, axis+1); err != nil {
				return err
			}
		}
		return nil
	}
	dim := p.arena.Dim()
	var lo, hi grid.Point
	for i := 0; i < dim; i++ {
		lo[i] = int32(corner[i])
		h := corner[i] + p.cubeSide - 1
		if h >= p.arena.Size(i) {
			h = p.arena.Size(i) - 1
		}
		hi[i] = int32(h)
	}
	cube, err := grid.NewBox(dim, lo, hi)
	if err != nil {
		return err
	}
	cubeIdx := p.numCubes
	p.numCubes++
	cells := snakeOrder(cube)
	var pairIdxs []int
	for i := 0; i < len(cells); i += 2 {
		pr := Pair{Cube: cubeIdx}
		if i+1 < len(cells) {
			// Put the black vertex first so ServicePos is the initially
			// active cell.
			a, b := cells[i], cells[i+1]
			if grid.ColorOf(a) != grid.Black {
				a, b = b, a
			}
			pr.Cells = [2]grid.Point{a, b}
		} else {
			pr.Cells[0] = cells[i]
			pr.Single = true
		}
		idx := len(p.pairs)
		p.pairs = append(p.pairs, pr)
		pairIdxs = append(pairIdxs, idx)
		p.pairIdx[p.arena.Index(pr.Cells[0])] = int32(idx)
		if !pr.Single {
			p.pairIdx[p.arena.Index(pr.Cells[1])] = int32(idx)
		}
	}
	p.cubePairs = append(p.cubePairs, pairIdxs)
	// Monitoring ring inverse: pair list[i] is watched by list[(i+1)%n], so
	// list[(i+1)%n] *watches* list[i]. Precomputing the inverse here turns
	// the watcher's per-check-round scan into one table read (a one-pair
	// cube watches itself, which the check path skips).
	p.watchIdx = append(p.watchIdx, make([]int32, len(pairIdxs))...)
	for i, pid := range pairIdxs {
		p.watchIdx[pairIdxs[(i+1)%len(pairIdxs)]] = int32(pid)
	}
	// Communication graph: same-cube cells within L1 distance 2, in snake
	// order (the order is part of the deterministic message schedule).
	for _, a := range cells {
		ai := p.arena.Index(a)
		p.cubeIdx[ai] = int32(cubeIdx)
		for _, b := range cells {
			if a != b && grid.Manhattan(a, b) <= 2 {
				p.commIdx[ai] = append(p.commIdx[ai], int32(p.arena.Index(b)))
			}
		}
	}
	return nil
}

// snakeOrder enumerates the box's cells along a Hamiltonian lattice path:
// each digit of the mixed-radix counter reverses direction whenever the sum
// of the more significant digits is odd, so consecutive cells always differ
// by one step in exactly one axis.
func snakeOrder(b grid.Box) []grid.Point {
	dim := b.Dim
	sizes := make([]int, dim)
	total := 1
	for i := 0; i < dim; i++ {
		sizes[i] = int(b.Side(i))
		total *= sizes[i]
	}
	out := make([]grid.Point, 0, total)
	digits := make([]int, dim)
	for k := 0; k < total; k++ {
		rem := k
		hiSum := 0
		for i := 0; i < dim; i++ {
			// Axis i's block size = product of sizes of less significant
			// axes (i+1..dim-1).
			block := 1
			for j := i + 1; j < dim; j++ {
				block *= sizes[j]
			}
			d := rem / block
			rem %= block
			if hiSum%2 == 1 {
				d = sizes[i] - 1 - d // reversed sweep
			}
			digits[i] = d
			hiSum += d
		}
		var pt grid.Point
		for i := 0; i < dim; i++ {
			pt[i] = b.Lo[i] + int32(digits[i])
		}
		out = append(out, pt)
	}
	return out
}

// Arena returns the grid this partition decomposes.
func (p *Partition) Arena() *grid.Grid { return p.arena }

// CubeSide returns the partition granularity it was built with.
func (p *Partition) CubeSide() int { return p.cubeSide }

// Pairs returns the pair table (shared slice; callers must not mutate).
func (p *Partition) Pairs() []Pair { return p.pairs }

// PairOf returns the pair index covering cell x.
func (p *Partition) PairOf(x grid.Point) (int, bool) {
	if !p.arena.Contains(x) {
		return 0, false
	}
	i := p.pairIdx[p.arena.Index(x)]
	return int(i), i >= 0
}

// PairAt returns the pair index covering the cell with the given arena
// index — the dense fast path of PairOf for callers already holding the
// index (which is also the cell's sim.NodeID).
func (p *Partition) PairAt(idx int64) int { return int(p.pairIdx[idx]) }

// CubeOf returns the cube index of cell x.
func (p *Partition) CubeOf(x grid.Point) (int, bool) {
	if !p.arena.Contains(x) {
		return 0, false
	}
	i := p.cubeIdx[p.arena.Index(x)]
	return int(i), i >= 0
}

// CubePairs returns the pair indices of one cube in snake order.
func (p *Partition) CubePairs(cube int) []int { return p.cubePairs[cube] }

// NumCubes returns the number of cubes in the partition.
func (p *Partition) NumCubes() int { return p.numCubes }

// CommNeighbors returns the same-cube communication neighbors of cell x as
// points (diagnostic boundary; the runner uses CommNeighborIndices).
func (p *Partition) CommNeighbors(x grid.Point) []grid.Point {
	if !p.arena.Contains(x) {
		return nil
	}
	idxs := p.commIdx[p.arena.Index(x)]
	if len(idxs) == 0 {
		return nil
	}
	out := make([]grid.Point, len(idxs))
	for i, idx := range idxs {
		out[i] = p.arena.PointAt(int64(idx))
	}
	return out
}

// CommNeighborIndices returns the same-cube communication neighbors of the
// cell with the given arena index, as arena indices (shared slice; callers
// must not mutate).
func (p *Partition) CommNeighborIndices(idx int64) []int32 { return p.commIdx[idx] }

// WatcherPair returns the pair that monitors pair `id` in the Section 3.2.5
// monitoring ring: pairs of a cube watch each other cyclically, so every
// pair is watched by exactly one other pair (or itself in a one-pair cube).
func (p *Partition) WatcherPair(id int) int {
	cube := p.pairs[id].Cube
	list := p.cubePairs[cube]
	for i, pid := range list {
		if pid == id {
			return list[(i+1)%len(list)]
		}
	}
	return id // unreachable for a consistent partition
}

// WatchedPair returns the pair that pair `watcher` monitors — the
// precomputed inverse of WatcherPair. Every pair watches exactly one other
// pair of its cube (itself in a one-pair cube), so the check round reads one
// table entry instead of scanning the cube's pair list.
func (p *Partition) WatchedPair(watcher int) int { return int(p.watchIdx[watcher]) }
