package online

import (
	"testing"

	"repro/internal/grid"
)

func TestNewPartitionValidation(t *testing.T) {
	if _, err := NewPartition(grid.MustNew(4, 4), 0); err == nil {
		t.Error("cube side 0 should fail")
	}
}

func TestSnakeOrderIsHamiltonianPath(t *testing.T) {
	for _, tc := range []struct {
		dim   int
		sides []int
	}{
		{1, []int{5}},
		{2, []int{3, 3}},
		{2, []int{4, 5}},
		{3, []int{3, 2, 3}},
		{3, []int{2, 2, 2}},
	} {
		var lo, hi grid.Point
		for i, s := range tc.sides {
			lo[i] = 1
			hi[i] = int32(s) // lo=1 so the box is offset from the origin
		}
		b, err := grid.NewBox(tc.dim, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		path := snakeOrder(b)
		if int64(len(path)) != b.Volume() {
			t.Fatalf("%v: path covers %d of %d cells", tc, len(path), b.Volume())
		}
		seen := make(map[grid.Point]bool)
		for i, p := range path {
			if !b.Contains(p) {
				t.Fatalf("%v: cell %v escapes box", tc, p)
			}
			if seen[p] {
				t.Fatalf("%v: cell %v repeated", tc, p)
			}
			seen[p] = true
			if i > 0 && grid.Manhattan(path[i-1], p) != 1 {
				t.Fatalf("%v: step %d not adjacent: %v -> %v", tc, i, path[i-1], p)
			}
		}
	}
}

func TestPartitionCoversArenaWithValidPairs(t *testing.T) {
	for _, tc := range []struct {
		sizes []int
		side  int
	}{
		{[]int{8, 8}, 4},
		{[]int{9, 9}, 3},  // odd cubes: one single per cube
		{[]int{10, 7}, 4}, // clipped boundary cubes
		{[]int{6}, 3},     // 1-D
		{[]int{4, 4, 4}, 2},
	} {
		arena := grid.MustNew(tc.sizes...)
		part, err := NewPartition(arena, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for pi, pr := range part.Pairs() {
			cells := []grid.Point{pr.Cells[0]}
			if !pr.Single {
				cells = append(cells, pr.Cells[1])
				if grid.Manhattan(pr.Cells[0], pr.Cells[1]) != 1 {
					t.Errorf("%v: pair %d cells not adjacent", tc, pi)
				}
				if grid.ColorOf(pr.Cells[0]) == grid.ColorOf(pr.Cells[1]) {
					t.Errorf("%v: pair %d same color", tc, pi)
				}
				if grid.ColorOf(pr.Cells[0]) != grid.Black {
					t.Errorf("%v: pair %d service pos not black", tc, pi)
				}
			}
			for _, c := range cells {
				covered++
				got, ok := part.PairOf(c)
				if !ok || got != pi {
					t.Errorf("%v: PairOf(%v) = %d,%v want %d", tc, c, got, ok, pi)
				}
				if !pr.Covers(c) {
					t.Errorf("%v: pair %d does not Covers(%v)", tc, pi, c)
				}
				cube, ok := part.CubeOf(c)
				if !ok || cube != pr.Cube {
					t.Errorf("%v: CubeOf(%v) = %d,%v want %d", tc, c, cube, ok, pr.Cube)
				}
			}
		}
		if int64(covered) != arena.Len() {
			t.Errorf("%v: pairs cover %d of %d cells", tc, covered, arena.Len())
		}
	}
}

func TestCommGraphWithinCubeAndConnected(t *testing.T) {
	arena := grid.MustNew(8, 8)
	part, err := NewPartition(arena, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range arena.Bounds().Points() {
		myCube, _ := part.CubeOf(cell)
		for _, nb := range part.CommNeighbors(cell) {
			if d := grid.Manhattan(cell, nb); d < 1 || d > 2 {
				t.Errorf("neighbor %v of %v at distance %d", nb, cell, d)
			}
			if c, _ := part.CubeOf(nb); c != myCube {
				t.Errorf("neighbor %v of %v crosses cube boundary", nb, cell)
			}
		}
	}
	// BFS inside cube 0 must reach all 16 cells.
	start := grid.P(0, 0)
	visited := map[grid.Point]bool{start: true}
	queue := []grid.Point{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range part.CommNeighbors(cur) {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(visited) != 16 {
		t.Errorf("cube comm graph reaches %d of 16 cells", len(visited))
	}
}

func TestWatcherPairRing(t *testing.T) {
	arena := grid.MustNew(6, 6)
	part, err := NewPartition(arena, 3)
	if err != nil {
		t.Fatal(err)
	}
	for cube := 0; cube < part.NumCubes(); cube++ {
		pairs := part.CubePairs(cube)
		watchedBy := make(map[int]int)
		for _, p := range pairs {
			w := part.WatcherPair(p)
			if part.Pairs()[w].Cube != cube {
				t.Errorf("watcher of %d in wrong cube", p)
			}
			watchedBy[w]++
		}
		// Cyclic ring: every pair is a watcher exactly once.
		for _, p := range pairs {
			if watchedBy[p] != 1 {
				t.Errorf("cube %d: pair %d watches %d pairs, want 1", cube, p, watchedBy[p])
			}
		}
	}
}

func TestSinglePairOddCube(t *testing.T) {
	arena := grid.MustNew(3, 3)
	part, err := NewPartition(arena, 3)
	if err != nil {
		t.Fatal(err)
	}
	singles := 0
	for _, pr := range part.Pairs() {
		if pr.Single {
			singles++
			if pr.Covers(grid.P(-1, -1)) {
				t.Error("single pair covers a foreign point")
			}
		}
	}
	if singles != 1 {
		t.Errorf("odd 3x3 cube should leave exactly 1 single, got %d", singles)
	}
	if len(part.Pairs()) != 5 {
		t.Errorf("3x3 should have 5 pairs, got %d", len(part.Pairs()))
	}
}
