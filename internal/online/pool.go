package online

import "repro/internal/grid"

// poolKey is the geometry identity of a pooled runner: everything a Runner
// cannot change via ResetEpisode. Arena is compared by pointer — the same
// discipline Options.Partition validation uses — so scenarios must share one
// *grid.Grid value to share warm runners.
type poolKey struct {
	arena    *grid.Grid
	cubeSide int
}

// PoolStats is a Pool's construction/reuse split.
type PoolStats struct {
	// Builds counts NewRunner constructions — each one builds a Partition
	// unless the options carried a prebuilt one.
	Builds int
	// Resets counts warm ResetEpisode reuses (construction-free episodes).
	Resets int
}

// Pool is a cache of long-lived warm Runners keyed by geometry — the
// per-worker reuse unit of the sweep engine (package sweep). Scenarios that
// share an arena and cube side hit ResetEpisode on one pooled runner, so
// every structure NewRunner builds (partition, vehicles, diffusion engines,
// the simulator's link tables and ring buffers) is constructed once per
// geometry per pool; a geometry change builds — and from then on also pools
// — a new runner. A Pool is confined to one goroutine, like the Runners it
// holds; concurrent workers hold separate pools and may share only the
// immutable Partition carried in Options.Partition.
type Pool struct {
	runners map[poolKey]*Runner
	stats   PoolStats
}

// NewPool creates an empty runner pool.
func NewPool() *Pool {
	return &Pool{runners: make(map[poolKey]*Runner)}
}

// Get returns a runner ready to play one episode under opts: a pooled runner
// of the same geometry warm-reset via ResetEpisode when one exists, a fresh
// NewRunner (which joins the pool) otherwise. The runner stays owned by the
// pool — callers play the episode and let the next Get reclaim it.
func (p *Pool) Get(opts Options) (*Runner, error) {
	side := opts.CubeSide
	if side == 0 && opts.Partition != nil {
		side = opts.Partition.cubeSide
	}
	key := poolKey{arena: opts.Arena, cubeSide: side}
	if r, ok := p.runners[key]; ok {
		if err := r.ResetEpisode(opts); err != nil {
			return nil, err
		}
		p.stats.Resets++
		return r, nil
	}
	r, err := NewRunner(opts)
	if err != nil {
		return nil, err
	}
	p.runners[key] = r
	p.stats.Builds++
	return r, nil
}

// Stats returns the pool's construction/reuse counters.
func (p *Pool) Stats() PoolStats { return p.stats }
