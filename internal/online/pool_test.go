package online

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// TestPoolSameShapeResets pins the pool's reuse contract: scenarios sharing
// a geometry replay on one warm runner (Reset, not rebuild), and with a
// prebuilt shared partition the pool performs zero partition builds.
func TestPoolSameShapeResets(t *testing.T) {
	arena := grid.MustNew(6, 6)
	part, err := NewPartition(arena, 6)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool()
	base := Options{Arena: arena, CubeSide: 6, Partition: part, Capacity: 14, Seed: 1}

	r1, err := pool.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	// Vary everything ResetEpisode can absorb: capacity, seed, monitoring,
	// failure injection.
	alt := base
	alt.Capacity = 20
	alt.Seed = 9
	alt.Monitoring = true
	alt.FailInitiate = map[grid.Point]bool{grid.P(0, 0): true}
	r2, err := pool.Get(alt)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("same-geometry Get should return the same pooled runner")
	}
	if r2.Partition() != part {
		t.Error("pooled runner should keep the shared prebuilt partition (0 partition builds)")
	}
	if got := pool.Stats(); got.Builds != 1 || got.Resets != 1 {
		t.Errorf("stats = %+v, want 1 build / 1 reset", got)
	}
}

// TestPoolGeometryChangeRebuilds pins the other half of the keying: a cube-
// side or arena change builds a new runner instead of resetting.
func TestPoolGeometryChangeRebuilds(t *testing.T) {
	arena := grid.MustNew(8, 8)
	pool := NewPool()
	r1, err := pool.Get(Options{Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pool.Get(Options{Arena: arena, CubeSide: 4, Capacity: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("cube-side change must build a new runner")
	}
	other := grid.MustNew(8, 8) // same sizes, different identity
	r3, err := pool.Get(Options{Arena: other, CubeSide: 8, Capacity: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("arena identity change must build a new runner")
	}
	if got := pool.Stats(); got.Builds != 3 || got.Resets != 0 {
		t.Errorf("stats = %+v, want 3 builds / 0 resets", got)
	}
	// Coming back to a previously seen geometry resets its pooled runner.
	r4, err := pool.Get(Options{Arena: arena, CubeSide: 8, Capacity: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r4 != r1 {
		t.Error("returning to a pooled geometry should reuse its runner")
	}
	if got := pool.Stats(); got.Builds != 3 || got.Resets != 1 {
		t.Errorf("stats = %+v, want 3 builds / 1 reset", got)
	}
}

// failureInjectionOpts is the golden failure-injection scenario of
// golden_test.go, reused to prove ResetEpisode restores every injection
// path.
func failureInjectionOpts(arena *grid.Grid) Options {
	return Options{
		Arena: arena, CubeSide: 6, Capacity: 20, Seed: 9, Monitoring: true,
		FailInitiate:      map[grid.Point]bool{grid.P(0, 0): true, grid.P(3, 3): true},
		DeadBeforeArrival: map[grid.Point]int{grid.P(2, 2): 10},
		Longevity:         map[grid.Point]float64{grid.P(5, 5): 0.5, grid.P(1, 4): 0},
	}
}

// TestResetEpisodeMatchesFresh is the pooling analogue of
// TestGoldenResetMatchesFresh: a runner that played a *plain* episode and is
// then ResetEpisode'd into the golden failure-injection scenario must replay
// that scenario bit-for-bit like a freshly built runner — monitoring,
// fail-initiate flags, the dead-event cursor, and longevity thresholds are
// all re-applied, not leaked from the previous episode.
func TestResetEpisodeMatchesFresh(t *testing.T) {
	arena := grid.MustNew(6, 6)
	rng := rand.New(rand.NewSource(42))
	jobs := make([]grid.Point, 80)
	for i := range jobs {
		jobs[i] = grid.P(rng.Intn(6), rng.Intn(6))
	}
	want := goldenCounters{
		served: 80, messages: 7616, replacements: 1, searches: 1,
		monitorRescues: 1, maxEnergy: 11,
	}

	r := mustRunner(t, Options{Arena: arena, CubeSide: 6, Capacity: 30, Seed: 3})
	if _, err := r.Run(demand.NewSequence(jobs)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := r.ResetEpisode(failureInjectionOpts(arena)); err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, res, want)
		// And back to a plain episode: the injection maps must be cleared
		// again, so re-arming with empty options keeps the run clean.
		if err := r.ResetEpisode(Options{Arena: arena, CubeSide: 6, Capacity: 30, Seed: 3}); err != nil {
			t.Fatal(err)
		}
		res, err = r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() || res.MonitorRescues != 0 {
			t.Fatalf("plain episode after injection episode leaked state: %+v", res)
		}
	}
}

// TestResetEpisodeValidation pins the geometry and input checks.
func TestResetEpisodeValidation(t *testing.T) {
	arena := grid.MustNew(6, 6)
	r := mustRunner(t, Options{Arena: arena, CubeSide: 6, Capacity: 14, Seed: 1})

	if err := r.ResetEpisode(Options{Arena: grid.MustNew(6, 6), CubeSide: 6, Capacity: 14}); err == nil {
		t.Error("different arena identity should fail")
	}
	if err := r.ResetEpisode(Options{Arena: arena, CubeSide: 3, Capacity: 14}); err == nil {
		t.Error("different cube side should fail")
	}
	otherPart, err := NewPartition(arena, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ResetEpisode(Options{Arena: arena, Partition: otherPart, Capacity: 14}); err == nil {
		t.Error("partition with different geometry should fail")
	}
	if err := r.ResetEpisode(Options{Arena: arena, CubeSide: 6, Capacity: 0}); err == nil {
		t.Error("non-positive capacity should fail")
	}
	if err := r.ResetEpisode(Options{
		Arena: arena, CubeSide: 6, Capacity: 14,
		Longevity: map[grid.Point]float64{grid.P(1, 1): 2},
	}); err == nil {
		t.Error("out-of-range longevity should fail")
	}
	// A same-geometry partition with a different pointer is interchangeable.
	samePart, err := NewPartition(arena, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ResetEpisode(Options{Arena: arena, Partition: samePart, Capacity: 14, Seed: 1}); err != nil {
		t.Errorf("same-geometry partition should be accepted: %v", err)
	}
	if r.Partition() == samePart {
		t.Error("runner should keep its own partition (neighbor lists point into it)")
	}
}
