package online

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/demand"
	"repro/internal/diffuse"
	"repro/internal/grid"
	"repro/internal/sim"
)

// Options configures an online run.
type Options struct {
	// Arena is the finite simulation grid.
	Arena *grid.Grid
	// CubeSide is the partition granularity, normally ceil(omega_c) of the
	// (adversary's) demand — part of the strategy per Theorem 1.4.2.
	CubeSide int
	// Partition, when set, is a prebuilt geometry to reuse instead of
	// constructing one: it must have been built for this exact Arena (and
	// CubeSide, when that is nonzero). Partitions are immutable, so one can
	// be shared by any number of runners, including concurrent search
	// workers — the capacity searches build one per sweep and every probe
	// reuses it.
	Partition *Partition
	// Capacity is the per-vehicle energy budget W being tested.
	Capacity float64
	// Seed drives the message-delay randomness.
	Seed int64
	// FailInitiate marks home cells whose vehicle, upon exhaustion, fails to
	// start its replacement search (Section 3.2.5 scenario 2).
	FailInitiate map[grid.Point]bool
	// DeadBeforeArrival kills the vehicle homed at a cell right before the
	// given arrival index is processed (scenario 3). Dead vehicles stop
	// serving and initiating but keep relaying messages.
	DeadBeforeArrival map[grid.Point]int
	// Longevity gives vehicles the Chapter 4 breakdown parameter p_i: the
	// vehicle homed at a cell breaks the moment it has spent a fraction p
	// of its capacity (0 = broken from the start, 1 or absent = never
	// breaks). This is scenario 4 of Section 3.2.5 made concrete.
	Longevity map[grid.Point]float64
	// Monitoring enables the Section 3.2.5 heartbeat ring. Without it,
	// scenario 2/3 failures go unrepaired.
	Monitoring bool
	// MaxSteps bounds message deliveries per quiescence run (0 = default).
	MaxSteps int64
	// SearchWorkers sets the number of concurrent feasibility probes used
	// by capacity searches (MinCapacityParallel / cmvrp.MeasureWon): each
	// probe is an independent fixed-seed run, so values >= 2 race them on
	// a worker pool. The search's answer depends on the probe grid and
	// hence on this count, so MeasureWon treats anything <= 1 as the
	// serial bisection — reproducible regardless of host core count —
	// while MinCapacityParallel maps <= 0 to runtime.NumCPU(). A single
	// Run ignores this field.
	SearchWorkers int
	// Tracer, when set, receives structured simulation events (serves,
	// exhaustions, searches, moves, rescues, failures).
	Tracer Tracer
}

// Failure records one unserved or mis-served job.
type Failure struct {
	Pos    grid.Point
	Reason string
}

// Result aggregates a run's outcome and cost metrics.
type Result struct {
	// Served counts successfully processed jobs.
	Served int64
	// Failures lists jobs that could not be served within capacity; empty
	// Failures means the capacity was sufficient for this sequence.
	Failures []Failure
	// MaxEnergy is the largest energy any vehicle consumed (the empirical
	// capacity requirement of this run).
	MaxEnergy float64
	// Messages is the total number of delivered protocol messages.
	Messages int64
	// Replacements counts Phase II relocations.
	Replacements int64
	// Searches and SearchFailures count Phase I computations and the ones
	// that found no idle candidate.
	Searches       int64
	SearchFailures int64
	// MonitorRescues counts replacement searches initiated by watchers
	// rather than by the exhausted vehicle itself.
	MonitorRescues int64
}

// OK reports whether every job was served.
func (r *Result) OK() bool { return len(r.Failures) == 0 }

// deadEvent is one densified DeadBeforeArrival entry: kill the vehicle with
// node id (= arena index) right before arrival `at` is processed. id < 0
// marks a cell outside the arena — surfaced as an error when it fires, to
// match the lazy validation of the map-keyed original.
type deadEvent struct {
	at   int
	id   sim.NodeID
	home grid.Point
}

// Runner executes one online simulation.
type Runner struct {
	opts Options
	part *Partition
	net  *sim.Network

	vehicles   []*vehicle   // dense, indexed by arena index (= sim.NodeID)
	pairActive []sim.NodeID // pair -> node currently responsible
	// pendingReplace guards against duplicate concurrent searches per pair.
	pendingReplace []bool
	// deadEvents is Options.DeadBeforeArrival densified and sorted by
	// arrival index; nextDead is the cursor into it.
	deadEvents []deadEvent
	nextDead   int

	// allNodes is the arena-index-ordered id list the monitoring waves
	// inject to (the order is part of the deterministic schedule).
	allNodes []sim.NodeID

	served         int64
	failures       []Failure
	maxEnergy      float64
	replacements   int64
	searches       int64
	searchFailures int64
	monitorRescues int64
	fatal          error
	currentArrival int
	// consumed latches after Run starts: the arrival cursor, counters, and
	// vehicle states are spent, so a second Run without Reset would silently
	// continue from mid-episode state. Reset re-arms the runner.
	consumed bool
}

// ErrRunnerUsed is returned by Run when the runner has already played a
// sequence and has not been Reset since.
var ErrRunnerUsed = errors.New("online: Runner already ran; call Reset before running again")

// defaultMaxSteps is the per-quiescence delivery budget when Options.MaxSteps
// is zero.
const defaultMaxSteps = 50_000_000

func (r *Runner) recordFailure(pos grid.Point, reason string) {
	r.failures = append(r.failures, Failure{Pos: pos, Reason: reason})
	r.emit(EventFailure, pos, pos, 0, reason)
}

func (r *Runner) noteEnergy(e float64) {
	if e > r.maxEnergy {
		r.maxEnergy = e
	}
}

func (r *Runner) failf(format string, args ...interface{}) {
	if r.fatal == nil {
		r.fatal = fmt.Errorf(format, args...)
	}
}

// NewRunner builds the network: one vehicle per arena cell, initially active
// on the pair's black vertex and idle on the white one. When
// Options.Partition is set the prebuilt geometry is reused; otherwise one is
// constructed for Arena and CubeSide.
func NewRunner(opts Options) (*Runner, error) {
	if opts.Arena == nil {
		return nil, errors.New("online: Arena is required")
	}
	if opts.Capacity <= 0 {
		return nil, fmt.Errorf("online: capacity %v must be positive", opts.Capacity)
	}
	part := opts.Partition
	if part == nil {
		var err error
		part, err = NewPartition(opts.Arena, opts.CubeSide)
		if err != nil {
			return nil, err
		}
	} else {
		if part.arena != opts.Arena {
			return nil, errors.New("online: Options.Partition was built for a different arena")
		}
		if opts.CubeSide != 0 && opts.CubeSide != part.cubeSide {
			return nil, fmt.Errorf("online: Options.Partition has cube side %d, CubeSide asks for %d",
				part.cubeSide, opts.CubeSide)
		}
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	r := &Runner{
		opts:           opts,
		part:           part,
		net:            sim.NewNetwork(opts.Seed),
		vehicles:       make([]*vehicle, opts.Arena.Len()),
		pairActive:     make([]sim.NodeID, len(part.Pairs())),
		pendingReplace: make([]bool, len(part.Pairs())),
	}
	// Densify the failure-injection maps once at the public boundary; the
	// simulation itself never hashes a point again.
	r.deadEvents = densifyDeadEvents(opts.Arena, opts.DeadBeforeArrival)
	for idx := int64(0); idx < opts.Arena.Len(); idx++ {
		cell := opts.Arena.PointAt(idx)
		id := sim.NodeID(idx)
		pairID := part.PairAt(idx)
		if pairID < 0 {
			return nil, fmt.Errorf("online: cell %v not covered by partition", cell)
		}
		longevity := 1.0
		if p, ok := opts.Longevity[cell]; ok {
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("online: longevity %v at %v outside [0,1]", p, cell)
			}
			longevity = p
		}
		// Resolve the communication neighborhood to node ids once; the
		// diffusion engine floods this exact slice on every Phase I search.
		nidx := part.CommNeighborIndices(idx)
		neighbors := make([]sim.NodeID, len(nidx))
		for i, ni := range nidx {
			neighbors[i] = sim.NodeID(ni)
		}
		v := &vehicle{
			r:            r,
			id:           id,
			home:         cell,
			failInitiate: opts.FailInitiate[cell],
			longevity:    longevity,
			neighbors:    neighbors,
		}
		eng, err := diffuse.New(diffuse.Config{
			Neighbors: func() []sim.NodeID { return v.neighbors },
			IsCandidate: func() bool {
				return v.state == Idle && v.untilBreak() >= serveCost
			},
			OnComplete: func(ctx sim.Sender, seq int, found bool) {
				v.onSearchComplete(ctx, seq, found)
			},
			OnPayload: func(ctx sim.Sender, payload diffuse.Payload) {
				v.onMoveOrder(ctx, moveOrder{
					Dest:   opts.Arena.PointAt(int64(payload.A)),
					PairID: int(payload.B),
				})
			},
		})
		if err != nil {
			return nil, err
		}
		v.eng = eng
		r.vehicles[id] = v
		if err := r.net.Add(id, v); err != nil {
			return nil, err
		}
	}
	r.allNodes = make([]sim.NodeID, opts.Arena.Len())
	for i := range r.allNodes {
		r.allNodes[i] = sim.NodeID(i)
	}
	r.restoreInitialState()
	return r, nil
}

// restoreInitialState puts every mutable piece of the episode — vehicle
// positions, working states, energy, the pair-ownership tables, the dead-
// event cursor, and all counters — back to its just-constructed value. It is
// the shared tail of NewRunner and Reset, which is what makes a reset run
// bit-for-bit identical to a fresh one.
func (r *Runner) restoreInitialState() {
	for _, v := range r.vehicles {
		v.pos = v.home
		v.used = 0
		v.pairID = r.part.PairAt(int64(v.id))
		v.state = Idle
		if v.longevity == 0 {
			v.state = Dead // broken from the start (p_i = 0)
		}
		v.searchPair = 0
		v.searchDest = grid.Point{}
		// Clear, don't drop: an empty map is indistinguishable from the nil
		// one a fresh vehicle starts with, and keeping the buckets makes
		// warm monitored episodes allocation-free.
		clear(v.heard)
		v.eng.Reset()
	}
	// Activate the service vertex of every pair; fall back to the white
	// partner when the black vertex's vehicle is broken from the start.
	for i, pr := range r.part.Pairs() {
		id := sim.NodeID(r.opts.Arena.Index(pr.ServicePos()))
		if r.vehicles[id].state == Dead && !pr.Single {
			if alt := sim.NodeID(r.opts.Arena.Index(pr.Cells[1])); r.vehicles[alt].state != Dead {
				id = alt
			}
		}
		if r.vehicles[id].state != Dead {
			r.vehicles[id].state = Active
		}
		r.pairActive[i] = id
		r.pendingReplace[i] = false
	}
	r.nextDead = 0
	r.served = 0
	// Start a fresh failure list rather than truncating: the previous run's
	// Result aliases the old backing array.
	r.failures = nil
	r.maxEnergy = 0
	r.replacements = 0
	r.searches = 0
	r.searchFailures = 0
	r.monitorRescues = 0
	r.fatal = nil
	r.currentArrival = 0
	r.consumed = false
}

// Reset re-arms a consumed runner for another episode at the given capacity
// and seed, reusing every structure NewRunner built: the partition, the
// vehicles and their diffusion engines, the pair tables, and the network
// with all its link tables and ring buffers. After Reset the runner behaves
// bit-for-bit like NewRunner(opts with Capacity/Seed replaced) — the
// warm-start contract the capacity searches rely on.
func (r *Runner) Reset(capacity float64, seed int64) error {
	if capacity <= 0 {
		return fmt.Errorf("online: capacity %v must be positive", capacity)
	}
	r.opts.Capacity = capacity
	r.opts.Seed = seed
	r.net.Reset(seed)
	r.restoreInitialState()
	return nil
}

// ResetEpisode re-arms the runner for a new episode whose options may differ
// in everything *except* geometry: capacity, seed, the failure-injection
// maps (FailInitiate, DeadBeforeArrival, Longevity), Monitoring, MaxSteps,
// and Tracer are re-applied in place, while the partition, vehicles,
// diffusion engines, and the network's link tables and ring buffers are all
// kept. Arena (pointer identity) and cube side must match what the runner
// was built with — a geometry change requires a new Runner, which is exactly
// the rebuild-vs-reset split the sweep layer's Pool keys on. After a
// successful ResetEpisode the runner behaves bit-for-bit like
// NewRunner(opts); on error the runner is left unchanged.
func (r *Runner) ResetEpisode(opts Options) error {
	if opts.Arena != r.opts.Arena {
		return errors.New("online: ResetEpisode with a different arena; build a new Runner")
	}
	if opts.CubeSide != 0 && opts.CubeSide != r.part.cubeSide {
		return fmt.Errorf("online: ResetEpisode cube side %d, runner was built with %d",
			opts.CubeSide, r.part.cubeSide)
	}
	if opts.Partition != nil && opts.Partition != r.part &&
		(opts.Partition.arena != r.part.arena || opts.Partition.cubeSide != r.part.cubeSide) {
		return errors.New("online: ResetEpisode Partition differs in geometry")
	}
	if opts.Capacity <= 0 {
		return fmt.Errorf("online: capacity %v must be positive", opts.Capacity)
	}
	// Validate before mutating anything, so a rejected episode cannot leave
	// the runner half-updated.
	for _, v := range r.vehicles {
		if p, ok := opts.Longevity[v.home]; ok && (p < 0 || p > 1) {
			return fmt.Errorf("online: longevity %v at %v outside [0,1]", p, v.home)
		}
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	// Re-densify the failure injections exactly as NewRunner does.
	for _, v := range r.vehicles {
		longevity := 1.0
		if p, ok := opts.Longevity[v.home]; ok {
			longevity = p
		}
		v.longevity = longevity
		v.failInitiate = opts.FailInitiate[v.home]
	}
	r.deadEvents = densifyDeadEvents(opts.Arena, opts.DeadBeforeArrival)
	// Geometry is interchangeable by construction (a Partition is a
	// deterministic function of arena and cube side), so keep the runner's
	// own — the per-vehicle neighbor lists already point into it.
	opts.Partition = r.part
	r.opts = opts
	r.net.Reset(opts.Seed)
	r.restoreInitialState()
	return nil
}

// densifyDeadEvents converts the public DeadBeforeArrival map into a slice
// of events sorted by arrival index (ties broken by cell, so runs stay
// reproducible regardless of map iteration order). Negative arrival indices
// can never fire and are dropped, matching the original scan.
func densifyDeadEvents(arena *grid.Grid, dead map[grid.Point]int) []deadEvent {
	if len(dead) == 0 {
		return nil
	}
	events := make([]deadEvent, 0, len(dead))
	for home, at := range dead {
		if at < 0 {
			continue
		}
		id := sim.NodeID(-1)
		if arena.Contains(home) {
			id = sim.NodeID(arena.Index(home))
		}
		events = append(events, deadEvent{at: at, id: id, home: home})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].home.Less(events[j].home)
	})
	return events
}

// Partition exposes the geometry (for tests and diagnostics).
func (r *Runner) Partition() *Partition { return r.part }

// Run plays the arrival sequence: each job is routed to the vehicle
// physically covering its pair, the network is run to quiescence (the thesis
// assumes inter-arrival gaps long enough for all computation and movement),
// and — when monitoring is on — a heartbeat and a check round follow.
//
// A runner is single-use: Run consumes the vehicle states and counters, so
// calling it again without an intervening Reset returns ErrRunnerUsed.
func (r *Runner) Run(seq *demand.Sequence) (*Result, error) {
	if r.consumed {
		return nil, ErrRunnerUsed
	}
	r.consumed = true
	for i := 0; i < seq.Len(); i++ {
		r.currentArrival = i
		pos := seq.At(i)
		// Arrivals are visited in order and the cursor drains every event
		// with at == i, so the front event's at is always >= i here.
		for r.nextDead < len(r.deadEvents) && r.deadEvents[r.nextDead].at == i {
			ev := r.deadEvents[r.nextDead]
			r.nextDead++
			if ev.id < 0 {
				return nil, fmt.Errorf("online: DeadBeforeArrival cell %v not in arena", ev.home)
			}
			r.vehicles[ev.id].state = Dead
		}
		pairID, ok := r.part.PairOf(pos)
		if !ok {
			return nil, fmt.Errorf("online: arrival %v outside arena", pos)
		}
		r.net.Inject(r.pairActive[pairID],
			sim.Msg{Kind: msgServeJob, A: uint32(r.opts.Arena.Index(pos))})
		if err := r.quiesce(); err != nil {
			return nil, err
		}
		if r.opts.Monitoring {
			if err := r.monitorRound(); err != nil {
				return nil, err
			}
		}
		if r.fatal != nil {
			return nil, r.fatal
		}
	}
	return &Result{
		Served:         r.served,
		Failures:       r.failures,
		MaxEnergy:      r.maxEnergy,
		Messages:       r.net.Delivered(),
		Replacements:   r.replacements,
		Searches:       r.searches,
		SearchFailures: r.searchFailures,
		MonitorRescues: r.monitorRescues,
	}, nil
}

func (r *Runner) quiesce() error {
	return r.net.Run(r.opts.MaxSteps)
}

// monitorRound performs one heartbeat exchange followed by one check pass
// (the run-to-quiescence analogue of "send existing messages periodically;
// decide the neighbor is done after a timeout"). Both waves batch-inject one
// inline round message in arena-index order (identical to point enumeration
// order; a map iteration here would break run reproducibility by perturbing
// the delivery scheduler's RNG stream), written straight into each mailbox's
// cached injection slot by InjectMany.
func (r *Runner) monitorRound() error {
	r.net.InjectMany(r.allNodes, sim.Msg{Kind: msgHeartbeatRound})
	if err := r.quiesce(); err != nil {
		return err
	}
	r.net.InjectMany(r.allNodes, sim.Msg{Kind: msgCheckRound})
	return r.quiesce()
}

// MinCapacity and MinCapacityParallel (the capacity-search layer) live in
// search.go.
