package online

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/demand"
	"repro/internal/diffuse"
	"repro/internal/gossip"
	"repro/internal/grid"
	"repro/internal/sim"
)

// Options configures an online run.
type Options struct {
	// Arena is the finite simulation grid.
	Arena *grid.Grid
	// CubeSide is the partition granularity, normally ceil(omega_c) of the
	// (adversary's) demand — part of the strategy per Theorem 1.4.2.
	CubeSide int
	// Partition, when set, is a prebuilt geometry to reuse instead of
	// constructing one: it must have been built for this exact Arena (and
	// CubeSide, when that is nonzero). Partitions are immutable, so one can
	// be shared by any number of runners, including concurrent search
	// workers — the capacity searches build one per sweep and every probe
	// reuses it.
	Partition *Partition
	// Capacity is the per-vehicle energy budget W being tested.
	Capacity float64
	// Seed drives the message-delay randomness.
	Seed int64
	// FailInitiate marks home cells whose vehicle, upon exhaustion, fails to
	// start its replacement search (Section 3.2.5 scenario 2). Legacy flat
	// knob; prefer Failure for new code. Keys must lie in the arena.
	FailInitiate map[grid.Point]bool
	// DeadBeforeArrival kills the vehicle homed at a cell right before the
	// given arrival index is processed (scenario 3). Dead vehicles stop
	// serving and initiating but keep relaying messages. Legacy flat knob;
	// prefer Failure for new code.
	DeadBeforeArrival map[grid.Point]int
	// Longevity gives vehicles the Chapter 4 breakdown parameter p_i: the
	// vehicle homed at a cell breaks the moment it has spent a fraction p
	// of its capacity (0 = broken from the start, 1 or absent = never
	// breaks). This is scenario 4 of Section 3.2.5 made concrete. Legacy
	// flat knob; prefer Failure for new code. Keys must lie in the arena.
	Longevity map[grid.Point]float64
	// Failure, when set, supplies the full pluggable failure model — the
	// three crash knobs above plus the Byzantine mode. Mutually exclusive
	// with the legacy flat fields: an episode's failure configuration has
	// exactly one source of truth.
	Failure *FailureModel
	// Fleet, when set, makes the fleet heterogeneous: per-vehicle
	// speed/energy/capacity classes with partition-aware assignment. Nil
	// means the thesis' uniform fleet (and bit-identical behavior to it).
	Fleet *Fleet
	// Search selects the Phase I dissemination protocol: SearchDiffuse (the
	// default Dijkstra-Scholten diffusing computation) or SearchGossip (the
	// fanout-limited gossip alternative). Selectable per episode on pooled
	// runners via ResetEpisode.
	Search SearchProtocol
	// GossipFanout bounds per-node forwarding when Search == SearchGossip:
	// each node spreads a rumor to at most this many deterministically
	// chosen neighbors. 0 means full flood (message-for-message identical
	// to the diffusing computation); setting it without SearchGossip is an
	// error.
	GossipFanout int
	// Monitoring enables the Section 3.2.5 heartbeat ring. Without it,
	// scenario 2/3 failures go unrepaired.
	Monitoring bool
	// MaxSteps bounds message deliveries per quiescence run (0 = default).
	MaxSteps int64
	// SearchWorkers sets the number of concurrent feasibility probes used
	// by capacity searches (MinCapacityParallel / cmvrp.MeasureWon): each
	// probe is an independent fixed-seed run, so values >= 2 race them on
	// a worker pool. The search's answer depends on the probe grid and
	// hence on this count, so MeasureWon treats anything <= 1 as the
	// serial bisection — reproducible regardless of host core count —
	// while MinCapacityParallel maps <= 0 to runtime.NumCPU(). A single
	// Run ignores this field.
	SearchWorkers int
	// Tracer, when set, receives structured simulation events (serves,
	// exhaustions, searches, moves, rescues, failures).
	Tracer Tracer
	// SimShards selects the message scheduler. 0 (the default) is the
	// legacy single-stream scheduler every historical golden trace pins.
	// Values >= 1 select the sealed-round sharded scheduler: the arena is
	// partitioned into that many contiguous stripes and rounds are
	// conservatively synchronized, which makes the episode's outcome
	// bit-for-bit identical for EVERY SimShards >= 1 — the count is purely
	// a parallelism knob (when SimShards > 1 rounds run on the network's
	// persistent worker pool, sized to min(shards, GOMAXPROCS); a Tracer
	// forces sequential execution, with identical results, so event
	// callbacks never run concurrently). The two schedulers realize
	// different — equally valid — deterministic delivery schedules, so
	// results differ between SimShards = 0 and SimShards >= 1 but never
	// within the sharded family.
	SimShards int
}

// Failure records one unserved or mis-served job.
type Failure struct {
	Pos    grid.Point
	Reason string
}

// Result aggregates a run's outcome and cost metrics.
type Result struct {
	// Served counts successfully processed jobs.
	Served int64
	// Failures lists jobs that could not be served within capacity; empty
	// Failures means the capacity was sufficient for this sequence.
	Failures []Failure
	// MaxEnergy is the largest energy any vehicle consumed (the empirical
	// capacity requirement of this run).
	MaxEnergy float64
	// Messages is the total number of delivered protocol messages.
	Messages int64
	// Replacements counts Phase II relocations.
	Replacements int64
	// Searches and SearchFailures count Phase I computations and the ones
	// that found no idle candidate.
	Searches       int64
	SearchFailures int64
	// MonitorRescues counts replacement searches initiated by watchers whose
	// watched pair went silent (the beacon-timeout path of Section 3.2.5).
	MonitorRescues int64
	// EvidenceRescues counts replacement searches initiated by watchers on
	// the evidence channel: beacons kept arriving but a customer complaint
	// proved no work was served — the path that unmasks Byzantine
	// casualties, which never go silent.
	EvidenceRescues int64
	// ReplaceLatencySum / ReplaceLatencyCount measure replacement latency:
	// for every pair whose service lapsed (an arrival went unserved) and
	// was later restored by a Phase II move, the number of arrivals from
	// the first lost job through the restoring arrival, inclusive. Proactive
	// replacements (recruited before any job was lost) contribute nothing.
	ReplaceLatencySum   int64
	ReplaceLatencyCount int64
}

// MeanReplaceLatency returns the average arrivals-to-restore over lapsed
// pairs (0 when no lapse was ever repaired).
func (r *Result) MeanReplaceLatency() float64 {
	if r.ReplaceLatencyCount == 0 {
		return 0
	}
	return float64(r.ReplaceLatencySum) / float64(r.ReplaceLatencyCount)
}

// OK reports whether every job was served.
func (r *Result) OK() bool { return len(r.Failures) == 0 }

// deadEvent is one densified DeadBeforeArrival entry: kill the vehicle with
// node id (= arena index) right before arrival `at` is processed. id < 0
// marks a cell outside the arena — surfaced as an error when it fires, to
// match the lazy validation of the map-keyed original.
type deadEvent struct {
	at   int
	id   sim.NodeID
	home grid.Point
}

// Runner executes one online simulation.
type Runner struct {
	opts Options
	part *Partition
	net  *sim.Network

	vehicles   []*vehicle   // dense, indexed by arena index (= sim.NodeID)
	pairActive []sim.NodeID // pair -> node currently responsible
	// pendingReplace guards against duplicate concurrent searches per pair.
	pendingReplace []bool
	// deadEvents is Options.DeadBeforeArrival densified and sorted by
	// arrival index; nextDead is the cursor into it.
	deadEvents []deadEvent
	nextDead   int

	// allNodes is the arena-index-ordered id list the monitoring waves
	// inject to (the order is part of the deterministic schedule).
	allNodes []sim.NodeID

	// gossip selects the live Phase I engine for the episode; evidence
	// enables the customer-complaint channel (set iff the failure model has
	// Byzantine cells, so legacy episodes inject nothing new).
	gossip   bool
	evidence bool
	// pairDownAt tracks replacement latency: the arrival index at which a
	// pair first lost a job (-1 while healthy), settled by noteRestored.
	pairDownAt []int

	served              int64
	failures            []Failure
	maxEnergy           float64
	replacements        int64
	searches            int64
	searchFailures      int64
	monitorRescues      int64
	evidenceRescues     int64
	replaceLatencySum   int64
	replaceLatencyCount int64
	fatal               error
	// tallies holds the per-shard handler-side accumulators folded into the
	// totals above at round barriers (sharded) or quiescence (legacy, one
	// tally). See shardTally.
	tallies        []shardTally
	currentArrival int
	// consumed latches after Run starts: the arrival cursor, counters, and
	// vehicle states are spent, so a second Run without Reset would silently
	// continue from mid-episode state. Reset re-arms the runner.
	consumed bool
}

// ErrRunnerUsed is returned by Run when the runner has already played a
// sequence and has not been Reset since.
var ErrRunnerUsed = errors.New("online: Runner already ran; call Reset before running again")

// defaultMaxSteps is the per-quiescence delivery budget when Options.MaxSteps
// is zero.
const defaultMaxSteps = 50_000_000

// shardTally is the per-shard accumulator for everything vehicle handlers
// mutate besides the pair tables: counters, the failure list, and the fatal
// latch. Handlers write only their own shard's tally (racefree under
// parallel shards), and foldTallies merges the deltas in shard order at
// every round barrier — which, stripes being contiguous ascending cell
// ranges, is the canonical merge order the determinism contract names. The
// legacy scheduler uses tally 0 folded at quiescence, which reduces to the
// historical direct mutation exactly. The trailing pad keeps adjacent
// tallies off each other's cache lines under parallel execution.
type shardTally struct {
	served              int64
	searches            int64
	searchFailures      int64
	replacements        int64
	monitorRescues      int64
	evidenceRescues     int64
	replaceLatencySum   int64
	replaceLatencyCount int64
	maxEnergy           float64
	failures            []Failure
	fatal               error
	_                   [16]byte
}

// foldTallies merges every shard's deltas into the runner totals, in shard
// order. Registered as the sharded scheduler's barrier hook (so failure
// order and fatal precedence stay round-major: all of round r's entries, in
// ascending cell order, before any of round r+1's) and called after every
// legacy quiescence (where the single tally preserves execution order).
func (r *Runner) foldTallies() {
	for i := range r.tallies {
		t := &r.tallies[i]
		r.served += t.served
		r.searches += t.searches
		r.searchFailures += t.searchFailures
		r.replacements += t.replacements
		r.monitorRescues += t.monitorRescues
		r.evidenceRescues += t.evidenceRescues
		r.replaceLatencySum += t.replaceLatencySum
		r.replaceLatencyCount += t.replaceLatencyCount
		t.served, t.searches, t.searchFailures, t.replacements = 0, 0, 0, 0
		t.monitorRescues, t.evidenceRescues = 0, 0
		t.replaceLatencySum, t.replaceLatencyCount = 0, 0
		if t.maxEnergy > r.maxEnergy {
			r.maxEnergy = t.maxEnergy
		}
		t.maxEnergy = 0
		if len(t.failures) > 0 {
			r.failures = append(r.failures, t.failures...)
			t.failures = t.failures[:0]
		}
		if t.fatal != nil {
			if r.fatal == nil {
				r.fatal = t.fatal
			}
			t.fatal = nil
		}
	}
}

func (r *Runner) recordFailure(t *shardTally, pos grid.Point, reason string) {
	t.failures = append(t.failures, Failure{Pos: pos, Reason: reason})
	r.emit(EventFailure, pos, pos, 0, reason)
}

func (t *shardTally) noteEnergy(e float64) {
	if e > t.maxEnergy {
		t.maxEnergy = e
	}
}

func (r *Runner) failf(t *shardTally, format string, args ...interface{}) {
	if t.fatal == nil {
		t.fatal = fmt.Errorf(format, args...)
	}
}

// NewRunner builds the network: one vehicle per arena cell, initially active
// on the pair's black vertex and idle on the white one. When
// Options.Partition is set the prebuilt geometry is reused; otherwise one is
// constructed for Arena and CubeSide.
func NewRunner(opts Options) (*Runner, error) {
	if opts.Arena == nil {
		return nil, errors.New("online: Arena is required")
	}
	if opts.Capacity <= 0 {
		return nil, fmt.Errorf("online: capacity %v must be positive", opts.Capacity)
	}
	part := opts.Partition
	if part == nil {
		var err error
		part, err = NewPartition(opts.Arena, opts.CubeSide)
		if err != nil {
			return nil, err
		}
	} else {
		if part.arena != opts.Arena {
			return nil, errors.New("online: Options.Partition was built for a different arena")
		}
		if opts.CubeSide != 0 && opts.CubeSide != part.cubeSide {
			return nil, fmt.Errorf("online: Options.Partition has cube side %d, CubeSide asks for %d",
				part.cubeSide, opts.CubeSide)
		}
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	// Normalize and validate the failure, fleet, and search knobs before
	// building anything: unknown cells, bad multipliers, and malformed
	// fanouts are rejected here, matching the unknown-cell error
	// DeadBeforeArrival surfaces when its event fires.
	model, err := opts.validateExtensions(opts.Arena)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		opts:           opts,
		part:           part,
		net:            sim.NewNetwork(opts.Seed),
		vehicles:       make([]*vehicle, opts.Arena.Len()),
		pairActive:     make([]sim.NodeID, len(part.Pairs())),
		pendingReplace: make([]bool, len(part.Pairs())),
		pairDownAt:     make([]int, len(part.Pairs())),
		gossip:         opts.Search == SearchGossip,
		evidence:       len(model.Byzantine) > 0,
	}
	// Densify the failure-injection maps once at the public boundary; the
	// simulation itself never hashes a point again.
	r.deadEvents = densifyDeadEvents(opts.Arena, model.DeadBeforeArrival)
	for idx := int64(0); idx < opts.Arena.Len(); idx++ {
		cell := opts.Arena.PointAt(idx)
		id := sim.NodeID(idx)
		pairID := part.PairAt(idx)
		if pairID < 0 {
			return nil, fmt.Errorf("online: cell %v not covered by partition", cell)
		}
		longevity := 1.0
		if p, ok := model.Longevity[cell]; ok {
			longevity = p
		}
		// Resolve the communication neighborhood to node ids once; the
		// search engines flood this exact slice on every Phase I search.
		nidx := part.CommNeighborIndices(idx)
		neighbors := make([]sim.NodeID, len(nidx))
		for i, ni := range nidx {
			neighbors[i] = sim.NodeID(ni)
		}
		v := &vehicle{
			r:            r,
			id:           id,
			home:         cell,
			failInitiate: model.FailInitiate[cell],
			longevity:    longevity,
			byzantine:    model.Byzantine[cell],
			neighbors:    neighbors,
		}
		v.applyClass(opts.Fleet, part)
		isCandidate := func() bool {
			return v.state == Idle && v.untilBreak() >= v.reserveCost()
		}
		onPayload := func(ctx sim.Sender, a, b uint32) {
			v.onMoveOrder(ctx, moveOrder{
				Dest:   opts.Arena.PointAt(int64(a)),
				PairID: int(b),
			})
		}
		ds, err := diffuse.New(diffuse.Config{
			Neighbors:   func() []sim.NodeID { return v.neighbors },
			IsCandidate: isCandidate,
			OnComplete: func(ctx sim.Sender, seq int, found bool) {
				v.onSearchComplete(ctx, seq, found)
			},
			OnPayload: func(ctx sim.Sender, payload diffuse.Payload) {
				onPayload(ctx, payload.A, payload.B)
			},
		})
		if err != nil {
			return nil, err
		}
		// Both Phase I engines are built up front (two small structs per
		// vehicle) so a pooled runner can flip protocols per episode without
		// reconstruction; only the selected one ever sees traffic.
		gs, err := gossip.New(gossip.Config{
			Neighbors:   func() []sim.NodeID { return v.neighbors },
			IsCandidate: isCandidate,
			Fanout:      func() int { return r.opts.GossipFanout },
			OnComplete: func(ctx sim.Sender, seq int, found bool) {
				v.onSearchComplete(ctx, seq, found)
			},
			OnPayload: func(ctx sim.Sender, payload gossip.Payload) {
				onPayload(ctx, payload.A, payload.B)
			},
		})
		if err != nil {
			return nil, err
		}
		v.ds = ds
		v.gs = gs
		r.vehicles[id] = v
		if err := r.net.Add(id, v); err != nil {
			return nil, err
		}
	}
	r.allNodes = make([]sim.NodeID, opts.Arena.Len())
	for i := range r.allNodes {
		r.allNodes[i] = sim.NodeID(i)
	}
	if err := r.applyShards(); err != nil {
		return nil, err
	}
	r.restoreInitialState()
	return r, nil
}

// applyShards configures the network's scheduler from Options.SimShards and
// sizes the per-shard tallies. Parallel shard execution is enabled when
// there is real fan-out and no Tracer (a traced episode runs its shards
// sequentially — bit-identical results, but event callbacks stay
// single-threaded). Called with a quiescent network: at construction and
// from ResetEpisode right after the network reset.
func (r *Runner) applyShards() error {
	parallel := r.opts.SimShards > 1 && r.opts.Tracer == nil
	if err := r.net.SetShards(r.opts.SimShards, parallel); err != nil {
		return err
	}
	// SetShards drops the barrier hook (on the warm same-count path it
	// keeps the stripes and the persistent worker pool, but a hook from a
	// previous episode must not leak), so the hook — which folds the
	// tallies in shard order at every round — is re-registered every time.
	r.net.SetBarrierHook(r.foldTallies)
	want := 1
	if r.opts.SimShards > 1 {
		want = r.opts.SimShards
	}
	if len(r.tallies) != want {
		r.tallies = make([]shardTally, want)
	}
	return nil
}

// restoreInitialState puts every mutable piece of the episode — vehicle
// positions, working states, energy, the pair-ownership tables, the dead-
// event cursor, and all counters — back to its just-constructed value. It is
// the shared tail of NewRunner and Reset, which is what makes a reset run
// bit-for-bit identical to a fresh one.
func (r *Runner) restoreInitialState() {
	for _, v := range r.vehicles {
		v.pos = v.home
		v.used = 0
		v.pairID = r.part.PairAt(int64(v.id))
		v.state = Idle
		if v.longevity == 0 {
			v.state = Dead // broken from the start (p_i = 0)
		}
		v.searchPair = 0
		v.searchDest = grid.Point{}
		// Clear, don't drop: an empty map is indistinguishable from the nil
		// one a fresh vehicle starts with, and keeping the buckets makes
		// warm monitored episodes allocation-free.
		clear(v.heard)
		clear(v.complaints)
		v.ds.Reset()
		v.gs.Reset()
	}
	// Activate the service vertex of every pair; fall back to the white
	// partner when the black vertex's vehicle is broken from the start.
	for i, pr := range r.part.Pairs() {
		id := sim.NodeID(r.opts.Arena.Index(pr.ServicePos()))
		if r.vehicles[id].state == Dead && !pr.Single {
			if alt := sim.NodeID(r.opts.Arena.Index(pr.Cells[1])); r.vehicles[alt].state != Dead {
				id = alt
			}
		}
		if r.vehicles[id].state != Dead {
			r.vehicles[id].state = Active
		}
		r.pairActive[i] = id
		r.pendingReplace[i] = false
	}
	for i := range r.pairDownAt {
		r.pairDownAt[i] = -1
	}
	r.nextDead = 0
	r.served = 0
	for i := range r.tallies {
		r.tallies[i] = shardTally{failures: r.tallies[i].failures[:0]}
	}
	// Start a fresh failure list rather than truncating: the previous run's
	// Result aliases the old backing array.
	r.failures = nil
	r.maxEnergy = 0
	r.replacements = 0
	r.searches = 0
	r.searchFailures = 0
	r.monitorRescues = 0
	r.evidenceRescues = 0
	r.replaceLatencySum = 0
	r.replaceLatencyCount = 0
	r.fatal = nil
	r.currentArrival = 0
	r.consumed = false
}

// noteRestored settles the replacement-latency clock for a pair a Phase II
// move just restored: if any arrival was lost while the pair was down, the
// lapse length (first lost arrival through the current one, inclusive) is
// added to the latency accumulators.
func (r *Runner) noteRestored(t *shardTally, pairID int) {
	if r.pairDownAt[pairID] < 0 {
		return
	}
	t.replaceLatencySum += int64(r.currentArrival - r.pairDownAt[pairID] + 1)
	t.replaceLatencyCount++
	r.pairDownAt[pairID] = -1
}

// Reset re-arms a consumed runner for another episode at the given capacity
// and seed, reusing every structure NewRunner built: the partition, the
// vehicles and their diffusion engines, the pair tables, and the network
// with all its link tables and ring buffers. After Reset the runner behaves
// bit-for-bit like NewRunner(opts with Capacity/Seed replaced) — the
// warm-start contract the capacity searches rely on.
func (r *Runner) Reset(capacity float64, seed int64) error {
	if capacity <= 0 {
		return fmt.Errorf("online: capacity %v must be positive", capacity)
	}
	r.opts.Capacity = capacity
	r.opts.Seed = seed
	r.net.Reset(seed)
	r.restoreInitialState()
	return nil
}

// ResetEpisode re-arms the runner for a new episode whose options may differ
// in everything *except* geometry: capacity, seed, the failure-injection
// maps (FailInitiate, DeadBeforeArrival, Longevity), Monitoring, MaxSteps,
// and Tracer are re-applied in place, while the partition, vehicles,
// diffusion engines, and the network's link tables and ring buffers are all
// kept. Arena (pointer identity) and cube side must match what the runner
// was built with — a geometry change requires a new Runner, which is exactly
// the rebuild-vs-reset split the sweep layer's Pool keys on. After a
// successful ResetEpisode the runner behaves bit-for-bit like
// NewRunner(opts); on error the runner is left unchanged.
func (r *Runner) ResetEpisode(opts Options) error {
	if opts.Arena != r.opts.Arena {
		return errors.New("online: ResetEpisode with a different arena; build a new Runner")
	}
	if opts.CubeSide != 0 && opts.CubeSide != r.part.cubeSide {
		return fmt.Errorf("online: ResetEpisode cube side %d, runner was built with %d",
			opts.CubeSide, r.part.cubeSide)
	}
	if opts.Partition != nil && opts.Partition != r.part &&
		(opts.Partition.arena != r.part.arena || opts.Partition.cubeSide != r.part.cubeSide) {
		return errors.New("online: ResetEpisode Partition differs in geometry")
	}
	if opts.Capacity <= 0 {
		return fmt.Errorf("online: capacity %v must be positive", opts.Capacity)
	}
	// Validate before mutating anything, so a rejected episode cannot leave
	// the runner half-updated — the same construction-time checks NewRunner
	// runs, covering the failure model, fleet, and search knobs.
	model, err := opts.validateExtensions(opts.Arena)
	if err != nil {
		return err
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	// Re-densify the failure injections and fleet classes exactly as
	// NewRunner does.
	for _, v := range r.vehicles {
		longevity := 1.0
		if p, ok := model.Longevity[v.home]; ok {
			longevity = p
		}
		v.longevity = longevity
		v.failInitiate = model.FailInitiate[v.home]
		v.byzantine = model.Byzantine[v.home]
		v.applyClass(opts.Fleet, r.part)
	}
	r.deadEvents = densifyDeadEvents(opts.Arena, model.DeadBeforeArrival)
	r.gossip = opts.Search == SearchGossip
	r.evidence = len(model.Byzantine) > 0
	// Geometry is interchangeable by construction (a Partition is a
	// deterministic function of arena and cube side), so keep the runner's
	// own — the per-vehicle neighbor lists already point into it.
	opts.Partition = r.part
	r.opts = opts
	r.net.Reset(opts.Seed)
	if err := r.applyShards(); err != nil {
		return err
	}
	r.restoreInitialState()
	return nil
}

// densifyDeadEvents converts the public DeadBeforeArrival map into a slice
// of events sorted by arrival index (ties broken by cell, so runs stay
// reproducible regardless of map iteration order). Negative arrival indices
// can never fire and are dropped, matching the original scan.
func densifyDeadEvents(arena *grid.Grid, dead map[grid.Point]int) []deadEvent {
	if len(dead) == 0 {
		return nil
	}
	events := make([]deadEvent, 0, len(dead))
	for home, at := range dead {
		if at < 0 {
			continue
		}
		id := sim.NodeID(-1)
		if arena.Contains(home) {
			id = sim.NodeID(arena.Index(home))
		}
		events = append(events, deadEvent{at: at, id: id, home: home})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].home.Less(events[j].home)
	})
	return events
}

// Partition exposes the geometry (for tests and diagnostics).
func (r *Runner) Partition() *Partition { return r.part }

// Run plays the arrival sequence: each job is routed to the vehicle
// physically covering its pair, the network is run to quiescence (the thesis
// assumes inter-arrival gaps long enough for all computation and movement),
// and — when monitoring is on — a heartbeat and a check round follow.
//
// A runner is single-use: Run consumes the vehicle states and counters, so
// calling it again without an intervening Reset returns ErrRunnerUsed.
func (r *Runner) Run(seq *demand.Sequence) (*Result, error) {
	if r.consumed {
		return nil, ErrRunnerUsed
	}
	r.consumed = true
	for i := 0; i < seq.Len(); i++ {
		r.currentArrival = i
		pos := seq.At(i)
		// Arrivals are visited in order and the cursor drains every event
		// with at == i, so the front event's at is always >= i here.
		for r.nextDead < len(r.deadEvents) && r.deadEvents[r.nextDead].at == i {
			ev := r.deadEvents[r.nextDead]
			r.nextDead++
			if ev.id < 0 {
				return nil, fmt.Errorf("online: DeadBeforeArrival cell %v not in arena", ev.home)
			}
			r.vehicles[ev.id].state = Dead
		}
		pairID, ok := r.part.PairOf(pos)
		if !ok {
			return nil, fmt.Errorf("online: arrival %v outside arena", pos)
		}
		servedBefore := r.served
		r.net.Inject(r.pairActive[pairID],
			sim.Msg{Kind: msgServeJob, A: uint32(r.opts.Arena.Index(pos))})
		if err := r.quiesce(); err != nil {
			return nil, err
		}
		// Replacement-latency clock: a lost arrival opens a lapse on its
		// pair; a served one closes any lapse that healed without a
		// counted replacement (noteRestored settles the replaced ones).
		if r.served > servedBefore {
			r.pairDownAt[pairID] = -1
		} else {
			if r.pairDownAt[pairID] < 0 {
				r.pairDownAt[pairID] = i
			}
			if r.evidence && r.opts.Monitoring {
				// The customer complaint channel: the job's customer was
				// physically present and observed non-service, which a
				// Byzantine casualty cannot counterfeit away. The complaint
				// reaches the pair's watcher alongside the heartbeat wave
				// and is acted on in the check round — evidence of absent
				// served work, regardless of beacon presence. Gated on the
				// Byzantine model so every legacy episode's message
				// schedule stays bit-identical.
				watcher := r.pairActive[r.part.WatcherPair(pairID)]
				r.net.Inject(watcher, sim.Msg{Kind: msgEvidence, A: uint32(pairID)})
			}
		}
		if r.opts.Monitoring {
			if err := r.monitorRound(); err != nil {
				return nil, err
			}
		}
		if r.fatal != nil {
			return nil, r.fatal
		}
	}
	return &Result{
		Served:              r.served,
		Failures:            r.failures,
		MaxEnergy:           r.maxEnergy,
		Messages:            r.net.Delivered(),
		Replacements:        r.replacements,
		Searches:            r.searches,
		SearchFailures:      r.searchFailures,
		MonitorRescues:      r.monitorRescues,
		EvidenceRescues:     r.evidenceRescues,
		ReplaceLatencySum:   r.replaceLatencySum,
		ReplaceLatencyCount: r.replaceLatencyCount,
	}, nil
}

func (r *Runner) quiesce() error {
	err := r.net.Run(r.opts.MaxSteps)
	// Legacy episodes fold their single tally here (preserving execution
	// order exactly); sharded episodes already folded at every round
	// barrier, so this drains nothing — but runs unconditionally so the
	// totals the caller reads next are always current.
	r.foldTallies()
	return err
}

// monitorRound performs one heartbeat exchange followed by one check pass
// (the run-to-quiescence analogue of "send existing messages periodically;
// decide the neighbor is done after a timeout"). Both waves batch-inject one
// inline round message in arena-index order (identical to point enumeration
// order; a map iteration here would break run reproducibility by perturbing
// the delivery scheduler's RNG stream), written straight into each mailbox's
// cached injection slot by InjectMany.
func (r *Runner) monitorRound() error {
	r.net.InjectMany(r.allNodes, sim.Msg{Kind: msgHeartbeatRound})
	if err := r.quiesce(); err != nil {
		return err
	}
	r.net.InjectMany(r.allNodes, sim.Msg{Kind: msgCheckRound})
	return r.quiesce()
}

// MinCapacity and MinCapacityParallel (the capacity-search layer) live in
// search.go.
