package online

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/offline"
)

func mustRunner(t *testing.T, opts Options) *Runner {
	t.Helper()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Options{}); err == nil {
		t.Error("missing arena should fail")
	}
	if _, err := NewRunner(Options{Arena: grid.MustNew(4, 4), CubeSide: 2}); err == nil {
		t.Error("non-positive capacity should fail")
	}
	if _, err := NewRunner(Options{Arena: grid.MustNew(4, 4), CubeSide: 0, Capacity: 5}); err == nil {
		t.Error("cube side 0 should fail")
	}
}

func TestServeSingleJobAtActiveVertex(t *testing.T) {
	arena := grid.MustNew(4, 4)
	r := mustRunner(t, Options{Arena: arena, CubeSide: 4, Capacity: 10, Seed: 1})
	// The service (black) vertex of some pair.
	pos := r.Partition().Pairs()[0].ServicePos()
	res, err := r.Run(demand.NewSequence([]grid.Point{pos}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Served != 1 {
		t.Fatalf("result %+v", res)
	}
	if res.MaxEnergy != 1 { // no walk needed
		t.Errorf("max energy %v, want 1", res.MaxEnergy)
	}
}

func TestServeJobAtWhitePartnerCostsWalk(t *testing.T) {
	arena := grid.MustNew(4, 4)
	r := mustRunner(t, Options{Arena: arena, CubeSide: 4, Capacity: 10, Seed: 1})
	var white grid.Point
	found := false
	for _, pr := range r.Partition().Pairs() {
		if !pr.Single {
			white = pr.Cells[1]
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no full pair")
	}
	res, err := r.Run(demand.NewSequence([]grid.Point{white}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.MaxEnergy != 2 { // walk 1 + serve 1
		t.Fatalf("result %+v", res)
	}
}

func TestReplacementViaDiffusion(t *testing.T) {
	// Hammer one point with more jobs than one vehicle's capacity: the
	// active vehicle must exhaust and recruit idle vehicles via Phase I/II.
	arena := grid.MustNew(4, 4)
	capacity := 6.0
	r := mustRunner(t, Options{Arena: arena, CubeSide: 4, Capacity: capacity, Seed: 7})
	pos := r.Partition().Pairs()[0].ServicePos()
	jobs := make([]grid.Point, 20)
	for i := range jobs {
		jobs[i] = pos
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
	if res.Served != 20 {
		t.Errorf("served %d of 20", res.Served)
	}
	if res.Replacements < 3 {
		t.Errorf("expected several replacements, got %d", res.Replacements)
	}
	if res.MaxEnergy > capacity {
		t.Errorf("energy %v exceeded capacity %v", res.MaxEnergy, capacity)
	}
	if res.SearchFailures != 0 {
		t.Errorf("search failures: %d", res.SearchFailures)
	}
}

func TestCapacityExhaustionReportsFailures(t *testing.T) {
	// A 2x2 arena has 2 pairs = 4 vehicles; demand beyond total capacity
	// must fail rather than hang or over-serve.
	arena := grid.MustNew(2, 2)
	capacity := 4.0
	r := mustRunner(t, Options{Arena: arena, CubeSide: 2, Capacity: capacity, Seed: 3})
	pos := r.Partition().Pairs()[0].ServicePos()
	jobs := make([]grid.Point, 50)
	for i := range jobs {
		jobs[i] = pos
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("50 jobs cannot fit in 4 vehicles x capacity 4")
	}
	if res.Served == 0 {
		t.Error("some jobs should have been served before exhaustion")
	}
	if res.MaxEnergy > capacity {
		t.Errorf("energy %v exceeded capacity %v", res.MaxEnergy, capacity)
	}
}

func TestRunDeterminism(t *testing.T) {
	arena := grid.MustNew(6, 6)
	rng := rand.New(rand.NewSource(11))
	b, err := grid.NewBox(2, grid.P(0, 0), grid.P(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	m, err := demand.Uniform(rng, b, 60)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := demand.SequenceOf(m, demand.OrderShuffled, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		r := mustRunner(t, Options{Arena: arena, CubeSide: 3, Capacity: 12, Seed: 42, Monitoring: true})
		res, err := r.Run(seq)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b2 := run(), run()
	if a.Served != b2.Served || a.Messages != b2.Messages ||
		a.Replacements != b2.Replacements || a.MaxEnergy != b2.MaxEnergy {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b2)
	}
}

func TestArrivalOutsideArena(t *testing.T) {
	r := mustRunner(t, Options{Arena: grid.MustNew(4, 4), CubeSide: 2, Capacity: 5, Seed: 1})
	if _, err := r.Run(demand.NewSequence([]grid.Point{grid.P(99, 99)})); err == nil {
		t.Error("out-of-arena arrival should error")
	}
}

// TestTheorem142Bound is experiment E7's heart: with capacity
// W = (4*3^l + l) * omega_c the online strategy serves every job.
func TestTheorem142Bound(t *testing.T) {
	arena := grid.MustNew(8, 8)
	rng := rand.New(rand.NewSource(19))
	inner, err := grid.NewBox(2, grid.P(2, 2), grid.P(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		m, err := demand.Uniform(rng, inner, 100+rng.Int63n(150))
		if err != nil {
			t.Fatal(err)
		}
		char, err := offline.OmegaC(m, arena)
		if err != nil {
			t.Fatal(err)
		}
		l := 2
		w := float64(4*9+l) * math.Max(char.Omega, 1)
		seq, err := demand.SequenceOf(m, demand.OrderShuffled, rng)
		if err != nil {
			t.Fatal(err)
		}
		r := mustRunner(t, Options{
			Arena: arena, CubeSide: char.Side, Capacity: w, Seed: int64(trial),
		})
		res, err := r.Run(seq)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Errorf("trial %d: W=(4*3^l+l)*omega_c=%v insufficient: %v",
				trial, w, res.Failures[0])
		}
		if res.SearchFailures > 0 {
			t.Errorf("trial %d: %d search failures at theorem capacity",
				trial, res.SearchFailures)
		}
	}
}

func TestScenario2FailedInitiatorRescuedByMonitoring(t *testing.T) {
	arena := grid.MustNew(4, 4)
	// Capacity must exceed the cube diameter (6) plus the serve reserve, or
	// recruits from the far corner arrive exhausted — the l*omega move term
	// in Theorem 1.4.2's constant exists exactly for this.
	capacity := 12.0
	build := func(monitoring bool) (*Runner, grid.Point) {
		r := mustRunner(t, Options{
			Arena: arena, CubeSide: 4, Capacity: capacity, Seed: 5,
			Monitoring: monitoring,
			FailInitiate: map[grid.Point]bool{
				// Every vehicle fails to initiate; only monitoring saves us.
				grid.P(0, 0): true, grid.P(0, 1): true, grid.P(1, 0): true,
				grid.P(1, 1): true, grid.P(0, 2): true, grid.P(0, 3): true,
				grid.P(1, 2): true, grid.P(1, 3): true, grid.P(2, 0): true,
				grid.P(2, 1): true, grid.P(3, 0): true, grid.P(3, 1): true,
				grid.P(2, 2): true, grid.P(2, 3): true, grid.P(3, 2): true,
				grid.P(3, 3): true,
			},
		})
		return r, r.Partition().Pairs()[0].ServicePos()
	}
	jobs := func(pos grid.Point) *demand.Sequence {
		js := make([]grid.Point, 16)
		for i := range js {
			js[i] = pos
		}
		return demand.NewSequence(js)
	}

	r, pos := build(true)
	res, err := r.Run(jobs(pos))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("monitoring on: failures %v", res.Failures)
	}
	if res.MonitorRescues == 0 {
		t.Error("monitoring on: expected watcher-initiated rescues")
	}

	r, pos = build(false)
	res, err = r.Run(jobs(pos))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("monitoring off with failed initiators should drop jobs")
	}
}

func TestScenario3DeadVehicleRescuedByMonitoring(t *testing.T) {
	arena := grid.MustNew(4, 4)
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 4, Capacity: 10, Seed: 9, Monitoring: true,
	})
	pos := r.Partition().Pairs()[0].ServicePos()
	// Kill the pair's active vehicle right before arrival 3.
	r2 := mustRunner(t, Options{
		Arena: arena, CubeSide: 4, Capacity: 10, Seed: 9, Monitoring: true,
		DeadBeforeArrival: map[grid.Point]int{pos: 3},
	})
	jobs := make([]grid.Point, 8)
	for i := range jobs {
		jobs[i] = pos
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("baseline run failed: %v", res.Failures)
	}
	res2, err := r2.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	// The job arriving while the vehicle is dead is lost (arrival 3), but
	// monitoring must recruit a replacement so later jobs succeed.
	if len(res2.Failures) != 1 {
		t.Fatalf("expected exactly the in-gap job to fail, got %v", res2.Failures)
	}
	if res2.Served != 7 {
		t.Errorf("served %d of 8 with one dead vehicle", res2.Served)
	}
	if res2.MonitorRescues == 0 {
		t.Error("expected a monitor rescue for the dead vehicle")
	}
}

func TestDeadBeforeArrivalUnknownCell(t *testing.T) {
	r := mustRunner(t, Options{
		Arena: grid.MustNew(2, 2), CubeSide: 2, Capacity: 5, Seed: 1,
		DeadBeforeArrival: map[grid.Point]int{grid.P(9, 9): 0},
	})
	if _, err := r.Run(demand.NewSequence([]grid.Point{grid.P(0, 0)})); err == nil {
		t.Error("unknown dead cell should error")
	}
}

func TestMinCapacityBracketsTheoremBound(t *testing.T) {
	arena := grid.MustNew(6, 6)
	rng := rand.New(rand.NewSource(23))
	b, err := grid.NewBox(2, grid.P(1, 1), grid.P(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	m, err := demand.Uniform(rng, b, 120)
	if err != nil {
		t.Fatal(err)
	}
	char, err := offline.OmegaC(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := demand.SequenceOf(m, demand.OrderShuffled, rng)
	if err != nil {
		t.Fatal(err)
	}
	won, err := MinCapacity(seq, Options{Arena: arena, CubeSide: char.Side, Seed: 31}, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	theorem := float64(4*9+2) * math.Max(char.Omega, 1)
	if won > theorem*1.05 {
		t.Errorf("measured Won %v exceeds theorem bound %v", won, theorem)
	}
	if won < 2 {
		t.Errorf("Won %v below the trivial serve cost", won)
	}
}

func TestWorkStateString(t *testing.T) {
	for _, s := range []WorkState{Idle, Active, Done, Dead, WorkState(9)} {
		if s.String() == "" {
			t.Errorf("empty string for %d", int(s))
		}
	}
}

// TestRunnerSingleUse is the regression test for the latent reuse bug: a
// second Run without Reset used to silently continue from the consumed
// dead-event cursor and accumulated counters; now it is an explicit error.
func TestRunnerSingleUse(t *testing.T) {
	arena := grid.MustNew(4, 4)
	r := mustRunner(t, Options{Arena: arena, CubeSide: 4, Capacity: 10, Seed: 1})
	seq := demand.NewSequence([]grid.Point{r.Partition().Pairs()[0].ServicePos()})
	if _, err := r.Run(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(seq); !errors.Is(err, ErrRunnerUsed) {
		t.Fatalf("second Run: got %v, want ErrRunnerUsed", err)
	}
	// Reset re-arms it.
	if err := r.Reset(10, 1); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Served != 1 {
		t.Fatalf("post-reset run: %+v", res)
	}
}

// TestResetValidation rejects non-positive capacities, like NewRunner.
func TestResetValidation(t *testing.T) {
	r := mustRunner(t, Options{Arena: grid.MustNew(2, 2), CubeSide: 2, Capacity: 5, Seed: 1})
	if err := r.Reset(0, 1); err == nil {
		t.Error("capacity 0 should fail")
	}
	if err := r.Reset(-3, 1); err == nil {
		t.Error("negative capacity should fail")
	}
}

// TestResetDoesNotClobberPriorResult guards the aliasing hazard: a Result's
// failure list must survive the runner being reset and re-run.
func TestResetDoesNotClobberPriorResult(t *testing.T) {
	arena := grid.MustNew(2, 2)
	r := mustRunner(t, Options{Arena: arena, CubeSide: 2, Capacity: 4, Seed: 3})
	pos := r.Partition().Pairs()[0].ServicePos()
	jobs := make([]grid.Point, 50)
	for i := range jobs {
		jobs[i] = pos
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("overload run should fail")
	}
	nFail := len(res.Failures)
	first := res.Failures[0]
	if err := r.Reset(4, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(demand.NewSequence(jobs)); err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != nFail || res.Failures[0] != first {
		t.Error("reset/re-run mutated the previous Result's failure list")
	}
}

// TestSharedPartitionValidation pins the Options.Partition contract: the
// prebuilt geometry must match the arena and the requested cube side.
func TestSharedPartitionValidation(t *testing.T) {
	arena := grid.MustNew(4, 4)
	part, err := NewPartition(arena, 2)
	if err != nil {
		t.Fatal(err)
	}
	if part.Arena() != arena || part.CubeSide() != 2 {
		t.Fatalf("accessors: arena %p side %d", part.Arena(), part.CubeSide())
	}
	other := grid.MustNew(4, 4)
	if _, err := NewRunner(Options{Arena: other, Partition: part, Capacity: 5}); err == nil {
		t.Error("partition built for a different arena should fail")
	}
	if _, err := NewRunner(Options{Arena: arena, CubeSide: 4, Partition: part, Capacity: 5}); err == nil {
		t.Error("cube-side mismatch should fail")
	}
	// CubeSide 0 defers entirely to the partition.
	r, err := NewRunner(Options{Arena: arena, Partition: part, Capacity: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Partition() != part {
		t.Error("runner should adopt the shared partition")
	}
}
