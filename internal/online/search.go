package online

import (
	"errors"
	"math"
	"runtime"
	"sync"

	"repro/internal/demand"
)

// maxSearchCapacity bounds the exponential bracket; beyond it the instance
// is declared infeasible.
const maxSearchCapacity = 1e12

// prober is the warm-started feasibility oracle of the capacity searches:
// does the strategy serve the whole sequence at capacity w with no failed
// replacement searches? Each prober owns one long-lived Runner, built on its
// first probe and Reset — not rebuilt — for every probe after that, so the
// partition, vehicles, diffusion engines, and the simulator's link tables
// and ring buffers are constructed once per search (or once per worker).
// A prober is confined to one goroutine; concurrent probers share only the
// immutable Partition carried in base.Partition.
type prober struct {
	seq  *demand.Sequence
	base Options
	r    *Runner
}

func (p *prober) probe(w float64) (bool, error) {
	if p.r == nil {
		opts := p.base
		opts.Capacity = w
		r, err := NewRunner(opts)
		if err != nil {
			return false, err
		}
		p.r = r
	} else if err := p.r.Reset(w, p.base.Seed); err != nil {
		return false, err
	}
	res, err := p.r.Run(p.seq)
	if err != nil {
		return false, err
	}
	return res.OK() && res.SearchFailures == 0, nil
}

// sharePartition makes sure base carries a prebuilt Partition so every
// runner of a search reuses one geometry instead of rebuilding it per probe.
func sharePartition(base *Options) error {
	if base.Partition != nil {
		return nil
	}
	if base.Arena == nil {
		return errors.New("online: Arena is required")
	}
	part, err := NewPartition(base.Arena, base.CubeSide)
	if err != nil {
		return err
	}
	base.Partition = part
	return nil
}

// MinCapacity measures the empirical Won for a sequence: the smallest
// capacity (within tol, relative) for which the strategy serves every job.
// The bracket grows exponentially from lo until a run succeeds. All probes
// reuse one Runner (reset per probe) and one shared Partition.
func MinCapacity(seq *demand.Sequence, base Options, lo float64, tol float64) (float64, error) {
	if lo < serveCost {
		lo = serveCost
	}
	if err := sharePartition(&base); err != nil {
		return 0, err
	}
	p := &prober{seq: seq, base: base}
	run := p.probe
	hi := lo
	for {
		ok, err := run(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		hi *= 2
		if hi > maxSearchCapacity {
			return 0, errors.New("online: no feasible capacity below 1e12")
		}
	}
	if okLo, err := run(lo); err != nil {
		return 0, err
	} else if okLo {
		return lo, nil
	}
	for hi-lo > tol*math.Max(1, hi) {
		mid := (lo + hi) / 2
		ok, err := run(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// MinCapacityParallel is MinCapacity with the independent probes raced
// across a pool of base.SearchWorkers goroutines, each owning one
// long-lived Runner (and Network) that it resets per probe; all workers
// share one immutable Partition. Both phases are batched: the exponential
// bracket evaluates `workers` doublings at once, and the bisection replaces
// the midpoint probe with `workers` evenly spaced interior points, narrowing
// the bracket by a factor of workers+1 per round. The result is
// deterministic for a given worker count (batch results are gathered
// before any decision), though it may differ from the serial search by up
// to the tolerance, since both simply return a feasible point within tol
// of the infeasible boundary — pin SearchWorkers for machine-independent
// answers. SearchWorkers == 1 falls back to the serial search;
// SearchWorkers <= 0 uses runtime.NumCPU(). base.Tracer is ignored: probes
// run concurrently and a shared tracer would race.
func MinCapacityParallel(seq *demand.Sequence, base Options, lo, tol float64) (float64, error) {
	workers := base.SearchWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 {
		return MinCapacity(seq, base, lo, tol)
	}
	base.Tracer = nil
	if lo < serveCost {
		lo = serveCost
	}
	if err := sharePartition(&base); err != nil {
		return 0, err
	}
	// One prober per worker slot. Batches never exceed `workers` entries, so
	// candidate i of a batch always runs on prober i: a prober is touched by
	// one goroutine per batch, and wg.Wait orders batches, so each runner
	// stays effectively single-threaded across the whole search. Which
	// prober evaluates a capacity does not matter for the answer — every
	// probe is a fixed-seed run from reset state.
	probers := make([]*prober, workers)
	for i := range probers {
		probers[i] = &prober{seq: seq, base: base}
	}

	// probeBatch evaluates candidate capacities concurrently (both phases
	// build batches of at most `workers` entries). Errors are resolved in
	// candidate order so the returned error is deterministic.
	probeBatch := func(ws []float64) ([]bool, error) {
		oks := make([]bool, len(ws))
		errs := make([]error, len(ws))
		var wg sync.WaitGroup
		for i := range ws {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				oks[i], errs[i] = probers[i].probe(ws[i])
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return oks, nil
	}

	// Phase 1 — exponential bracket, `workers` doublings per batch:
	// find the smallest k with lo*2^k feasible.
	feasibleK := -1
	w := lo
	for k := 0; feasibleK < 0; {
		var batch []float64
		for len(batch) < workers && w <= maxSearchCapacity {
			batch = append(batch, w)
			w *= 2
		}
		if len(batch) == 0 {
			return 0, errors.New("online: no feasible capacity below 1e12")
		}
		oks, err := probeBatch(batch)
		if err != nil {
			return 0, err
		}
		for j, ok := range oks {
			if ok {
				feasibleK = k + j
				break
			}
		}
		k += len(batch)
	}
	if feasibleK == 0 {
		return lo, nil
	}
	curLo := lo * math.Pow(2, float64(feasibleK-1))
	curHi := lo * math.Pow(2, float64(feasibleK))

	// Phase 2 — parallel bisection: `workers` interior points per round.
	for curHi-curLo > tol*math.Max(1, curHi) {
		ws := make([]float64, workers)
		for j := range ws {
			ws[j] = curLo + (curHi-curLo)*float64(j+1)/float64(workers+1)
		}
		oks, err := probeBatch(ws)
		if err != nil {
			return 0, err
		}
		first := -1
		for j, ok := range oks {
			if ok {
				first = j
				break
			}
		}
		switch {
		case first < 0:
			curLo = ws[len(ws)-1]
		case first == 0:
			curHi = ws[0]
		default:
			curLo, curHi = ws[first-1], ws[first]
		}
	}
	return curHi, nil
}
