package online

import (
	"math"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

func hotPointSeq(n int) (*grid.Grid, *demand.Sequence) {
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, n)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	return arena, demand.NewSequence(jobs)
}

// TestMinCapacityParallelMatchesSerial checks that the parallel search lands
// within tolerance of the serial answer, across worker counts (including the
// fallback paths), and is deterministic for a fixed worker count. Run with
// -race this also exercises the worker pool for data races.
func TestMinCapacityParallelMatchesSerial(t *testing.T) {
	arena, seq := hotPointSeq(60)
	base := Options{Arena: arena, CubeSide: 8, Seed: 1}
	const tol = 0.05
	serial, err := MinCapacity(seq, base, 1, tol)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 7} {
		opts := base
		opts.SearchWorkers = workers
		got, err := MinCapacityParallel(seq, opts, 1, tol)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Both answers are feasible points within relative tol of the
		// infeasibility boundary, so they agree up to 2*tol.
		if math.Abs(got-serial) > 2*tol*math.Max(1, serial) {
			t.Errorf("workers=%d: parallel Won %v vs serial %v", workers, got, serial)
		}
		again, err := MinCapacityParallel(seq, opts, 1, tol)
		if err != nil {
			t.Fatal(err)
		}
		if got != again {
			t.Errorf("workers=%d: nondeterministic answer %v vs %v", workers, got, again)
		}
	}
}

// TestMinCapacityParallelLoFeasible covers the bracket's k=0 short-circuit:
// when the starting capacity already serves everything, lo itself comes
// back, as in the serial search.
func TestMinCapacityParallelLoFeasible(t *testing.T) {
	arena := grid.MustNew(4, 4)
	seq := demand.NewSequence([]grid.Point{grid.P(0, 0), grid.P(3, 3)})
	base := Options{Arena: arena, CubeSide: 2, Seed: 3, SearchWorkers: 4}
	got, err := MinCapacityParallel(seq, base, 50, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("feasible lo should come back unchanged, got %v", got)
	}
}

// TestMinCapacityParallelInfeasible checks the 1e12 cap error path with a
// demand no capacity can serve: the only vehicle on a 1-cell arena is dead
// before the first arrival and monitoring is off, so every probe fails.
func TestMinCapacityParallelInfeasible(t *testing.T) {
	arena := grid.MustNew(1, 1)
	jobs := []grid.Point{grid.P(0)}
	_, err := MinCapacityParallel(demand.NewSequence(jobs), Options{
		Arena: arena, CubeSide: 1, Seed: 1, SearchWorkers: 4,
		DeadBeforeArrival: map[grid.Point]int{grid.P(0): 0},
	}, 1, 0.05)
	if err == nil {
		t.Fatal("a permanently dead fleet must report infeasibility")
	}
}
