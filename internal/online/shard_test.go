package online

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

// The sealed-round sharded scheduler (Options.SimShards >= 1) defines its
// own deterministic delivery schedule, bit-identical for every shard count.
// On both canonical golden scenarios its pinned counters coincide with the
// legacy scheduler's: the observables (serves, total messages, searches,
// replacements, max energy) are schedule-insensitive there, so the sharded
// family inherits the historical goldens even though the interleavings
// differ. Any drift below means either the sealed-round schedule or the
// shard merge order changed.

func hotPointJobs() []grid.Point {
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	return jobs
}

func failureInjectionJobs() []grid.Point {
	rng := rand.New(rand.NewSource(42))
	jobs := make([]grid.Point, 80)
	for i := range jobs {
		jobs[i] = grid.P(rng.Intn(6), rng.Intn(6))
	}
	return jobs
}

func shardFailOpts(arena *grid.Grid, shards int) Options {
	return Options{
		Arena: arena, CubeSide: 6, Capacity: 20, Seed: 9, Monitoring: true,
		SimShards:         shards,
		FailInitiate:      map[grid.Point]bool{grid.P(0, 0): true, grid.P(3, 3): true},
		DeadBeforeArrival: map[grid.Point]int{grid.P(2, 2): 10},
		Longevity:         map[grid.Point]float64{grid.P(5, 5): 0.5, grid.P(1, 4): 0},
	}
}

// resultsEqual compares every field of two Results, including the failure
// lists entry by entry.
func resultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Served != b.Served || a.MaxEnergy != b.MaxEnergy || a.Messages != b.Messages ||
		a.Replacements != b.Replacements || a.Searches != b.Searches ||
		a.SearchFailures != b.SearchFailures || a.MonitorRescues != b.MonitorRescues ||
		a.EvidenceRescues != b.EvidenceRescues || a.ReplaceLatencySum != b.ReplaceLatencySum ||
		a.ReplaceLatencyCount != b.ReplaceLatencyCount {
		t.Fatalf("%s: results differ:\n a=%+v\n b=%+v", label, a, b)
	}
	if len(a.Failures) != len(b.Failures) {
		t.Fatalf("%s: %d failures vs %d", label, len(a.Failures), len(b.Failures))
	}
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			t.Fatalf("%s: failure %d: %+v vs %+v", label, i, a.Failures[i], b.Failures[i])
		}
	}
}

// TestShardedGoldenHotPoint pins the sealed-round schedule's counters on
// the hot-point scenario at shard counts 1/2/4/8 (the CI determinism gate's
// matrix): identical values at every count, coinciding with the legacy
// golden.
func TestShardedGoldenHotPoint(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := hotPointJobs()
	want := goldenCounters{
		served: 60, messages: 1310, replacements: 2, searches: 2,
		maxEnergy: 23,
	}
	for _, shards := range []int{1, 2, 4, 8} {
		r := mustRunner(t, Options{
			Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1, SimShards: shards,
		})
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, res, want)
	}
}

// TestShardedGoldenFailureInjection is the same pin on the scenario that
// exercises monitoring waves, fail-initiate vehicles, a mid-sequence death,
// and longevity breakdowns — the InjectMany and rescue paths under shards.
func TestShardedGoldenFailureInjection(t *testing.T) {
	arena := grid.MustNew(6, 6)
	jobs := failureInjectionJobs()
	want := goldenCounters{
		served: 80, messages: 7616, replacements: 1, searches: 1,
		monitorRescues: 1, maxEnergy: 11,
	}
	for _, shards := range []int{1, 2, 4, 8} {
		r := mustRunner(t, shardFailOpts(arena, shards))
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, res, want)
	}
}

// TestShardedFullResultInvariance compares complete Results — every
// counter and the failure list — across shard counts, on a capacity tight
// enough to produce failures (so failure-list merge order is exercised).
func TestShardedFullResultInvariance(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := hotPointJobs()
	run := func(shards int) *Result {
		r := mustRunner(t, Options{
			Arena: arena, CubeSide: 8, Capacity: 5, Seed: 3, SimShards: shards,
		})
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if len(ref.Failures) == 0 {
		t.Fatal("scenario produced no failures; failure merge order untested")
	}
	for _, shards := range []int{2, 4, 8} {
		resultsEqual(t, "shards", ref, run(shards))
	}
}

// TestShardedResetMatchesFresh extends the warm-start contract to sharded
// state: a reset sharded runner replays the golden schedule exactly, even
// after perturbing episodes at other capacities and seeds.
func TestShardedResetMatchesFresh(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := hotPointJobs()
	want := goldenCounters{
		served: 60, messages: 1310, replacements: 2, searches: 2,
		maxEnergy: 23,
	}
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1, SimShards: 4,
	})
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, res, want)
	for _, probe := range []struct {
		capacity float64
		seed     int64
	}{{7, 1}, {100, 5}, {24, 99}} {
		if err := r.Reset(probe.capacity, probe.seed); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(demand.NewSequence(jobs)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Reset(24, 1); err != nil {
		t.Fatal(err)
	}
	res, err = r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, res, want)
}

// TestShardedResetEpisodeFlipsScheduler pins ResetEpisode's scheduler
// switching: legacy → sharded → legacy on one pooled runner, each episode
// reproducing its family's golden counters (the legacy source must survive
// a sharded interlude untouched).
func TestShardedResetEpisodeFlipsScheduler(t *testing.T) {
	arena := grid.MustNew(6, 6)
	jobs := failureInjectionJobs()
	want := goldenCounters{
		served: 80, messages: 7616, replacements: 1, searches: 1,
		monitorRescues: 1, maxEnergy: 11,
	}
	r := mustRunner(t, shardFailOpts(arena, 0))
	for i, shards := range []int{0, 4, 0, 1, 8, 0} {
		if i > 0 {
			if err := r.ResetEpisode(shardFailOpts(arena, shards)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		checkGolden(t, res, want)
	}
}

// TestShardedGossipInvariance runs the gossip Phase I engine under shards:
// the alternative search protocol's schedule must be shard-count invariant
// too.
func TestShardedGossipInvariance(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := hotPointJobs()
	run := func(shards int) *Result {
		r := mustRunner(t, Options{
			Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1, SimShards: shards,
			Search: SearchGossip, GossipFanout: 3,
		})
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if ref.Served != 60 {
		t.Fatalf("gossip hot-point served %d, want 60", ref.Served)
	}
	for _, shards := range []int{2, 8} {
		resultsEqual(t, "gossip", ref, run(shards))
	}
}

// TestShardedTracerSequential pins that a traced sharded episode (forced
// sequential execution) produces the same result and a deterministic event
// stream equal across shard counts.
func TestShardedTracerSequential(t *testing.T) {
	arena := grid.MustNew(8, 8)
	jobs := hotPointJobs()
	run := func(shards int) ([]Event, *Result) {
		tr := &SliceTracer{}
		r := mustRunner(t, Options{
			Arena: arena, CubeSide: 8, Capacity: 24, Seed: 1, SimShards: shards,
			Tracer: tr,
		})
		res, err := r.Run(demand.NewSequence(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return tr.Events, res
	}
	refEvents, refRes := run(1)
	if len(refEvents) == 0 {
		t.Fatal("tracer saw no events")
	}
	for _, shards := range []int{2, 8} {
		events, res := run(shards)
		resultsEqual(t, "traced", refRes, res)
		if len(events) != len(refEvents) {
			t.Fatalf("shards=%d: %d events, want %d", shards, len(events), len(refEvents))
		}
		for i := range events {
			if events[i] != refEvents[i] {
				t.Fatalf("shards=%d: event %d = %+v, want %+v", shards, i, events[i], refEvents[i])
			}
		}
	}
}
