package online

import (
	"fmt"
	"io"

	"repro/internal/grid"
)

// EventKind labels a traced simulation event.
type EventKind int

// Trace event kinds.
const (
	// EventServe records one job processed.
	EventServe EventKind = iota + 1
	// EventDone records a vehicle exhausting its energy.
	EventDone
	// EventDead records a Chapter 4 breakdown.
	EventDead
	// EventSearch records the start of a Phase I replacement search.
	EventSearch
	// EventSearchFail records a Phase I search finding no candidate.
	EventSearchFail
	// EventMove records a Phase II relocation.
	EventMove
	// EventRescue records a monitor-initiated search (Section 3.2.5).
	EventRescue
	// EventFailure records an unserved job.
	EventFailure
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventServe:
		return "serve"
	case EventDone:
		return "done"
	case EventDead:
		return "dead"
	case EventSearch:
		return "search"
	case EventSearchFail:
		return "search-fail"
	case EventMove:
		return "move"
	case EventRescue:
		return "rescue"
	case EventFailure:
		return "failure"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one structured trace record.
type Event struct {
	// Arrival is the index of the arrival being processed when the event
	// fired.
	Arrival int
	Kind    EventKind
	// Vehicle is the home cell of the vehicle involved (its identity).
	Vehicle grid.Point
	// Pos is the event location (job position, move destination, ...).
	Pos grid.Point
	// Energy is the vehicle's cumulative energy use after the event.
	Energy float64
	// Detail is a short human-readable annotation.
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	s := fmt.Sprintf("[%4d] %-11s vehicle=%v pos=%v energy=%.1f",
		e.Arrival, e.Kind, e.Vehicle, e.Pos, e.Energy)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Tracer receives simulation events. Implementations must be fast; the
// runner calls them synchronously.
type Tracer interface {
	Emit(Event)
}

// SliceTracer accumulates events in memory.
type SliceTracer struct {
	Events []Event
}

var _ Tracer = (*SliceTracer)(nil)

// Emit implements Tracer.
func (s *SliceTracer) Emit(e Event) { s.Events = append(s.Events, e) }

// Count returns how many events of the given kind were recorded.
func (s *SliceTracer) Count(kind EventKind) int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// WriterTracer streams rendered events to an io.Writer.
type WriterTracer struct {
	W io.Writer
}

var _ Tracer = (*WriterTracer)(nil)

// Emit implements Tracer.
func (w *WriterTracer) Emit(e Event) {
	fmt.Fprintln(w.W, e.String())
}

// emit is the runner's internal hook (nil-safe).
func (r *Runner) emit(kind EventKind, vehicle, pos grid.Point, energy float64, detail string) {
	if r.opts.Tracer == nil {
		return
	}
	r.opts.Tracer.Emit(Event{
		Arrival: r.currentArrival,
		Kind:    kind,
		Vehicle: vehicle,
		Pos:     pos,
		Energy:  energy,
		Detail:  detail,
	})
}
