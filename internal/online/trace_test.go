package online

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

func TestTraceCapturesLifecycle(t *testing.T) {
	arena := grid.MustNew(4, 4)
	tracer := &SliceTracer{}
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 4, Capacity: 10, Seed: 7, Tracer: tracer,
	})
	pos := r.Partition().Pairs()[0].ServicePos()
	jobs := make([]grid.Point, 20)
	for i := range jobs {
		jobs[i] = pos
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
	if got := tracer.Count(EventServe); int64(got) != res.Served {
		t.Errorf("serve events %d != served %d", got, res.Served)
	}
	if got := tracer.Count(EventMove); int64(got) != res.Replacements {
		t.Errorf("move events %d != replacements %d", got, res.Replacements)
	}
	if got := tracer.Count(EventSearch); int64(got) != res.Searches {
		t.Errorf("search events %d != searches %d", got, res.Searches)
	}
	if tracer.Count(EventDone) == 0 {
		t.Error("expected done events")
	}
	// Events must carry increasing arrival indices.
	prev := -1
	for _, e := range tracer.Events {
		if e.Arrival < prev {
			t.Fatalf("arrival index regressed: %v after %d", e, prev)
		}
		prev = e.Arrival
	}
}

func TestTraceFailureEvents(t *testing.T) {
	arena := grid.MustNew(2, 2)
	tracer := &SliceTracer{}
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 2, Capacity: 3, Seed: 7, Tracer: tracer,
	})
	pos := r.Partition().Pairs()[0].ServicePos()
	jobs := make([]grid.Point, 40)
	for i := range jobs {
		jobs[i] = pos
	}
	res, err := r.Run(demand.NewSequence(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("overload should fail")
	}
	if got := tracer.Count(EventFailure); got != len(res.Failures) {
		t.Errorf("failure events %d != failures %d", got, len(res.Failures))
	}
}

func TestWriterTracerRendersLines(t *testing.T) {
	var buf bytes.Buffer
	tracer := &WriterTracer{W: &buf}
	arena := grid.MustNew(2, 2)
	r := mustRunner(t, Options{
		Arena: arena, CubeSide: 2, Capacity: 10, Seed: 1, Tracer: tracer,
	})
	pos := r.Partition().Pairs()[0].ServicePos()
	if _, err := r.Run(demand.NewSequence([]grid.Point{pos})); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "serve") || !strings.Contains(out, "vehicle=") {
		t.Errorf("unexpected trace output: %q", out)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventServe, EventDone, EventDead, EventSearch,
		EventSearchFail, EventMove, EventRescue, EventFailure, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for %d", int(k))
		}
	}
}
