package online

import (
	"fmt"

	"repro/internal/diffuse"
	"repro/internal/gossip"
	"repro/internal/grid"
	"repro/internal/sim"
)

// WorkState is the working state S1 of thesis Section 3.2.1, extended with
// the Dead state of Section 3.2.5 (a broken vehicle that can no longer
// process jobs but still relays messages).
type WorkState int

// Working states.
const (
	Idle WorkState = iota + 1
	Active
	Done
	Dead
)

// String implements fmt.Stringer.
func (s WorkState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Active:
		return "active"
	case Done:
		return "done"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("WorkState(%d)", int(s))
	}
}

// Message kinds owned by the online layer (range 16..31 of the sim.Msg kind
// space; 1..7 belongs to package diffuse, 8..15 to package gossip). Operand
// layout per kind:
//
//	msgServeJob       — A: arena index of the job position (the vehicle
//	                    decodes it through Arena.PointAt)
//	msgHeartbeatRound — no operands; tells an active vehicle to emit its
//	                    Existing beacon
//	msgExisting       — A: pair id; the Section 3.2.5 liveness beacon from
//	                    that pair's active vehicle to its watcher
//	msgCheckRound     — no operands; tells a watcher to act on heartbeats
//	                    missed this round
//	msgEvidence       — A: pair id; the customer complaint that the pair's
//	                    last job went unserved, delivered to the pair's
//	                    watcher. Unlike the forgeable Existing beacon this is
//	                    evidence of *absent served work*, which a Byzantine
//	                    casualty cannot counterfeit — the watcher rescues on
//	                    it even while beacons keep arriving.
const (
	msgServeJob uint8 = iota + 16
	msgHeartbeatRound
	msgExisting
	msgCheckRound
	msgEvidence
)

// moveOrder is the decoded Phase II payload: relocate to Dest and take over
// service of pair PairID. On the wire it is a diffuse.Payload (or
// gossip.Payload) whose A word is Dest's arena index and whose B word is
// PairID.
type moveOrder struct {
	Dest   grid.Point
	PairID int
}

// serveCost is the worst-case energy for a *uniform* vehicle to process one
// job: walk at most distance 1 to the partner vertex plus 1 unit of service
// (Section 3.2.2). Classed vehicles use reserveCost, which reduces to this
// constant at the default multipliers.
const serveCost = 2.0

// vehicle is one depot's vehicle: a sim.Process whose node id equals its
// home cell's arena index. Its position changes when it replaces a done
// vehicle; its network identity does not (the radio stays with the robot).
type vehicle struct {
	r    *Runner
	id   sim.NodeID
	home grid.Point

	pos    grid.Point
	state  WorkState
	used   float64
	pairID int // pair currently served (valid when Active) or home pair

	// t is the shard tally every counter/failure mutation of the current
	// delivery goes to, resolved from the executing shard at OnMessage
	// entry (tally 0, always, under the legacy scheduler). Callbacks the
	// Phase I engines invoke run synchronously inside OnMessage, so the
	// pointer is valid wherever vehicle code runs.
	t *shardTally

	// ds and gs are the two Phase I engines; Runner.gossip selects which one
	// is live for the episode (both are reset between episodes, so a pooled
	// runner can flip protocols per ResetEpisode).
	ds *diffuse.Engine
	gs *gossip.Engine
	// neighbors is the communication neighborhood resolved to node ids once
	// at construction (cell arena index = node id); the search engines read
	// it on every flood without re-deriving cell identity.
	neighbors []sim.NodeID

	// failInitiate simulates Section 3.2.5 scenario 2: on exhaustion the
	// vehicle silently fails to start its replacement search.
	failInitiate bool
	// longevity is the Chapter 4 breakdown fraction p_i: the vehicle dies
	// once used >= longevity * capacity. 1 means it never breaks.
	longevity float64
	// byzantine marks the FailureModel's lying casualties: once dead, the
	// vehicle keeps emitting Existing beacons as if it were healthy.
	byzantine bool
	// stepCost / jobCost / capMult are the densified VehicleClass
	// multipliers (all exactly 1.0 for the uniform fleet, which keeps the
	// classed arithmetic bit-identical to the historical constants).
	stepCost float64
	jobCost  float64
	capMult  float64
	// searchPair is the pair the in-flight search is recruiting for (the
	// vehicle may initiate on behalf of a watched pair, not only its own);
	// searchDest is where the recruit will be sent.
	searchPair int
	searchDest grid.Point

	heard map[int]bool // watcher state: pairs heard from this round
	// complaints is the watcher's evidence ledger: pairs accused by a
	// customer complaint (msgEvidence) this round. Beacon presence clears
	// nothing here — evidence outranks beacons.
	complaints map[int]bool
}

var _ sim.Process = (*vehicle)(nil)

// applyClass densifies the vehicle's fleet class into flat multipliers (the
// defaults when no fleet is configured). Called by NewRunner and
// ResetEpisode; the values are episode constants, so restoreInitialState
// leaves them alone.
func (v *vehicle) applyClass(f *Fleet, part *Partition) {
	v.stepCost, v.jobCost, v.capMult = 1, 1, 1
	if f == nil {
		return
	}
	c := f.classAt(part, v.home, part.PairAt(int64(v.id)))
	v.stepCost = c.stepCost()
	v.jobCost = c.jobCost()
	v.capMult = c.capMult()
}

// capacity is this vehicle's energy budget: the episode capacity scaled by
// its class multiplier.
func (v *vehicle) capacity() float64 { return v.r.opts.Capacity * v.capMult }

// reserveCost is the worst-case energy this vehicle needs for one more job:
// one lattice step plus one service at its class rates (= serveCost for the
// uniform fleet).
func (v *vehicle) reserveCost() float64 { return v.stepCost + v.jobCost }

func (v *vehicle) OnMessage(ctx *sim.Context, from sim.NodeID, msg sim.Msg) {
	v.t = &v.r.tallies[ctx.Shard()]
	// Exactly one Phase I engine is live per episode, so only its kinds can
	// be in flight — route to it alone.
	if v.r.gossip {
		if v.gs.Handle(ctx, from, msg) {
			return
		}
	} else if v.ds.Handle(ctx, from, msg) {
		return
	}
	switch msg.Kind {
	case msgServeJob:
		v.onServe(ctx, v.r.opts.Arena.PointAt(int64(msg.A)))
	case msgHeartbeatRound:
		v.onHeartbeat(ctx)
	case msgExisting:
		if v.heard == nil {
			v.heard = make(map[int]bool)
		}
		v.heard[int(msg.A)] = true
	case msgCheckRound:
		v.onCheck(ctx)
	case msgEvidence:
		if v.complaints == nil {
			v.complaints = make(map[int]bool)
		}
		v.complaints[int(msg.A)] = true
	default:
		v.r.failf(v.t, "vehicle %v: unexpected message kind %d", v.home, msg.Kind)
	}
}

// onServe processes one job arrival at pos (which is within this vehicle's
// pair, so at distance at most 1 from its position).
func (v *vehicle) onServe(ctx *sim.Context, pos grid.Point) {
	if v.state != Active {
		v.r.recordFailure(v.t, pos, fmt.Sprintf("vehicle %v in state %v", v.home, v.state))
		return
	}
	walk := float64(grid.Manhattan(v.pos, pos)) * v.stepCost
	cost := walk + v.jobCost
	if v.used+cost > v.capacity() {
		v.r.recordFailure(v.t, pos, fmt.Sprintf("vehicle %v out of energy (%.1f used)", v.home, v.used))
		return
	}
	v.used += cost
	v.pos = pos
	v.t.served++
	v.t.noteEnergy(v.used)
	v.r.emit(EventServe, v.home, pos, v.used, "")
	// Chapter 4 breakdown: the vehicle dies the moment a fraction p of its
	// capacity is spent. A dead vehicle cannot initiate its own
	// replacement — only the monitoring ring can catch this.
	if v.breaksNow() {
		v.state = Dead
		v.r.emit(EventDead, v.home, v.pos, v.used,
			fmt.Sprintf("longevity %.2f hit", v.longevity))
		return
	}
	// Exhaustion check: if the next job (worst case cost reserveCost) cannot
	// be served, the vehicle is done and must recruit a replacement now.
	if v.capacity()-v.used < v.reserveCost() {
		v.becomeDone(ctx)
	}
}

// breaksNow reports whether the Chapter 4 longevity threshold has been hit.
func (v *vehicle) breaksNow() bool {
	return v.longevity < 1 && v.used >= v.longevity*v.capacity()-1e-9
}

// untilBreak returns the energy this vehicle can still spend before its
// longevity threshold (its full budget when it never breaks).
func (v *vehicle) untilBreak() float64 {
	limit := v.capacity()
	if v.longevity < 1 {
		limit = v.longevity * v.capacity()
	}
	return limit - v.used
}

func (v *vehicle) becomeDone(ctx *sim.Context) {
	v.state = Done
	v.r.emit(EventDone, v.home, v.pos, v.used, "")
	if v.failInitiate {
		return // scenario 2: the monitoring ring must catch this
	}
	v.startReplacementSearch(ctx, v.pairID, v.pos)
}

// startReplacementSearch launches Phase I to recruit an idle vehicle for
// pair pairID, directing the recruit to dest.
func (v *vehicle) startReplacementSearch(ctx sim.Sender, pairID int, dest grid.Point) {
	if v.r.pendingReplace[pairID] {
		return
	}
	v.r.pendingReplace[pairID] = true
	v.searchPair = pairID
	v.t.searches++
	v.searchDest = dest
	v.r.emit(EventSearch, v.home, dest, v.used,
		fmt.Sprintf("for pair %d", pairID))
	if v.r.gossip {
		v.gs.StartSearch(ctx)
	} else {
		v.ds.StartSearch(ctx)
	}
}

func (v *vehicle) onSearchComplete(ctx sim.Sender, seq int, found bool) {
	pairID := v.searchPair
	if !found {
		v.r.pendingReplace[pairID] = false
		v.t.searchFailures++
		v.r.emit(EventSearchFail, v.home, v.searchDest, v.used,
			fmt.Sprintf("for pair %d", pairID))
		return
	}
	destIdx := uint32(v.r.opts.Arena.Index(v.searchDest))
	var err error
	if v.r.gossip {
		err = v.gs.ForwardPayload(ctx, seq, gossip.Payload{A: destIdx, B: uint32(pairID)})
	} else {
		err = v.ds.ForwardPayload(ctx, seq, diffuse.Payload{A: destIdx, B: uint32(pairID)})
	}
	if err != nil {
		v.r.failf(v.t, "vehicle %v: forward payload: %v", v.home, err)
	}
}

func (v *vehicle) onMoveOrder(ctx sim.Sender, order moveOrder) {
	if v.state != Idle {
		// The protocol guarantees candidates are idle at recruitment time;
		// a double recruit would be a bug, surface it.
		v.r.failf(v.t, "vehicle %v: move order while %v", v.home, v.state)
		return
	}
	walk := float64(grid.Manhattan(v.pos, order.Dest)) * v.stepCost
	if v.used+walk > v.capacity() {
		v.r.recordFailure(v.t, order.Dest,
			fmt.Sprintf("recruit %v cannot afford move of %v", v.home, walk))
		v.r.pendingReplace[order.PairID] = false
		return
	}
	v.used += walk
	v.t.noteEnergy(v.used)
	v.pos = order.Dest
	v.state = Active
	v.pairID = order.PairID
	v.r.pairActive[order.PairID] = v.id
	v.r.pendingReplace[order.PairID] = false
	v.t.replacements++
	v.r.noteRestored(v.t, order.PairID)
	v.r.emit(EventMove, v.home, order.Dest, v.used,
		fmt.Sprintf("takes over pair %d", order.PairID))
	if v.breaksNow() {
		v.state = Dead
		v.r.emit(EventDead, v.home, v.pos, v.used,
			fmt.Sprintf("longevity %.2f hit on arrival", v.longevity))
		return
	}
	// If the move itself nearly drained the recruit, chain a further
	// replacement immediately.
	if v.capacity()-v.used < v.reserveCost() {
		v.state = Done
		if !v.failInitiate {
			v.startReplacementSearch(ctx, v.pairID, v.pos)
		}
	}
}

// onHeartbeat emits the Existing beacon if this vehicle is the live active
// server of its pair (Section 3.2.5) — or a Byzantine casualty still
// registered for its pair, which beacons exactly as if it were healthy.
// Once a rescue installs a replacement the liar stops matching
// pairActive and falls silent, so the lie cannot outlive its unmasking.
func (v *vehicle) onHeartbeat(ctx *sim.Context) {
	lying := v.byzantine && v.state == Dead
	if (v.state != Active && !lying) || v.r.pairActive[v.pairID] != v.id {
		return
	}
	watcherPair := v.r.part.WatcherPair(v.pairID)
	watcher := v.r.pairActive[watcherPair]
	if watcher == v.id {
		return
	}
	ctx.Send(watcher, sim.Msg{Kind: msgExisting, A: uint32(v.pairID)})
}

// onCheck inspects the heartbeats and evidence gathered since the last round
// and starts replacement searches for watched pairs that are provably in
// trouble: silent pairs (the beacon timeout of Section 3.2.5) and pairs
// whose beacons kept arriving while a customer complaint proves no work was
// served — the Byzantine case, where beacon presence alone would let a
// lying casualty hold its pair hostage forever.
func (v *vehicle) onCheck(ctx *sim.Context) {
	if v.state != Active || v.r.pairActive[v.pairID] != v.id {
		clear(v.heard)
		clear(v.complaints)
		return
	}
	// The ring is "pair i is watched by pair next(i)": the partition's
	// precomputed inverse gives this watcher's single watched pair directly
	// (a one-pair cube watches itself; nothing to do).
	if watched := v.r.part.WatchedPair(v.pairID); watched != v.pairID &&
		!v.r.pendingReplace[watched] {
		switch {
		case !v.heard[watched]:
			// Watched pair went silent: recruit a replacement on its behalf,
			// directed at the pair's canonical service position.
			v.t.monitorRescues++
			v.r.emit(EventRescue, v.home, v.r.part.Pairs()[watched].ServicePos(), v.used,
				fmt.Sprintf("pair %d went silent", watched))
			v.startReplacementSearch(ctx, watched, v.r.part.Pairs()[watched].ServicePos())
		case v.complaints[watched]:
			// Beacons kept arriving but a job went unserved: evidence beats
			// the (possibly forged) beacon.
			v.t.evidenceRescues++
			v.r.emit(EventRescue, v.home, v.r.part.Pairs()[watched].ServicePos(), v.used,
				fmt.Sprintf("pair %d beaconed but served nothing", watched))
			v.startReplacementSearch(ctx, watched, v.r.part.Pairs()[watched].ServicePos())
		}
	}
	// Clear rather than drop the maps: the watcher re-fills them every
	// round, so reusing the buckets keeps steady-state monitoring
	// allocation-free.
	clear(v.heard)
	clear(v.complaints)
}
