package online

import (
	"fmt"

	"repro/internal/diffuse"
	"repro/internal/grid"
	"repro/internal/sim"
)

// WorkState is the working state S1 of thesis Section 3.2.1, extended with
// the Dead state of Section 3.2.5 (a broken vehicle that can no longer
// process jobs but still relays messages).
type WorkState int

// Working states.
const (
	Idle WorkState = iota + 1
	Active
	Done
	Dead
)

// String implements fmt.Stringer.
func (s WorkState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Active:
		return "active"
	case Done:
		return "done"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("WorkState(%d)", int(s))
	}
}

// Message kinds owned by the online layer (range 16..31 of the sim.Msg kind
// space; 1..15 belongs to package diffuse). Operand layout per kind:
//
//	msgServeJob       — A: arena index of the job position (the vehicle
//	                    decodes it through Arena.PointAt)
//	msgHeartbeatRound — no operands; tells an active vehicle to emit its
//	                    Existing beacon
//	msgExisting       — A: pair id; the Section 3.2.5 liveness beacon from
//	                    that pair's active vehicle to its watcher
//	msgCheckRound     — no operands; tells a watcher to act on heartbeats
//	                    missed this round
const (
	msgServeJob uint8 = iota + 16
	msgHeartbeatRound
	msgExisting
	msgCheckRound
)

// moveOrder is the decoded Phase II payload: relocate to Dest and take over
// service of pair PairID. On the wire it is a diffuse.Payload whose A word
// is Dest's arena index and whose B word is PairID.
type moveOrder struct {
	Dest   grid.Point
	PairID int
}

// serveCost is the worst-case energy to process one job: walk at most
// distance 1 to the partner vertex plus 1 unit of service (Section 3.2.2).
const serveCost = 2.0

// vehicle is one depot's vehicle: a sim.Process whose node id equals its
// home cell's arena index. Its position changes when it replaces a done
// vehicle; its network identity does not (the radio stays with the robot).
type vehicle struct {
	r    *Runner
	id   sim.NodeID
	home grid.Point

	pos    grid.Point
	state  WorkState
	used   float64
	pairID int // pair currently served (valid when Active) or home pair

	eng *diffuse.Engine
	// neighbors is the communication neighborhood resolved to node ids once
	// at construction (cell arena index = node id); the diffusion engine
	// reads it on every flood without re-deriving cell identity.
	neighbors []sim.NodeID

	// failInitiate simulates Section 3.2.5 scenario 2: on exhaustion the
	// vehicle silently fails to start its replacement search.
	failInitiate bool
	// longevity is the Chapter 4 breakdown fraction p_i: the vehicle dies
	// once used >= longevity * capacity. 1 means it never breaks.
	longevity float64
	// searchPair is the pair the in-flight search is recruiting for (the
	// vehicle may initiate on behalf of a watched pair, not only its own);
	// searchDest is where the recruit will be sent.
	searchPair int
	searchDest grid.Point

	heard map[int]bool // watcher state: pairs heard from this round
}

var _ sim.Process = (*vehicle)(nil)

func (v *vehicle) OnMessage(ctx *sim.Context, from sim.NodeID, msg sim.Msg) {
	if v.eng.Handle(ctx, from, msg) {
		return
	}
	switch msg.Kind {
	case msgServeJob:
		v.onServe(ctx, v.r.opts.Arena.PointAt(int64(msg.A)))
	case msgHeartbeatRound:
		v.onHeartbeat(ctx)
	case msgExisting:
		if v.heard == nil {
			v.heard = make(map[int]bool)
		}
		v.heard[int(msg.A)] = true
	case msgCheckRound:
		v.onCheck(ctx)
	default:
		v.r.failf("vehicle %v: unexpected message kind %d", v.home, msg.Kind)
	}
}

// onServe processes one job arrival at pos (which is within this vehicle's
// pair, so at distance at most 1 from its position).
func (v *vehicle) onServe(ctx *sim.Context, pos grid.Point) {
	if v.state != Active {
		v.r.recordFailure(pos, fmt.Sprintf("vehicle %v in state %v", v.home, v.state))
		return
	}
	walk := float64(grid.Manhattan(v.pos, pos))
	cost := walk + 1
	if v.used+cost > v.r.opts.Capacity {
		v.r.recordFailure(pos, fmt.Sprintf("vehicle %v out of energy (%.1f used)", v.home, v.used))
		return
	}
	v.used += cost
	v.pos = pos
	v.r.served++
	v.r.noteEnergy(v.used)
	v.r.emit(EventServe, v.home, pos, v.used, "")
	// Chapter 4 breakdown: the vehicle dies the moment a fraction p of its
	// capacity is spent. A dead vehicle cannot initiate its own
	// replacement — only the monitoring ring can catch this.
	if v.breaksNow() {
		v.state = Dead
		v.r.emit(EventDead, v.home, v.pos, v.used,
			fmt.Sprintf("longevity %.2f hit", v.longevity))
		return
	}
	// Exhaustion check: if the next job (worst case cost 2) cannot be
	// served, the vehicle is done and must recruit a replacement now.
	if v.r.opts.Capacity-v.used < serveCost {
		v.becomeDone(ctx)
	}
}

// breaksNow reports whether the Chapter 4 longevity threshold has been hit.
func (v *vehicle) breaksNow() bool {
	return v.longevity < 1 && v.used >= v.longevity*v.r.opts.Capacity-1e-9
}

// untilBreak returns the energy this vehicle can still spend before its
// longevity threshold (capacity when it never breaks).
func (v *vehicle) untilBreak() float64 {
	limit := v.r.opts.Capacity
	if v.longevity < 1 {
		limit = v.longevity * v.r.opts.Capacity
	}
	return limit - v.used
}

func (v *vehicle) becomeDone(ctx *sim.Context) {
	v.state = Done
	v.r.emit(EventDone, v.home, v.pos, v.used, "")
	if v.failInitiate {
		return // scenario 2: the monitoring ring must catch this
	}
	v.startReplacementSearch(ctx, v.pairID, v.pos)
}

// startReplacementSearch launches Phase I to recruit an idle vehicle for
// pair pairID, directing the recruit to dest.
func (v *vehicle) startReplacementSearch(ctx sim.Sender, pairID int, dest grid.Point) {
	if v.r.pendingReplace[pairID] {
		return
	}
	v.r.pendingReplace[pairID] = true
	v.searchPair = pairID
	v.r.searches++
	v.searchDest = dest
	v.r.emit(EventSearch, v.home, dest, v.used,
		fmt.Sprintf("for pair %d", pairID))
	v.eng.StartSearch(ctx)
}

func (v *vehicle) onSearchComplete(ctx sim.Sender, seq int, found bool) {
	pairID := v.searchPair
	if !found {
		v.r.pendingReplace[pairID] = false
		v.r.searchFailures++
		v.r.emit(EventSearchFail, v.home, v.searchDest, v.used,
			fmt.Sprintf("for pair %d", pairID))
		return
	}
	payload := diffuse.Payload{
		A: uint32(v.r.opts.Arena.Index(v.searchDest)),
		B: uint32(pairID),
	}
	if err := v.eng.ForwardPayload(ctx, seq, payload); err != nil {
		v.r.failf("vehicle %v: forward payload: %v", v.home, err)
	}
}

func (v *vehicle) onMoveOrder(ctx sim.Sender, order moveOrder) {
	if v.state != Idle {
		// The protocol guarantees candidates are idle at recruitment time;
		// a double recruit would be a bug, surface it.
		v.r.failf("vehicle %v: move order while %v", v.home, v.state)
		return
	}
	walk := float64(grid.Manhattan(v.pos, order.Dest))
	if v.used+walk > v.r.opts.Capacity {
		v.r.recordFailure(order.Dest,
			fmt.Sprintf("recruit %v cannot afford move of %v", v.home, walk))
		v.r.pendingReplace[order.PairID] = false
		return
	}
	v.used += walk
	v.r.noteEnergy(v.used)
	v.pos = order.Dest
	v.state = Active
	v.pairID = order.PairID
	v.r.pairActive[order.PairID] = v.id
	v.r.pendingReplace[order.PairID] = false
	v.r.replacements++
	v.r.emit(EventMove, v.home, order.Dest, v.used,
		fmt.Sprintf("takes over pair %d", order.PairID))
	if v.breaksNow() {
		v.state = Dead
		v.r.emit(EventDead, v.home, v.pos, v.used,
			fmt.Sprintf("longevity %.2f hit on arrival", v.longevity))
		return
	}
	// If the move itself nearly drained the recruit, chain a further
	// replacement immediately.
	if v.r.opts.Capacity-v.used < serveCost {
		v.state = Done
		if !v.failInitiate {
			v.startReplacementSearch(ctx, v.pairID, v.pos)
		}
	}
}

// onHeartbeat emits the Existing beacon if this vehicle is the live active
// server of its pair (Section 3.2.5).
func (v *vehicle) onHeartbeat(ctx *sim.Context) {
	if v.state != Active || v.r.pairActive[v.pairID] != v.id {
		return
	}
	watcherPair := v.r.part.WatcherPair(v.pairID)
	watcher := v.r.pairActive[watcherPair]
	if watcher == v.id {
		return
	}
	ctx.Send(watcher, sim.Msg{Kind: msgExisting, A: uint32(v.pairID)})
}

// onCheck inspects the heartbeats gathered since the last round and starts
// replacement searches for watched pairs that went silent.
func (v *vehicle) onCheck(ctx *sim.Context) {
	if v.state != Active || v.r.pairActive[v.pairID] != v.id {
		clear(v.heard)
		return
	}
	// Which pair does this vehicle watch? The ring is "pair i watches pair
	// next(i)" — invert by scanning this cube's pairs.
	for _, watched := range v.r.part.CubePairs(v.r.part.Pairs()[v.pairID].Cube) {
		if v.r.part.WatcherPair(watched) != v.pairID || watched == v.pairID {
			continue
		}
		if v.heard[watched] || v.r.pendingReplace[watched] {
			continue
		}
		// Watched pair went silent: recruit a replacement on its behalf,
		// directed at the pair's canonical service position.
		v.r.monitorRescues++
		v.r.emit(EventRescue, v.home, v.r.part.Pairs()[watched].ServicePos(), v.used,
			fmt.Sprintf("pair %d went silent", watched))
		v.startReplacementSearch(ctx, watched, v.r.part.Pairs()[watched].ServicePos())
	}
	// Clear rather than drop the map: the watcher re-fills it every round,
	// so reusing the buckets makes steady-state monitoring allocation-free.
	clear(v.heard)
}
