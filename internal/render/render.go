// Package render draws 2-D CMVRP state as ASCII heat maps: demand
// intensity, schedule activity, and partition overlays. It exists for the
// CLI tools and examples — a reproduction of a sensor-network thesis should
// let a human *see* the workloads it claims to serve.
package render

import (
	"fmt"
	"strings"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/offline"
)

// ramp maps intensity 0..1 to a density character.
var ramp = []byte(" .:-=+*#%@")

// cell returns the ramp character for value v scaled against max.
func cell(v, max int64) byte {
	if v <= 0 || max <= 0 {
		return ramp[0]
	}
	idx := int(float64(len(ramp)-1)*float64(v)/float64(max) + 0.5)
	if idx <= 0 {
		idx = 1 // nonzero demand always visible
	}
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	return ramp[idx]
}

// DemandHeatmap renders d(x) over the arena, one character per cell, rows
// printed with increasing y downward.
func DemandHeatmap(m *demand.Map, arena *grid.Grid) (string, error) {
	if m.Dim() != 2 || arena.Dim() != 2 {
		return "", fmt.Errorf("render: heatmap is 2-D only (got dim %d)", m.Dim())
	}
	max := m.Max()
	var b strings.Builder
	for y := 0; y < arena.Size(1); y++ {
		for x := 0; x < arena.Size(0); x++ {
			b.WriteByte(cell(m.At(grid.P(x, y)), max))
		}
		b.WriteByte('\n')
	}
	b.WriteString(legend(max))
	return b.String(), nil
}

// ScheduleMap renders a verified offline schedule: '.' idle vehicle, 'o'
// serves at home, '>' moved away to help, 'X' both.
func ScheduleMap(sched *offline.Schedule, arena *grid.Grid) (string, error) {
	if arena.Dim() != 2 {
		return "", fmt.Errorf("render: schedule map is 2-D only")
	}
	marks := make(map[grid.Point]byte)
	for _, pl := range sched.Plans {
		switch {
		case pl.ServeHome > 0 && pl.Moved:
			marks[pl.Home] = 'X'
		case pl.Moved:
			marks[pl.Home] = '>'
		case pl.ServeHome > 0:
			marks[pl.Home] = 'o'
		}
	}
	var b strings.Builder
	for y := 0; y < arena.Size(1); y++ {
		for x := 0; x < arena.Size(0); x++ {
			if c, ok := marks[grid.P(x, y)]; ok {
				b.WriteByte(c)
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("legend: o serves at home, > moved to help, X both, . idle\n")
	return b.String(), nil
}

func legend(max int64) string {
	return fmt.Sprintf("legend: ' '=0 .. '@'=%d jobs\n", max)
}
