package render

import (
	"strings"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/offline"
)

func TestDemandHeatmap(t *testing.T) {
	arena := grid.MustNew(8, 4)
	m := demand.NewMap(2)
	if err := m.Add(grid.P(0, 0), 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(grid.P(7, 3), 1); err != nil {
		t.Fatal(err)
	}
	out, err := DemandHeatmap(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 4 rows + legend
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0][0] != '@' {
		t.Errorf("hottest cell should render '@', got %q", lines[0][0])
	}
	if lines[3][7] == ' ' {
		t.Error("nonzero demand must be visible")
	}
	if lines[1][3] != ' ' {
		t.Error("zero demand should be blank")
	}
	if !strings.Contains(lines[4], "legend") {
		t.Error("missing legend")
	}
}

func TestDemandHeatmapDimCheck(t *testing.T) {
	if _, err := DemandHeatmap(demand.NewMap(1), grid.MustNew(4)); err == nil {
		t.Error("1-D should fail")
	}
}

func TestScheduleMap(t *testing.T) {
	arena := grid.MustNew(4, 4)
	sched := &offline.Schedule{Plans: []offline.VehiclePlan{
		{Home: grid.P(0, 0), ServeHome: 3},
		{Home: grid.P(1, 0), Moved: true, Dest: grid.P(0, 0), ServeDest: 2},
		{Home: grid.P(2, 0), ServeHome: 1, Moved: true, Dest: grid.P(0, 0), ServeDest: 1},
	}}
	out, err := ScheduleMap(sched, arena)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	if lines[0][0] != 'o' || lines[0][1] != '>' || lines[0][2] != 'X' {
		t.Errorf("row 0 = %q, want o>X.", lines[0])
	}
	if lines[1][0] != '.' {
		t.Error("inactive cells should be '.'")
	}
}

func TestScheduleMapDimCheck(t *testing.T) {
	if _, err := ScheduleMap(&offline.Schedule{}, grid.MustNew(4)); err == nil {
		t.Error("1-D should fail")
	}
}

func TestEndToEndRealSchedule(t *testing.T) {
	arena := grid.MustNew(16, 16)
	m, err := demand.PointMass(2, grid.P(8, 8), 200)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := offline.BuildSchedule(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := DemandHeatmap(m, arena)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := ScheduleMap(sched, arena)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hm, "@") {
		t.Error("heatmap missing hotspot")
	}
	if !strings.ContainsAny(sm, "o>X") {
		t.Error("schedule map shows no activity")
	}
}
