package sim

import "testing"

// relay forwards a hop counter around a ring.
type relay struct{ next NodeID }

func (r relay) OnMessage(ctx *Context, _ NodeID, msg Msg) {
	if msg.Kind != kindToken || msg.A == 0 {
		return
	}
	ctx.Send(r.next, token(msg.A-1))
}

// BenchmarkMessageThroughput measures raw simulator delivery rate on a
// 64-node ring carrying long-lived token chains.
func BenchmarkMessageThroughput(b *testing.B) {
	const ring = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := NewNetwork(1)
		for j := 0; j < ring; j++ {
			if err := n.Add(NodeID(j), relay{next: NodeID((j + 1) % ring)}); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < 8; j++ {
			n.Inject(NodeID(j*7%ring), token(1000))
		}
		if err := n.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageThroughputWarm is BenchmarkMessageThroughput on one
// long-lived network reset per iteration: the steady state of the online
// layer's warm-started capacity probes. Messages are inline Msg values in
// retained ring buffers, so a warm episode performs zero allocations.
func BenchmarkMessageThroughputWarm(b *testing.B) {
	const ring = 64
	n := NewNetwork(1)
	for j := 0; j < ring; j++ {
		if err := n.Add(NodeID(j), relay{next: NodeID((j + 1) % ring)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Reset(1)
		for j := 0; j < 8; j++ {
			n.Inject(NodeID(j*7%ring), token(1000))
		}
		if err := n.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
}
