package sim

import (
	"runtime"
	"testing"
)

// relay forwards a hop counter around a ring.
type relay struct{ next NodeID }

func (r relay) OnMessage(ctx *Context, _ NodeID, msg Msg) {
	if msg.Kind != kindToken || msg.A == 0 {
		return
	}
	ctx.Send(r.next, token(msg.A-1))
}

// BenchmarkMessageThroughput measures raw simulator delivery rate on a
// 64-node ring carrying long-lived token chains.
func BenchmarkMessageThroughput(b *testing.B) {
	const ring = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := NewNetwork(1)
		for j := 0; j < ring; j++ {
			if err := n.Add(NodeID(j), relay{next: NodeID((j + 1) % ring)}); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < 8; j++ {
			n.Inject(NodeID(j*7%ring), token(1000))
		}
		if err := n.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFlood is floodProc without the logging: decaying branching token
// floods across a torus, the wide-round workload where sharding has
// parallelism to harvest (a ring token chain delivers one message per
// sealed round — the sharded scheduler's worst case; a flood keeps dozens
// of cells active per round). B counts fork generations; capping it keeps
// the episode size bounded (uncapped, the fork recurrence is exponential).
type benchFlood struct {
	id   NodeID
	nbrs []NodeID
}

func (p *benchFlood) OnMessage(ctx *Context, _ NodeID, msg Msg) {
	if msg.Kind != kindToken || msg.A == 0 {
		return
	}
	k := int(msg.A+uint32(p.id)) % len(p.nbrs)
	ctx.Send(p.nbrs[k], token(msg.A-1))
	if msg.A%3 == 0 && msg.B < 2 {
		ctx.Send(p.nbrs[(k+1)%len(p.nbrs)], Msg{Kind: kindToken, A: msg.A / 2, B: msg.B + 1})
	}
}

func buildBenchFlood(b *testing.B, w, h int, seed int64) *Network {
	b.Helper()
	n := NewNetwork(seed)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := NodeID(y*w + x)
			nbrs := []NodeID{
				NodeID(y*w + (x+1)%w),
				NodeID(y*w + (x+w-1)%w),
				NodeID(((y+1)%h)*w + x),
				NodeID(((y+h-1)%h)*w + x),
			}
			if err := n.Add(id, &benchFlood{id: id, nbrs: nbrs}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return n
}

// benchmarkSharded runs warm flood episodes on a 64×64 torus under the
// given shard config; shards=0 is the legacy scheduler on the identical
// workload (note its schedule differs — same protocol, different
// deterministic interleaving).
func benchmarkSharded(b *testing.B, shards int, parallel bool) {
	n := buildBenchFlood(b, 64, 64, 1)
	if shards > 0 {
		if err := n.SetShards(shards, parallel); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Reset(1)
		for j := 0; j < 64; j++ {
			n.Inject(NodeID(j*67%4096), token(uint32(60+j)))
		}
		if err := n.Run(5_000_000); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n.Delivered()), "deliveries/episode")
}

// BenchmarkShardedFloodWarm compares the legacy scheduler against the
// sealed-round scheduler at increasing shard counts on a wide flood.
// The shards=1 row is the sealed-round engine's intrinsic overhead; the
// parallel rows only beat it on multi-core hosts.
func BenchmarkShardedFloodWarm(b *testing.B) {
	b.Run("legacy", func(b *testing.B) { benchmarkSharded(b, 0, false) })
	b.Run("shards=1", func(b *testing.B) { benchmarkSharded(b, 1, false) })
	b.Run("shards=2", func(b *testing.B) { benchmarkSharded(b, 2, true) })
	b.Run("shards=4", func(b *testing.B) { benchmarkSharded(b, 4, true) })
	b.Run("shards=8", func(b *testing.B) { benchmarkSharded(b, 8, true) })
}

// BenchmarkShardedRingWarm is BenchmarkMessageThroughputWarm's exact
// workload on the sealed-round scheduler at shards=1 — the honest
// worst-case overhead row: eight token chains mean eight deliveries per
// round, so the per-round barrier cost is amortized over almost nothing.
func BenchmarkShardedRingWarm(b *testing.B) {
	const ring = 64
	n := NewNetwork(1)
	for j := 0; j < ring; j++ {
		if err := n.Add(NodeID(j), relay{next: NodeID((j + 1) % ring)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := n.SetShards(1, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Reset(1)
		for j := 0; j < 8; j++ {
			n.Inject(NodeID(j*7%ring), token(1000))
		}
		if err := n.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedRoundBarrier isolates the sealed-round engine's per-round
// coordination cost with almost no delivery work to amortize it: one
// self-looping cell per shard, so every Step is one full round of S trivial
// deliveries and ns/op is dominated by the round machinery. Sequential rows
// cost two plain method loops. Parallel rows cross the persistent worker
// pool's two barriers per round (formerly 2×S goroutine spawns plus two
// WaitGroup cycles) — but the pool sizes itself to min(shards, GOMAXPROCS),
// so on a single-core host the plain "par" rows run caller-only with no
// crossings at all; the "par@p4" rows pin GOMAXPROCS=4 first, forcing a
// real cross-goroutine barrier on any host.
func BenchmarkShardedRoundBarrier(b *testing.B) {
	bench := func(shards, procs int, parallel bool) func(*testing.B) {
		return func(b *testing.B) {
			if procs > 0 {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			}
			n := NewNetwork(1)
			for j := 0; j < shards; j++ {
				if err := n.Add(NodeID(j), loopProc{}); err != nil {
					b.Fatal(err)
				}
			}
			if err := n.SetShards(shards, parallel); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < shards; j++ {
				n.Inject(NodeID(j), text(uint32(j)))
			}
			if _, err := n.Step(); err != nil { // absorb cold-path allocation
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Step(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("shards=1/seq", bench(1, 0, false))
	b.Run("shards=2/seq", bench(2, 0, false))
	b.Run("shards=2/par", bench(2, 0, true))
	b.Run("shards=4/par", bench(4, 0, true))
	b.Run("shards=8/par", bench(8, 0, true))
	b.Run("shards=2/par@p4", bench(2, 4, true))
	b.Run("shards=4/par@p4", bench(4, 4, true))
	b.Run("shards=8/par@p4", bench(8, 4, true))
}

// BenchmarkMessageThroughputWarm is BenchmarkMessageThroughput on one
// long-lived network reset per iteration: the steady state of the online
// layer's warm-started capacity probes. Messages are inline Msg values in
// retained ring buffers, so a warm episode performs zero allocations.
func BenchmarkMessageThroughputWarm(b *testing.B) {
	const ring = 64
	n := NewNetwork(1)
	for j := 0; j < ring; j++ {
		if err := n.Add(NodeID(j), relay{next: NodeID((j + 1) % ring)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Reset(1)
		for j := 0; j < 8; j++ {
			n.Inject(NodeID(j*7%ring), token(1000))
		}
		if err := n.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
}
