package sim

import (
	"errors"
	"testing"
)

// deliveryRecord is one observed delivery: destination, sender, message.
type deliveryRecord struct {
	to, from NodeID
	msg      Msg
}

// recordingRelay logs every delivery it receives, then relays tokens onward,
// so two networks' full delivery schedules can be compared event by event.
type recordingRelay struct {
	log  *[]deliveryRecord
	next NodeID
}

func (r recordingRelay) OnMessage(ctx *Context, from NodeID, msg Msg) {
	*r.log = append(*r.log, deliveryRecord{to: ctx.Self(), from: from, msg: msg})
	if msg.Kind == kindToken && msg.A > 0 {
		ctx.Send(r.next, token(msg.A-1))
	}
}

// buildRecordedRing makes a 16-node relay ring whose deliveries append to
// log, with mixed traffic: several concurrent token chains (multi-link ready
// lists, randomized picks) that die off at different times, leaving a single
// long chain at the end (singleton ready list — Run's burst path).
func buildRecordedRing(t *testing.T, log *[]deliveryRecord) *Network {
	t.Helper()
	const ring = 16
	n := NewNetwork(11)
	for j := 0; j < ring; j++ {
		if err := n.Add(NodeID(j), recordingRelay{log: log, next: NodeID((j + 1) % ring)}); err != nil {
			t.Fatal(err)
		}
	}
	for j, hops := range []uint32{5, 40, 12, 300} {
		n.Inject(NodeID(j*5%ring), token(hops))
	}
	return n
}

// TestRunMatchesStepByStep pins the burst-delivery invariant: Run's
// singleton-ready fast path consumes exactly the RNG draws and produces
// exactly the delivery schedule of stepping one message at a time. The whole
// golden-trace suite rests on this equivalence.
func TestRunMatchesStepByStep(t *testing.T) {
	var runLog, stepLog []deliveryRecord
	nr := buildRecordedRing(t, &runLog)
	ns := buildRecordedRing(t, &stepLog)

	if err := nr.Run(10_000); err != nil {
		t.Fatal(err)
	}
	for {
		progressed, err := ns.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			break
		}
	}

	if len(runLog) != len(stepLog) {
		t.Fatalf("Run delivered %d messages, Step loop %d", len(runLog), len(stepLog))
	}
	for i := range runLog {
		if runLog[i] != stepLog[i] {
			t.Fatalf("schedules diverge at delivery %d: Run=%+v Step=%+v",
				i, runLog[i], stepLog[i])
		}
	}
	if nr.Delivered() != ns.Delivered() {
		t.Errorf("delivered %d (Run) vs %d (Step)", nr.Delivered(), ns.Delivered())
	}

	// The step budget must count burst deliveries too: a budget smaller than
	// the schedule stops after exactly that many deliveries.
	var cappedLog []deliveryRecord
	nc := buildRecordedRing(t, &cappedLog)
	const budget = 37
	if err := nc.Run(budget); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
	if len(cappedLog) != budget {
		t.Fatalf("budget %d but %d deliveries happened", budget, len(cappedLog))
	}
	for i := range cappedLog {
		if cappedLog[i] != runLog[i] {
			t.Fatalf("capped schedule diverges at delivery %d", i)
		}
	}
}

// TestWarmDeliveryAllocationFree is the CI alloc guard for the sim layer:
// once buffers are sized, a warm reset + full episode (injection, burst
// drains, randomized picks) performs zero allocations — no boxing, no ring
// growth, no ready-list growth.
func TestWarmDeliveryAllocationFree(t *testing.T) {
	const ring = 32
	n := NewNetwork(9)
	for j := 0; j < ring; j++ {
		if err := n.Add(NodeID(j), relay{next: NodeID((j + 1) % ring)}); err != nil {
			t.Fatal(err)
		}
	}
	drive := func() {
		// Operand 1000 would have boxed under the interface{} scheme (only
		// ints < 256 are interned); inline messages make the point moot.
		for j := 0; j < 8; j++ {
			n.Inject(NodeID(j*7%ring), token(1000))
		}
		if err := n.Run(100_000); err != nil {
			t.Fatal(err)
		}
	}
	drive() // size buffers cold
	allocs := testing.AllocsPerRun(5, func() {
		n.Reset(9)
		drive()
	})
	if allocs != 0 {
		t.Errorf("warm delivery allocated %.1f objects/run, want 0", allocs)
	}
}

// FuzzLinkQueue drives the inline-slot ring buffer against a naive slice
// model through arbitrary push/pop/drain interleavings, checking FIFO
// contents, counts, and wrap/grow behavior.
func FuzzLinkQueue(f *testing.F) {
	f.Add([]byte{0, 0, 0, 2, 0, 2, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 3, 0, 0, 2, 0})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 0, 0, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q linkQueue
		var model []Msg
		next := uint32(0)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // push (biased so queues actually fill, grow, and wrap)
				m := Msg{Kind: kindToken, A: next, B: next * 3, C: ^next, D: 7}
				next++
				q.push(m)
				model = append(model, m)
			case 2: // pop one, as Step does
				if len(model) > 0 {
					got, want := q.pop(), model[0]
					model = model[1:]
					if got != want {
						t.Fatalf("pop = %+v, want %+v", got, want)
					}
				}
			case 3: // burst-drain the whole run, as Run's singleton path does
				for len(model) > 0 {
					got, want := q.pop(), model[0]
					model = model[1:]
					if got != want {
						t.Fatalf("burst pop = %+v, want %+v", got, want)
					}
				}
			}
			if int(q.count) != len(model) {
				t.Fatalf("count = %d, model has %d", q.count, len(model))
			}
			if len(q.buf) > 0 && len(q.buf)&(len(q.buf)-1) != 0 {
				t.Fatalf("buffer length %d is not a power of two", len(q.buf))
			}
		}
		for i := range model {
			if got := q.pop(); got != model[i] {
				t.Fatalf("final drain at %d: got %+v, want %+v", i, got, model[i])
			}
		}
		if q.count != 0 {
			t.Fatalf("count = %d after full drain", q.count)
		}
	})
}
