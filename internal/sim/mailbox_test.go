package sim

import "testing"

// TestReadyListExactUnderDrainRefill is the regression test for the ready-
// list maintenance bug class of the map-keyed simulator (stale entries after
// a queue drained under a different ready slot): a link that repeatedly
// drains and refills must occupy exactly one ready slot while nonempty and
// none while empty.
func TestReadyListExactUnderDrainRefill(t *testing.T) {
	n := NewNetwork(17)
	a, b := &silentProc{}, &silentProc{}
	if err := n.Add(0, a); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(1, b); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 10; cycle++ {
		// Refill two links, drain them fully, repeat. Each transition
		// empty->nonempty must add exactly one ready entry and each drain
		// must remove exactly that entry.
		for k := 0; k < 3; k++ {
			n.Inject(0, token(uint32(cycle*10+k)))
			n.Inject(1, token(uint32(cycle*10+k)))
		}
		if got := len(n.ready); got != 2 {
			t.Fatalf("cycle %d: ready has %d entries, want 2", cycle, got)
		}
		if err := n.Run(1000); err != nil {
			t.Fatal(err)
		}
		if got := len(n.ready); got != 0 {
			t.Fatalf("cycle %d: %d stale ready entries after drain", cycle, got)
		}
		if n.Pending() != 0 {
			t.Fatalf("cycle %d: pending %d after drain", cycle, n.Pending())
		}
	}
	if len(a.got) != 30 || len(b.got) != 30 {
		t.Fatalf("delivered %d/%d messages, want 30/30", len(a.got), len(b.got))
	}
}

// reEnqueuer sends one message back onto the very link being drained,
// exercising the drain-then-refill-within-OnMessage path (the queue empties,
// leaves the ready list, and re-enters it during the same Step).
type reEnqueuer struct{ budget int }

func (r *reEnqueuer) OnMessage(ctx *Context, from NodeID, msg Msg) {
	if r.budget > 0 {
		r.budget--
		ctx.Send(ctx.Self(), text(0))
	}
}

func TestDrainRefillWithinStep(t *testing.T) {
	n := NewNetwork(3)
	p := &reEnqueuer{budget: 25}
	if err := n.Add(0, p); err != nil {
		t.Fatal(err)
	}
	n.Inject(0, text(0))
	if err := n.Run(1000); err != nil {
		t.Fatal(err)
	}
	if n.Delivered() != 26 {
		t.Fatalf("delivered %d, want 26", n.Delivered())
	}
	if len(n.ready) != 0 || n.Pending() != 0 {
		t.Fatalf("ready=%d pending=%d after quiescence", len(n.ready), n.Pending())
	}
}

// badSender fires one message to an invalid (negative) node id.
type badSender struct{}

func (badSender) OnMessage(ctx *Context, _ NodeID, _ Msg) {
	ctx.Send(-5, text(0))
}

// TestBadSendSurfacesAtStepBudget checks that a send to an invalid node id
// can never be silently dropped: even when the step budget is exhausted
// with an empty ready list, Run must report the bad send instead of
// declaring quiescence.
func TestBadSendSurfacesAtStepBudget(t *testing.T) {
	n := NewNetwork(1)
	if err := n.Add(0, badSender{}); err != nil {
		t.Fatal(err)
	}
	n.Inject(0, text(0))
	// Budget of exactly 1: the only delivery triggers the bad send and
	// drains the ready list in the same step.
	if err := n.Run(1); err == nil {
		t.Fatal("exhausted budget with a dropped send must error, not quiesce")
	}
	// And with budget to spare the next Step reports it too.
	n2 := NewNetwork(1)
	if err := n2.Add(0, badSender{}); err != nil {
		t.Fatal(err)
	}
	n2.Inject(0, text(0))
	if err := n2.Run(100); err == nil {
		t.Fatal("bad send must surface on the following step")
	}
}

// TestRingBufferWrap pushes enough traffic through one link to force the
// ring buffer to wrap and grow several times while preserving FIFO order.
func TestRingBufferWrap(t *testing.T) {
	n := NewNetwork(8)
	sink := &silentProc{}
	if err := n.Add(0, sink); err != nil {
		t.Fatal(err)
	}
	next := uint32(0)
	for round := 0; round < 5; round++ {
		// Uneven push/drain phases force head to wander through the buffer.
		for k := 0; k < 3+round*5; k++ {
			n.Inject(0, token(next))
			next++
		}
		for k := 0; k < 2; k++ {
			if _, err := n.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := n.Run(10_000); err != nil {
		t.Fatal(err)
	}
	for i, got := range sink.got {
		if got.A != uint32(i) {
			t.Fatalf("FIFO violated at %d: got %v", i, got)
		}
	}
	if len(sink.got) != int(next) {
		t.Fatalf("delivered %d of %d", len(sink.got), next)
	}
}
