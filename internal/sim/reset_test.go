package sim

import (
	"errors"
	"testing"
)

// TestResetIdenticalToFresh pins the reuse contract: a reset network runs
// bit-for-bit identically to a freshly built one with the same seed.
func TestResetIdenticalToFresh(t *testing.T) {
	build := func() (*Network, []*chainProc) {
		n := NewNetwork(3)
		const hops = 50
		procs := make([]*chainProc, hops)
		for i := 0; i < hops; i++ {
			next := NodeID(i + 1)
			if i == hops-1 {
				next = None
			}
			procs[i] = &chainProc{next: next}
			if err := n.Add(NodeID(i), procs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return n, procs
	}
	drive := func(n *Network) int64 {
		n.Inject(0, token(50))
		if err := n.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return n.Delivered()
	}
	fresh, _ := build()
	want := drive(fresh)

	n, _ := build()
	if got := drive(n); got != want {
		t.Fatalf("first run delivered %d, want %d", got, want)
	}
	for i := 0; i < 3; i++ {
		n.Reset(3)
		if n.Delivered() != 0 || n.Sent() != 0 || n.Pending() != 0 {
			t.Fatalf("reset %d left counters: delivered=%d sent=%d pending=%d",
				i, n.Delivered(), n.Sent(), n.Pending())
		}
		if got := drive(n); got != want {
			t.Fatalf("reset run %d delivered %d, want %d", i, got, want)
		}
	}
}

// TestResetMidFlight drops pending messages: a network reset while messages
// are still queued comes back clean and reusable.
func TestResetMidFlight(t *testing.T) {
	n := NewNetwork(1)
	sink := &silentProc{}
	if err := n.Add(0, sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		n.Inject(0, token(uint32(i)))
	}
	// Deliver only a few, leaving the rest in flight.
	for i := 0; i < 5; i++ {
		if _, err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if n.Pending() == 0 {
		t.Fatal("test needs pending messages before reset")
	}
	n.Reset(1)
	if n.Pending() != 0 || n.Delivered() != 0 || n.Sent() != 0 {
		t.Fatalf("reset left state: pending=%d delivered=%d sent=%d",
			n.Pending(), n.Delivered(), n.Sent())
	}
	// The dropped messages must never arrive; new traffic flows normally.
	sink.got = nil
	n.Inject(0, text(777))
	if err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(sink.got) != 1 || sink.got[0] != text(777) {
		t.Fatalf("post-reset delivery got %v", sink.got)
	}
}

// TestResetAfterStepLimit recovers from a livelocked run: the spinning
// traffic is discarded and the network serves fresh traffic again.
func TestResetAfterStepLimit(t *testing.T) {
	n := NewNetwork(5)
	if err := n.Add(1, loopProc{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(2, &silentProc{}); err != nil {
		t.Fatal(err)
	}
	n.Inject(1, text(1))
	if err := n.Run(100); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
	n.Reset(5)
	if n.Pending() != 0 {
		t.Fatalf("reset left %d pending messages", n.Pending())
	}
	n.Inject(2, text(2))
	if err := n.Run(100); err != nil {
		t.Fatalf("post-reset run: %v", err)
	}
	if n.Delivered() != 1 {
		t.Errorf("delivered %d, want 1", n.Delivered())
	}
}

// TestResetAfterBadSend clears the latched send error.
func TestResetAfterBadSend(t *testing.T) {
	n := NewNetwork(7)
	if err := n.Add(0, &silentProc{}); err != nil {
		t.Fatal(err)
	}
	n.Inject(None, text(0))
	if _, err := n.Step(); err == nil {
		t.Fatal("bad send must surface on Step")
	}
	n.Reset(7)
	n.Inject(0, text(1))
	if err := n.Run(100); err != nil {
		t.Fatalf("post-reset run: %v", err)
	}
	if n.Delivered() != 1 {
		t.Errorf("delivered %d, want 1", n.Delivered())
	}
}

// TestResetReusesStorage locks the zero-alloc promise: after a first run has
// sized the link tables and ring buffers, reset + identical re-run performs
// no allocations in the sim layer.
func TestResetReusesStorage(t *testing.T) {
	const ring = 16
	n := NewNetwork(1)
	for j := 0; j < ring; j++ {
		if err := n.Add(NodeID(j), relay{next: NodeID((j + 1) % ring)}); err != nil {
			t.Fatal(err)
		}
	}
	drive := func() {
		for j := 0; j < 4; j++ {
			n.Inject(NodeID(j*5%ring), token(100))
		}
		if err := n.Run(10_000); err != nil {
			t.Fatal(err)
		}
	}
	drive() // size all buffers
	allocs := testing.AllocsPerRun(10, func() {
		n.Reset(1)
		drive()
	})
	// Messages are inline values in retained ring buffers, so a warm episode
	// is allocation-free.
	if allocs > 0 {
		t.Errorf("warm reset+run allocated %.1f objects/run, want 0", allocs)
	}
}
