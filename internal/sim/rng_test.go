package sim

import (
	"math/rand"
	"testing"
)

// TestIntnMatchesMathRand pins the scheduler's inlined draw against the real
// math/rand.(*Rand).Intn: same values from the same number of source draws,
// across power-of-two bounds (mask path), small odd bounds (cached
// rejection threshold + fastmod path), and bounds that exercise the
// rejection loop's cache invalidation as k changes between calls.
func TestIntnMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 20080527} {
		// Cold network: draws go through the seeded source (fastOK false).
		// Reset network: draws go through the captured in-struct generator.
		// Both must match the reference stream exactly.
		cold := NewNetwork(seed)
		warm := NewNetwork(seed)
		warm.Reset(seed)
		if !warm.fastOK {
			t.Logf("seed %d: generator capture unavailable; warm network exercises the fallback path", seed)
		}
		ref := rand.New(rand.NewSource(seed))
		refW := rand.New(rand.NewSource(seed))
		// Sweep k in a pattern that alternates between bounds so the
		// single-entry (modK, modMaxv, modM) cache is both hit and replaced.
		ks := []int{1, 3, 2, 3, 5, 7, 7, 7, 6, 100, 6, 64, 63, 1000, 999, 3}
		for round := 0; round < 200; round++ {
			for _, k := range ks {
				if got, want := cold.intn(k), ref.Intn(k); got != want {
					t.Fatalf("seed %d round %d: cold intn(%d) = %d, want %d",
						seed, round, k, got, want)
				}
				if got, want := warm.intn(k), refW.Intn(k); got != want {
					t.Fatalf("seed %d round %d: warm intn(%d) = %d, want %d",
						seed, round, k, got, want)
				}
			}
		}
	}
}

// TestReseedMatchesSeed pins the snapshot-copy reseed: a network reset via
// the pristine-state copy must produce the identical draw stream to one
// reseeded through rand's Seed, including after switching seeds (which
// invalidates the snapshot) and switching back.
func TestReseedMatchesSeed(t *testing.T) {
	n := NewNetwork(9)
	stream := func(seed int64) []int {
		n.Reset(seed)
		out := make([]int, 50)
		for i := range out {
			out[i] = n.intn(5)
		}
		return out
	}
	want9 := stream(9) // first Reset(9): Seed path + snapshot
	got9 := stream(9)  // snapshot-copy path
	want3 := stream(3) // seed switch: Seed path again
	got9b := stream(9) // back to 9: Seed path (snapshot was replaced)
	got3 := stream(3)  // and 3 again
	for i := range want9 {
		if got9[i] != want9[i] || got9b[i] != want9[i] {
			t.Fatalf("draw %d: copy-reseed diverged from Seed for seed 9", i)
		}
		if got3[i] != want3[i] {
			t.Fatalf("draw %d: copy-reseed diverged from Seed for seed 3", i)
		}
	}
}

// TestSeedByCopyVerified documents the expectation that the init-time probe
// accepts the current runtime's generator; if a Go release changes the
// source's internals such that state copy stops working, this test flags the
// silent fallback so the optimization can be revisited rather than quietly
// shelved.
func TestSeedByCopyVerified(t *testing.T) {
	if !seedByCopy {
		t.Log("seed-by-copy disabled: reflect state copy failed verification; Reset falls back to Seed")
	}
}
