package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sync/atomic"
)

// Sharded sealed-round scheduler.
//
// The legacy scheduler (Run in sim.go) draws one value per delivery from ONE
// seeded stream, bounded by the live global ready-list length. That schedule
// is inherently sequential: the bound of draw t+1 depends on what delivery
// t's handler enqueued, so no parallel execution can reproduce it bit for
// bit. Sharding therefore defines a SECOND deterministic schedule family
// whose defining property is the opposite one: the schedule is a pure
// function of (seed, topology, protocol) and is bit-for-bit identical for
// EVERY shard count >= 1, parallel or sequential — which is what lets CI
// diff runs at shards 1/2/4/8 and gate on byte equality.
//
// The construction pushes the determinism-by-ordering discipline of the
// sweep layer down into one episode:
//
//   - Time advances in conservative rounds. Every message sent during round
//     r (by a handler) is sealed at the round barrier and becomes
//     deliverable in round r+1 — uniformly, whether or not sender and
//     receiver share a shard, so shard boundaries cannot be observed.
//   - The unit of scheduling is the CELL (node), not the physical shard:
//     each cell delivers its sealed messages using its own RNG stream,
//     derived from the episode seed and the cell id (the "shard index" of
//     the determinism contract is the finest one — a per-physical-shard
//     stream would make the schedule depend on the shard count). Within a
//     cell's turn the pick discipline mirrors the legacy scheduler: a ready
//     set of nonempty links, one draw per pick while more than one link is
//     ready, swap-remove on drain. The ready set is ordered by sender id,
//     never by link-table slot order, so the draw-to-link mapping cannot
//     depend on link creation order (which DOES vary with the shard count:
//     intra-shard links are created mid-round, cross-shard ones at the
//     barrier).
//   - Physical shards own contiguous arena-index stripes of cells and
//     process them in ascending order. Cross-shard sends travel through
//     single-writer crossbar queues drained at the barrier in shard order;
//     because stripes are contiguous and ascending, concatenating crossbar
//     queues in shard order IS global sender-cell order, so link creation
//     and per-link FIFO order are shard-count-invariant without sorting.
//   - Handlers run concurrently across shards (when parallel execution is
//     enabled), so they may communicate only through messages and
//     shard-confined state. Hosts that keep shared blackboards (the online
//     layer's pair tables) buffer writes per shard and apply them in the
//     round barrier hook (SetBarrierHook), in shard order — the same
//     canonical merge.
//
// Everything delivered within one round was sealed before the round began,
// so no handler outcome can depend on the relative execution order of two
// cells in the same round — which is exactly why parallel and sequential
// execution, and every stripe partition, produce identical results.

// xmsg is one crossbar entry: a message in flight between shards, carrying
// its full logical address. Appended by the sending shard during the
// delivery phase, drained by the owning shard at the barrier.
type xmsg struct {
	msg      Msg
	from, to NodeID
}

// shard owns one contiguous stripe of cells: their mailboxes, ready
// scratch, crossbar output queues, and counters. All fields are confined to
// the shard's worker during the delivery phase and to the coordinator
// between phases.
type shard struct {
	id     int32
	lo, hi int32 // owned cell range [lo, hi)
	net    *Network
	ctx    Context

	// active is the sorted list of owned cells holding sealed messages this
	// round; next collects the cells that turn pending during the round (by
	// intra-shard sends) and at the barrier (by crossbar arrivals). The two
	// swap at the barrier. Outside Run, injections append to active
	// directly.
	active []NodeID
	next   []NodeID
	// touched lists the links that received unsealed messages this round;
	// the barrier promotes their counts to sealed. Arena entries never
	// move, so the pointers need no repair machinery.
	touched []*linkQueue
	// out[d] is the crossbar queue toward shard d (out[id] is unused:
	// intra-shard sends push straight into the destination ring, which is
	// owned by this shard anyway).
	out [][]xmsg
	// ready is the per-cell pick scratch: link slots with sealed messages,
	// ordered by sender id.
	ready []int32

	// delivered / sent are per-round deltas, folded into the network totals
	// at each barrier by the coordinator.
	delivered int64
	sent      int64
	// bad is the first bad send latched this round (shard-local; the
	// coordinator adopts the first one in shard order, which — cells being
	// processed in ascending order within ascending stripes — is the first
	// one in canonical cell order).
	bad error
	// hadActive records whether the shard entered the current round with a
	// nonempty active list; mergeRound diffs it against the post-swap state
	// to keep shardNet.activeShards incremental.
	hadActive bool
}

// shardNet is the sharded-mode extension of a Network.
type shardNet struct {
	shards   []shard
	stripe   int32 // cells per stripe (last shard may own fewer)
	parallel bool
	hook     func()
	// pool is the persistent worker pool driving parallel rounds (see
	// worker.go); nil in sequential mode.
	pool *shardWorkers
	// activeShards counts shards whose active list is nonempty — maintained
	// incrementally (shardInject on a 0→1 cell transition, mergeRound on a
	// round's empty↔nonempty flips, buildShards from scratch) so the
	// quiescence check per round is one load, not an O(S) scan. Atomic
	// because mergeRound updates it from worker goroutines in parallel mode.
	activeShards atomic.Int32
	// cellRNG is the per-cell stream state (splitmix64), indexed by NodeID
	// and derived from (episode seed, cell id) at Reset.
	cellRNG []uint64
	// builtFor is the node-table length the stripes were computed for;
	// registering more nodes re-stripes lazily at the next Run.
	builtFor int
	seed     int64
}

// ErrShardsPending is returned by SetShards when the network still holds
// undelivered messages: the legacy and sharded engines store pending
// traffic differently, so the mode may only change while quiescent.
var ErrShardsPending = errors.New("sim: SetShards requires a quiescent network (pending messages exist)")

// SetShards selects the scheduler. shards <= 0 restores the legacy
// single-stream scheduler (the default). shards >= 1 switches to the
// sealed-round sharded scheduler documented above, partitioning the cells
// into that many contiguous stripes; results are bit-for-bit identical for
// every shard count, so the value is purely a parallelism knob. parallel
// enables concurrent shard execution via a persistent worker pool sized to
// min(shards, GOMAXPROCS) (see worker.go); sequential execution produces
// identical results and is forced automatically when shards == 1. The network must be quiescent, and the
// RNG state follows the CURRENT seed (pass the same seed to Reset to
// restart the episode under the new mode).
func (n *Network) SetShards(shards int, parallel bool) error {
	if n.sent != n.delivered {
		return ErrShardsPending
	}
	if shards <= 0 {
		if n.sh != nil {
			n.sh.stopWorkers()
			n.sh = nil
			// Sharded Resets leave the legacy source untouched; restore the
			// state a legacy Reset(curSeed) would have produced.
			n.reseed(n.curSeed)
		}
		return nil
	}
	par := parallel && shards > 1
	if sn := n.sh; sn != nil && len(sn.shards) == shards {
		// Same stripe count: keep every stripe table, crossbar queue, and —
		// when the mode allows — the parked worker pool, instead of
		// rebuilding the scheduler. The online layer reselects the scheduler
		// every episode, so this path must match a fresh build observably:
		// the barrier hook is dropped and the per-cell streams re-derive
		// from the current seed, exactly as a new shardNet would.
		sn.hook = nil
		sn.seed = n.curSeed
		sn.seedCells(0, sn.builtFor)
		sn.setParallel(n, par)
		return nil
	}
	if n.sh != nil {
		// Reshard: the pool is sized one worker per stripe.
		n.sh.stopWorkers()
	}
	n.sh = &shardNet{seed: n.curSeed}
	n.buildShards(shards)
	n.sh.setParallel(n, par)
	return nil
}

// setParallel selects the execution mode, starting the persistent worker
// pool on a sequential→parallel flip and retiring it on the reverse one.
func (sn *shardNet) setParallel(n *Network, par bool) {
	sn.parallel = par
	if par && sn.pool == nil {
		sn.pool = newShardWorkers(n, len(sn.shards))
	} else if !par {
		sn.stopWorkers()
	}
}

// stopWorkers retires the worker pool (idempotent; no-op when sequential).
func (sn *shardNet) stopWorkers() {
	if sn.pool != nil {
		sn.pool.stop()
		sn.pool = nil
	}
}

// Shards reports the configured shard count (0 = legacy scheduler).
func (n *Network) Shards() int {
	if n.sh == nil {
		return 0
	}
	return len(n.sh.shards)
}

// SetBarrierHook registers f to run on the coordinator goroutine at every
// round barrier of the sharded scheduler, after all crossbar traffic has
// been merged and before the next round begins. Hosts use it to apply
// shard-buffered writes to shared state in canonical order. It is ignored
// by the legacy scheduler.
func (n *Network) SetBarrierHook(f func()) {
	if n.sh != nil {
		n.sh.hook = f
	}
}

// buildShards (re)computes the stripe partition for the current node count,
// preserving ring contents and pending flags: it derives each shard's
// active list by scanning the nodes, so it is safe to call between Runs
// even with sealed traffic waiting.
func (n *Network) buildShards(count int) {
	sn := n.sh
	ncells := len(n.nodes)
	stripe := 1
	if count > 0 {
		stripe = (ncells + count - 1) / count
	}
	if stripe < 1 {
		stripe = 1
	}
	sn.stripe = int32(stripe)
	if cap(sn.shards) < count {
		sn.shards = make([]shard, count)
	}
	sn.shards = sn.shards[:count]
	for i := range sn.shards {
		s := &sn.shards[i]
		lo := i * stripe
		hi := min(lo+stripe, ncells)
		if lo > ncells {
			lo, hi = ncells, ncells
		}
		*s = shard{
			id: int32(i), lo: int32(lo), hi: int32(hi), net: n,
			active: s.active[:0], next: s.next[:0],
			touched: s.touched[:0], ready: s.ready[:0], out: s.out,
		}
		s.ctx = Context{net: n, shard: s}
		if cap(s.out) < count {
			s.out = make([][]xmsg, count)
		}
		s.out = s.out[:count]
		for d := range s.out {
			s.out[d] = s.out[d][:0]
		}
	}
	active := int32(0)
	for i := range sn.shards {
		s := &sn.shards[i]
		for c := s.lo; c < s.hi; c++ {
			if n.nodes[c].pend {
				s.active = append(s.active, NodeID(c))
			}
		}
		if len(s.active) > 0 {
			active++
		}
	}
	sn.activeShards.Store(active)
	if len(sn.cellRNG) < ncells {
		sn.cellRNG = make([]uint64, ncells)
	}
	// A fresh shardNet seeds every cell; a mid-life re-stripe (nodes added
	// between Runs) seeds only the new ones — existing cells keep their
	// stream positions, and the trigger (node-table length) is shard-count
	// independent, so determinism across shard counts is preserved.
	sn.seedCells(sn.builtFor, ncells)
	sn.builtFor = ncells
}

// seedCells derives the stream state of cells [from, to) from (seed, cell
// id): the splitmix64 finalizer over seed + (cell+1)*golden, so streams are
// decorrelated across cells and across seeds while staying a pure function
// of the pair — the seed-derivation half of the shard determinism contract.
func (sn *shardNet) seedCells(from, to int) {
	base := uint64(sn.seed)
	for c := from; c < to; c++ {
		sn.cellRNG[c] = mix64(base + (uint64(c)+1)*0x9E3779B97F4A7C15)
	}
}

// mix64 is the splitmix64 output function: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// nextCell advances one cell stream (splitmix64: golden-ratio counter plus
// the mix). One state word per cell keeps a million-cell arena's RNG in
// 8 MB, where mirroring the legacy 607-word lagged-Fibonacci state per cell
// would cost 5 KB each.
func nextCell(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	return mix64(*state)
}

// cellIntn draws uniformly from [0, k) off one cell stream using Lemire's
// unbiased multiply-shift (the widening multiply maps a 64-bit draw to the
// range; the rare low-product rejection removes the bias exactly).
func cellIntn(state *uint64, k int) int {
	x := nextCell(state)
	hi, lo := bits.Mul64(x, uint64(k))
	if lo < uint64(k) {
		t := -uint64(k) % uint64(k)
		for lo < t {
			x = nextCell(state)
			hi, lo = bits.Mul64(x, uint64(k))
		}
	}
	return int(hi)
}

// owner maps a cell to its stripe's shard.
func (sn *shardNet) owner(id NodeID) *shard {
	return &sn.shards[int(id)/int(sn.stripe)]
}

// shardReset clears all sharded-mode runtime state and re-derives the
// per-cell streams for the new seed. Per-link sealed counts and per-node
// pending flags are cleared by Reset's ring sweep; this handles the shard
// structs. Storage — stripe tables, crossbar queues, scratch — is retained,
// so a warm sharded reset allocates nothing.
func (n *Network) shardReset(seed int64) {
	sn := n.sh
	for i := range sn.shards {
		s := &sn.shards[i]
		s.active = s.active[:0]
		s.next = s.next[:0]
		s.touched = s.touched[:0]
		for d := range s.out {
			s.out[d] = s.out[d][:0]
		}
		s.delivered, s.sent = 0, 0
		s.bad = nil
		s.hadActive = false
	}
	sn.activeShards.Store(0)
	sn.seed = seed
	sn.seedCells(0, sn.builtFor)
}

// shardInject enqueues an external event: straight into the destination
// ring, sealed immediately (deliverable in the first round of the next
// Run). Injections happen on the coordinator goroutine between Runs, so
// they may touch any shard's active list directly. Uses the same cached
// injection slot as the legacy path, so full-arena waves skip the scan.
func (n *Network) shardInject(to NodeID, msg Msg) {
	if n.sh.builtFor != len(n.nodes) {
		// Nodes registered since the last (re)build: re-stripe before the
		// owner lookup below indexes the stale partition.
		n.buildShards(len(n.sh.shards))
	}
	mb := &n.nodes[to]
	q := mb.injectQ
	if q == nil {
		_, q = n.queueFor(to, None)
		mb.injectQ = q
	}
	q.push(msg)
	q.sealed++
	if !mb.pend {
		mb.pend = true
		sh := n.sh.owner(to)
		if len(sh.active) == 0 {
			n.sh.activeShards.Add(1)
		}
		sh.active = append(sh.active, to)
	}
	n.sent++
}

// send routes one handler-originated message during the delivery phase:
// same-shard destinations push straight into the destination ring
// (unsealed — deliverable next round), cross-shard ones enter the crossbar
// queue toward the owner. Unknown destinations latch the shard's first bad
// send, adopted by the coordinator in shard order.
func (s *shard) send(from, to NodeID, msg Msg) {
	n := s.net
	if !n.known(to) {
		if s.bad == nil {
			if to < 0 {
				s.bad = fmt.Errorf("sim: message to invalid node %d", to)
			} else {
				s.bad = fmt.Errorf("sim: message to unknown node %d", to)
			}
		}
		return
	}
	s.sent++
	d := n.sh.owner(to)
	if d != s {
		d2 := d.id
		s.out[d2] = append(s.out[d2], xmsg{msg: msg, from: from, to: to})
		return
	}
	s.push(from, to, msg)
}

// push appends an unsealed message onto the (to, from) ring, recording the
// link's first arrival of the round and the cell's pending transition.
func (s *shard) push(from, to NodeID, msg Msg) {
	n := s.net
	_, q := n.queueFor(to, from)
	if q.count == q.sealed {
		s.touched = append(s.touched, q)
	}
	q.push(msg)
	mb := &n.nodes[to]
	if !mb.pend {
		mb.pend = true
		s.next = append(s.next, to)
	}
}

// playRound delivers every sealed message owned by this shard: cells in
// ascending order, each cell's inbox by its own stream. Runs on the shard's
// worker goroutine in parallel mode.
func (s *shard) playRound() {
	s.hadActive = len(s.active) > 0
	slices.Sort(s.active)
	n := s.net
	for _, c := range s.active {
		n.nodes[c].pend = false
	}
	for _, c := range s.active {
		s.playCell(c)
	}
	s.active = s.active[:0]
}

// playCell drains cell c's sealed messages. The ready set is built in
// sender-id order (see the package comment: slot order is shard-count
// dependent, sender order is not) and then evolves by the legacy pick
// discipline — draw while more than one link is ready, swap-remove on
// drain. Messages arriving mid-turn raise count above sealed and are left
// for the next round.
func (s *shard) playCell(c NodeID) {
	n := s.net
	mb := &n.nodes[c]
	ready := s.ready[:0]
	// The scan walks the node's slot table; the sender-order insertion sort
	// compares q.from through entries the sealed scan just pulled into
	// cache. The slice header is taken before any delivery, so mid-turn
	// first-contact appends (which touch mb.linkQs, not this backing)
	// cannot shift the scanned range.
	qs := mb.linkQs
	for i := range qs {
		if qs[i].sealed > 0 {
			j := len(ready)
			ready = append(ready, int32(i))
			for j > 0 && qs[ready[j-1]].from > qs[i].from {
				ready[j], ready[j-1] = ready[j-1], ready[j]
				j--
			}
		}
	}
	rng := &n.sh.cellRNG[c]
	for len(ready) > 0 {
		j := 0
		if len(ready) > 1 {
			j = cellIntn(rng, len(ready))
		}
		// Arena entries never move, so the pointer from the pre-taken
		// backing stays valid even when a handler send to this very cell
		// grows the node's slot table mid-turn.
		q := qs[ready[j]]
		m := q.pop()
		q.sealed--
		if q.sealed == 0 {
			last := len(ready) - 1
			ready[j] = ready[last]
			ready = ready[:last]
		}
		s.delivered++
		s.ctx.self = c
		q.proc.OnMessage(&s.ctx, q.from, m)
	}
	s.ready = ready[:0]
}

// mergeRound is this shard's barrier half: drain every crossbar queue
// addressed to it in shard order (global sender-cell order, stripes being
// contiguous and ascending), seal all links touched this round, and swap in
// the next active list. Runs per shard (concurrently in parallel mode);
// cross-shard hand-off is safe because phases are separated by the
// coordinator's barrier.
func (s *shard) mergeRound() {
	n := s.net
	for i := range n.sh.shards {
		src := &n.sh.shards[i]
		if src == s {
			continue
		}
		in := src.out[s.id]
		for k := range in {
			s.push(in[k].from, in[k].to, in[k].msg)
		}
		src.out[s.id] = in[:0]
	}
	for _, q := range s.touched {
		q.sealed = q.count
	}
	s.touched = s.touched[:0]
	s.active, s.next = s.next, s.active[:0]
	// Fold this shard's empty↔nonempty transition into the global active
	// count. Each shard updates only its own ±1, so the counter is exact
	// once every merge (and hence the round) completes.
	if nowActive := len(s.active) > 0; nowActive != s.hadActive {
		if nowActive {
			n.sh.activeShards.Add(1)
		} else {
			n.sh.activeShards.Add(-1)
		}
	}
}

// runSharded is the sealed-round Run loop: delivery phase, barrier merge
// phase, coordinator bookkeeping (counter folding, bad-send adoption, the
// host barrier hook), until quiescence or budget exhaustion. The step
// budget is enforced at round granularity: a round always completes, and
// the error is returned at the next boundary if undelivered traffic
// remains — every round delivers at least one message, so a livelock still
// terminates within maxSteps rounds.
func (n *Network) runSharded(maxSteps int64) error {
	sn := n.sh
	if sn.builtFor != len(n.nodes) {
		n.buildShards(len(sn.shards))
	}
	var start int64 = n.delivered
	for {
		if n.badSend != nil {
			return n.badSend
		}
		if sn.activeShards.Load() == 0 {
			return nil
		}
		if n.delivered-start >= maxSteps {
			return stepLimitErr(maxSteps)
		}
		n.runRound()
		n.foldShardTallies()
	}
}

// runRound executes one sealed round — every shard's play phase strictly
// before every shard's merge phase. Parallel mode hands the round to the
// persistent worker pool (two barrier crossings, see worker.go); sequential
// mode plays then merges the stripes in ascending shard order on the
// coordinator, allocation-free and schedule-identical by the sealed-round
// argument in the package comment.
func (n *Network) runRound() {
	sn := n.sh
	if p := sn.pool; p != nil {
		p.round(sn.shards)
		return
	}
	for i := range sn.shards {
		sn.shards[i].playRound()
	}
	for i := range sn.shards {
		sn.shards[i].mergeRound()
	}
}

// foldShardTallies is the coordinator's barrier-tail bookkeeping, shared by
// Run and Step (it used to be copy-pasted between them): fold every shard's
// per-round delivery/send deltas into the network totals, adopt the first
// bad send in shard order — ascending stripes of ascending cells, so the
// winning error is shard-count-invariant — and fire the host's barrier
// hook.
func (n *Network) foldShardTallies() {
	sn := n.sh
	for i := range sn.shards {
		s := &sn.shards[i]
		n.delivered += s.delivered
		n.sent += s.sent
		s.delivered, s.sent = 0, 0
		if s.bad != nil {
			if n.badSend == nil {
				n.badSend = s.bad
			}
			s.bad = nil
		}
	}
	if sn.hook != nil {
		sn.hook()
	}
}

// stepSharded delivers one full round (the sharded scheduler's indivisible
// unit) and reports whether anything was delivered.
func (n *Network) stepSharded() (bool, error) {
	if n.badSend != nil {
		return false, n.badSend
	}
	sn := n.sh
	if sn.builtFor != len(n.nodes) {
		n.buildShards(len(sn.shards))
	}
	if sn.activeShards.Load() == 0 {
		return false, nil
	}
	before := n.delivered
	n.runRound()
	n.foldShardTallies()
	if n.badSend != nil {
		return n.delivered > before, n.badSend
	}
	return n.delivered > before, nil
}
