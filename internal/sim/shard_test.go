package sim

import (
	"errors"
	"fmt"
	"testing"
)

// The sharded scheduler's determinism contract is per-cell: every cell's
// delivery history (senders, messages, order) and the global counters are a
// pure function of (seed, topology, protocol), independent of shard count
// and of parallel vs sequential execution. Per-cell logs are also what can
// be compared without races: each node appends only to its own log, which
// is owned by exactly one shard.

// floodProc relays decaying token floods across a grid: each token forwards
// to one neighbor chosen by message content, and every third hop forks a
// second, shorter token — branching cross-cell traffic with multi-link
// ready sets that dies off deterministically.
type floodProc struct {
	id   NodeID
	nbrs []NodeID
	log  *[]deliveryRecord
}

func (p *floodProc) OnMessage(ctx *Context, from NodeID, msg Msg) {
	*p.log = append(*p.log, deliveryRecord{to: ctx.Self(), from: from, msg: msg})
	if msg.Kind != kindToken || msg.A == 0 {
		return
	}
	k := int(msg.A+uint32(p.id)) % len(p.nbrs)
	ctx.Send(p.nbrs[k], token(msg.A-1))
	if msg.A%3 == 0 {
		ctx.Send(p.nbrs[(k+1)%len(p.nbrs)], Msg{Kind: kindToken, A: msg.A / 2, B: msg.B + 1})
	}
}

// buildFloodGrid wires a w×h 4-neighbor torus of floodProcs whose
// per-node logs land in logs[id].
func buildFloodGrid(t testing.TB, w, h int, seed int64, logs [][]deliveryRecord) *Network {
	t.Helper()
	n := NewNetwork(seed)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := NodeID(y*w + x)
			nbrs := []NodeID{
				NodeID(y*w + (x+1)%w),
				NodeID(y*w + (x+w-1)%w),
				NodeID(((y+1)%h)*w + x),
				NodeID(((y+h-1)%h)*w + x),
			}
			if err := n.Add(id, &floodProc{id: id, nbrs: nbrs, log: &logs[id]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return n
}

// runFlood executes one flood episode under the given shard config and
// returns the per-node logs plus counters.
func runFlood(t testing.TB, w, h int, seed int64, shards int, parallel bool) ([][]deliveryRecord, int64, int64) {
	t.Helper()
	logs := make([][]deliveryRecord, w*h)
	n := buildFloodGrid(t, w, h, seed, logs)
	if err := n.SetShards(shards, parallel); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		n.Inject(NodeID((j*13)%(w*h)), token(uint32(20+j*9)))
	}
	if err := n.Run(200_000); err != nil {
		t.Fatal(err)
	}
	return logs, n.Delivered(), n.Sent()
}

func diffLogs(t *testing.T, label string, want, got [][]deliveryRecord) {
	t.Helper()
	for id := range want {
		if len(want[id]) != len(got[id]) {
			t.Fatalf("%s: node %d delivered %d messages, want %d", label, id, len(got[id]), len(want[id]))
		}
		for i := range want[id] {
			if want[id][i] != got[id][i] {
				t.Fatalf("%s: node %d delivery %d = %+v, want %+v", label, id, i, got[id][i], want[id][i])
			}
		}
	}
}

// TestShardCountInvariance pins the tentpole contract: the full per-cell
// delivery schedule and the message counters are bit-identical for every
// shard count, including counts that do not divide the cell count.
func TestShardCountInvariance(t *testing.T) {
	refLogs, refDel, refSent := runFlood(t, 8, 6, 42, 1, false)
	if refDel == 0 || refDel != refSent {
		t.Fatalf("reference episode delivered=%d sent=%d", refDel, refSent)
	}
	for _, shards := range []int{2, 3, 4, 7, 8, 48, 64} {
		logs, del, sent := runFlood(t, 8, 6, 42, shards, false)
		if del != refDel || sent != refSent {
			t.Fatalf("shards=%d: delivered=%d sent=%d, want %d/%d", shards, del, sent, refDel, refSent)
		}
		diffLogs(t, fmt.Sprintf("shards=%d", shards), refLogs, logs)
	}
}

// TestShardParallelMatchesSequential pins that concurrent shard execution
// is unobservable: same schedule, same counters.
func TestShardParallelMatchesSequential(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		seqLogs, seqDel, seqSent := runFlood(t, 8, 6, 7, shards, false)
		parLogs, parDel, parSent := runFlood(t, 8, 6, 7, shards, true)
		if parDel != seqDel || parSent != seqSent {
			t.Fatalf("shards=%d parallel: delivered=%d sent=%d, want %d/%d", shards, parDel, parSent, seqDel, seqSent)
		}
		diffLogs(t, fmt.Sprintf("parallel shards=%d", shards), seqLogs, parLogs)
	}
}

// TestShardWarmResetMatchesFresh pins reset ≡ fresh for sharded state: a
// warm-reset episode (after a different-seed run) matches a fresh network,
// per shard and per cell.
func TestShardWarmResetMatchesFresh(t *testing.T) {
	for _, shards := range []int{1, 4} {
		freshLogs, freshDel, freshSent := runFlood(t, 8, 6, 9, shards, false)

		const w, h = 8, 6
		logs := make([][]deliveryRecord, w*h)
		n := buildFloodGrid(t, w, h, 3, logs)
		if err := n.SetShards(shards, false); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			n.Inject(NodeID((j*13)%(w*h)), token(uint32(20+j*9)))
		}
		if err := n.Run(200_000); err != nil {
			t.Fatal(err)
		}

		n.Reset(9)
		for id := range logs {
			logs[id] = logs[id][:0]
		}
		for j := 0; j < 6; j++ {
			n.Inject(NodeID((j*13)%(w*h)), token(uint32(20+j*9)))
		}
		if err := n.Run(200_000); err != nil {
			t.Fatal(err)
		}
		if n.Delivered() != freshDel || n.Sent() != freshSent {
			t.Fatalf("shards=%d warm: delivered=%d sent=%d, want %d/%d", shards, n.Delivered(), n.Sent(), freshDel, freshSent)
		}
		diffLogs(t, fmt.Sprintf("warm shards=%d", shards), freshLogs, logs)
	}
}

// TestShardStepMatchesRun pins that Step (one round) iterated to
// quiescence produces Run's schedule exactly.
func TestShardStepMatchesRun(t *testing.T) {
	runLogs, runDel, _ := runFlood(t, 8, 6, 21, 4, false)

	logs := make([][]deliveryRecord, 48)
	n := buildFloodGrid(t, 8, 6, 21, logs)
	if err := n.SetShards(4, false); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		n.Inject(NodeID((j*13)%48), token(uint32(20+j*9)))
	}
	for {
		progressed, err := n.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			break
		}
	}
	if n.Delivered() != runDel {
		t.Fatalf("stepped delivered=%d, want %d", n.Delivered(), runDel)
	}
	diffLogs(t, "step-vs-run", runLogs, logs)
}

// TestShardStepLimit pins budget semantics at round granularity: an
// exhausted budget returns ErrStepLimit with traffic still pending, and a
// follow-up Run completes the identical schedule.
func TestShardStepLimit(t *testing.T) {
	refLogs, refDel, _ := runFlood(t, 8, 6, 5, 4, false)

	logs := make([][]deliveryRecord, 48)
	n := buildFloodGrid(t, 8, 6, 5, logs)
	if err := n.SetShards(4, false); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		n.Inject(NodeID((j*13)%48), token(uint32(20+j*9)))
	}
	err := n.Run(10)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("Run(10) = %v, want ErrStepLimit", err)
	}
	if n.Pending() == 0 {
		t.Fatal("step limit hit but nothing pending")
	}
	if err := n.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if n.Delivered() != refDel {
		t.Fatalf("resumed delivered=%d, want %d", n.Delivered(), refDel)
	}
	diffLogs(t, "resume-after-limit", refLogs, logs)
}

// TestShardBadSend pins deferred bad-send semantics in sharded mode, for
// both handler sends and injections.
func TestShardBadSend(t *testing.T) {
	n := NewNetwork(1)
	if err := n.Add(0, badSender{}); err != nil {
		t.Fatal(err)
	}
	if err := n.SetShards(2, false); err != nil {
		t.Fatal(err)
	}
	n.Inject(0, ping())
	if err := n.Run(100); err == nil {
		t.Fatal("send to unknown node not surfaced")
	}

	n2 := NewNetwork(1)
	if err := n2.Add(0, &silentProc{}); err != nil {
		t.Fatal(err)
	}
	if err := n2.SetShards(2, false); err != nil {
		t.Fatal(err)
	}
	n2.Inject(99, ping())
	if _, err := n2.Step(); err == nil {
		t.Fatal("inject to unknown node not surfaced")
	}
}

// TestSetShardsRequiresQuiescence pins the mode-flip guard: pending
// messages are stored differently by the two engines, so SetShards refuses.
func TestSetShardsRequiresQuiescence(t *testing.T) {
	n := NewNetwork(1)
	if err := n.Add(0, &silentProc{}); err != nil {
		t.Fatal(err)
	}
	n.Inject(0, ping())
	if err := n.SetShards(2, false); !errors.Is(err, ErrShardsPending) {
		t.Fatalf("SetShards with pending = %v, want ErrShardsPending", err)
	}
	if err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := n.SetShards(2, false); err != nil {
		t.Fatalf("SetShards after quiescence: %v", err)
	}
	if n.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", n.Shards())
	}
	if err := n.SetShards(0, false); err != nil {
		t.Fatal(err)
	}
	if n.Shards() != 0 {
		t.Fatalf("Shards() = %d, want 0 (legacy)", n.Shards())
	}
}

// TestShardBarrierHook pins the coordinator hook: called once per round,
// after the round's deliveries are folded into the counters.
func TestShardBarrierHook(t *testing.T) {
	logs := make([][]deliveryRecord, 48)
	n := buildFloodGrid(t, 8, 6, 13, logs)
	if err := n.SetShards(4, false); err != nil {
		t.Fatal(err)
	}
	rounds := 0
	last := int64(0)
	n.SetBarrierHook(func() {
		rounds++
		if n.Delivered() <= last {
			t.Fatalf("round %d: delivered %d did not advance past %d", rounds, n.Delivered(), last)
		}
		last = n.Delivered()
	})
	n.Inject(0, token(30))
	if err := n.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("barrier hook never ran")
	}
	if last != n.Delivered() {
		t.Fatalf("final hook saw %d delivered, total %d", last, n.Delivered())
	}
}

// TestShardWarmEpisodeAllocationFree pins that a warm sharded episode —
// reset, inject, run — performs zero allocations once capacities are
// established, matching the legacy warm path's discipline.
func TestShardWarmEpisodeAllocationFree(t *testing.T) {
	const w, h = 8, 6
	logs := make([][]deliveryRecord, w*h)
	n := buildFloodGrid(t, w, h, 1, logs)
	if err := n.SetShards(4, false); err != nil {
		t.Fatal(err)
	}
	episode := func() {
		n.Reset(1)
		for id := range logs {
			logs[id] = logs[id][:0]
		}
		for j := 0; j < 6; j++ {
			n.Inject(NodeID((j*13)%(w*h)), token(uint32(20+j*9)))
		}
		if err := n.Run(200_000); err != nil {
			t.Fatal(err)
		}
	}
	episode() // warm all capacities (rings, logs, crossbar, scratch)
	episode()
	if avg := testing.AllocsPerRun(20, episode); avg != 0 {
		t.Fatalf("warm sharded episode allocates %.1f times", avg)
	}
}

// TestShardInjectManyEquivalentToInjectLoop mirrors the legacy guarantee
// for the sharded injection path.
func TestShardInjectManyEquivalentToInjectLoop(t *testing.T) {
	build := func(logs [][]deliveryRecord) *Network {
		n := buildFloodGrid(t, 8, 6, 17, logs)
		if err := n.SetShards(4, false); err != nil {
			t.Fatal(err)
		}
		return n
	}
	ids := []NodeID{3, 9, 27, 41}

	aLogs := make([][]deliveryRecord, 48)
	a := build(aLogs)
	a.InjectMany(ids, token(15))
	if err := a.Run(200_000); err != nil {
		t.Fatal(err)
	}

	bLogs := make([][]deliveryRecord, 48)
	b := build(bLogs)
	for _, id := range ids {
		b.Inject(id, token(15))
	}
	if err := b.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if a.Delivered() != b.Delivered() {
		t.Fatalf("InjectMany delivered %d, loop delivered %d", a.Delivered(), b.Delivered())
	}
	diffLogs(t, "injectmany", bLogs, aLogs)
}

// FuzzShardScheduleMatchesSingleShard drives random topologies, workloads,
// and shard configurations against the single-shard reference model: the
// per-cell schedules and counters must match bit for bit.
func FuzzShardScheduleMatchesSingleShard(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(5), uint8(3), uint8(3), true)
	f.Add(int64(42), uint8(2), uint8(8), uint8(6), uint8(6), false)
	f.Add(int64(-7), uint8(9), uint8(3), uint8(2), uint8(1), true)
	f.Add(int64(99), uint8(64), uint8(4), uint8(4), uint8(8), false)
	f.Fuzz(func(t *testing.T, seed int64, shards, w, h, tokens uint8, parallel bool) {
		W := 2 + int(w%8)
		H := 2 + int(h%8)
		S := 2 + int(shards%63)
		T := 1 + int(tokens%8)

		run := func(s int, par bool) ([][]deliveryRecord, int64, int64) {
			logs := make([][]deliveryRecord, W*H)
			n := buildFloodGrid(t, W, H, seed, logs)
			if err := n.SetShards(s, par); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < T; j++ {
				n.Inject(NodeID((j*13)%(W*H)), token(uint32(10+(j*7+int(seed&15))%25)))
			}
			if err := n.Run(500_000); err != nil {
				t.Fatal(err)
			}
			return logs, n.Delivered(), n.Sent()
		}

		refLogs, refDel, refSent := run(1, false)
		gotLogs, gotDel, gotSent := run(S, parallel)
		if gotDel != refDel || gotSent != refSent {
			t.Fatalf("shards=%d: delivered=%d sent=%d, want %d/%d", S, gotDel, gotSent, refDel, refSent)
		}
		diffLogs(t, fmt.Sprintf("fuzz shards=%d parallel=%v", S, parallel), refLogs, gotLogs)
	})
}
