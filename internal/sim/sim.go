// Package sim is a deterministic discrete-event message-passing simulator
// implementing the communication model of thesis Section 3.2: processes with
// unbounded input buffers, bidirectional error-free links, per-link FIFO
// ("synchronous communication: messages from P to Q arrive in the order
// sent"), and arbitrary finite delays — realized by delivering, at each
// step, the head message of a pseudo-randomly chosen nonempty link. With a
// fixed seed every run is bit-for-bit reproducible.
//
// Storage is dense: node ids are expected to be small non-negative integers
// (the online layer uses arena cell indices directly), processes live in a
// slice, and each node's pending traffic sits in a slice-backed mailbox of
// per-link ring buffers — no map lookups or per-message allocations on the
// delivery hot path.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// NodeID identifies a process in the network. Ids must be non-negative and
// should be compact (dense storage is sized by the largest id seen).
type NodeID int32

// None is the null node id (used for "no parent" and similar sentinels).
const None NodeID = -1

// Message is an opaque payload delivered to a process.
type Message interface{}

// Process is a network participant. Implementations must be deterministic
// functions of their delivered messages to preserve run reproducibility.
type Process interface {
	// OnMessage handles one delivered message. Sends made through ctx are
	// enqueued, not delivered inline.
	OnMessage(ctx *Context, from NodeID, msg Message)
}

// ErrStepLimit is returned by Run when delivery does not quiesce within the
// step budget — usually a protocol livelock.
var ErrStepLimit = errors.New("sim: step limit exceeded before quiescence")

// linkQueue is one directed link's FIFO: a growable ring buffer of payloads
// from a fixed sender. The sender is constant per queue, so envelopes carry
// only the message.
type linkQueue struct {
	from  NodeID
	buf   []Message // ring buffer; len is a power of two
	head  int32
	count int32
}

func (q *linkQueue) push(m Message) {
	if int(q.count) == len(q.buf) {
		grown := make([]Message, max(4, 2*len(q.buf)))
		for i := int32(0); i < q.count; i++ {
			grown[i] = q.buf[(q.head+i)&int32(len(q.buf)-1)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.count)&int32(len(q.buf)-1)] = m
	q.count++
}

func (q *linkQueue) pop() Message {
	m := q.buf[q.head]
	q.buf[q.head] = nil // release the payload reference
	q.head = (q.head + 1) & int32(len(q.buf)-1)
	q.count--
	return m
}

// mailbox holds one destination node's incoming links. The link table is
// append-only, so a link's slot index is stable for the network's lifetime;
// fan-in equals the node's degree in the communication graph, so the
// linear slot scan on send is over a handful of entries.
type mailbox struct {
	links []linkQueue
}

func (mb *mailbox) slot(from NodeID) int32 {
	for i := range mb.links {
		if mb.links[i].from == from {
			return int32(i)
		}
	}
	mb.links = append(mb.links, linkQueue{from: from})
	return int32(len(mb.links) - 1)
}

// readyRef addresses one nonempty link: destination node and slot in its
// mailbox's link table.
type readyRef struct {
	to   NodeID
	slot int32
}

// Network owns the processes and undelivered messages. It is single
// threaded: determinism comes free and the package is safe exactly when a
// Network is confined to one goroutine.
type Network struct {
	src       rand.Source
	rng       *rand.Rand
	procs     []Process  // dense, indexed by NodeID
	boxes     []mailbox  // dense, indexed by destination NodeID
	ready     []readyRef // exact set of nonempty links
	delivered int64
	sent      int64
	// badSend records the first send to a negative node id; surfaced as an
	// error on the next Step (matching the map-era "unknown node" behavior
	// of erroring at delivery time, not send time).
	badSend error
	// ctx is the single delivery context, handed to every OnMessage with
	// only its self field rewritten — one pooled struct instead of one heap
	// allocation per delivered message.
	ctx Context
}

// NewNetwork creates an empty network with the given determinism seed.
func NewNetwork(seed int64) *Network {
	src := rand.NewSource(seed)
	n := &Network{src: src, rng: rand.New(src)}
	n.ctx.net = n
	return n
}

// Reset returns the network to its just-constructed state while retaining
// all storage, so a reused network allocates nothing on re-run: registered
// processes stay, every mailbox keeps its link table and each link keeps
// its ring-buffer capacity (pending payload references are released), the
// ready list is cleared in place, the delivery counters and the bad-send
// latch are zeroed, and the RNG is reseeded. A reset network runs
// bit-for-bit identically to a freshly built one with the same seed and
// processes.
func (n *Network) Reset(seed int64) {
	n.src.Seed(seed)
	for b := range n.boxes {
		links := n.boxes[b].links
		for l := range links {
			q := &links[l]
			for q.count > 0 {
				q.pop() // pop nils stored refs so payloads are collectable
			}
			q.head = 0
		}
	}
	n.ready = n.ready[:0]
	n.delivered = 0
	n.sent = 0
	n.badSend = nil
}

// Add registers a process under id.
func (n *Network) Add(id NodeID, p Process) error {
	if p == nil {
		return fmt.Errorf("sim: nil process for node %d", id)
	}
	if id < 0 {
		return fmt.Errorf("sim: node id %d must be non-negative", id)
	}
	for int(id) >= len(n.procs) {
		n.procs = append(n.procs, nil)
	}
	if n.procs[id] != nil {
		return fmt.Errorf("sim: duplicate node id %d", id)
	}
	n.procs[id] = p
	return nil
}

// Context is the capability handed to a process while it handles a message.
// It is pooled: the network rewrites one Context per delivery, so it is only
// valid for the duration of the OnMessage call it was passed to — processes
// must not retain it.
type Context struct {
	net  *Network
	self NodeID
}

// Self returns the id of the process being invoked.
func (c *Context) Self() NodeID { return c.self }

// Send enqueues a message from the current process to another node.
func (c *Context) Send(to NodeID, msg Message) {
	c.net.enqueue(c.self, to, msg)
}

// Sender is the minimal sending capability, implemented by *Context;
// protocol engines (package diffuse) depend only on this.
type Sender interface {
	Self() NodeID
	Send(to NodeID, msg Message)
}

var _ Sender = (*Context)(nil)

// Inject delivers an external event into a node's input buffer, e.g. a job
// arrival. from is recorded as None.
func (n *Network) Inject(to NodeID, msg Message) {
	n.enqueue(None, to, msg)
}

// InjectMany enqueues one (shared) message to every listed node, in order.
// It is exactly equivalent — by construction, it delegates to the same
// enqueue path — to calling Inject(id, msg) for each id: same queue
// contents, same ready-list order, hence the same delivery schedule. The
// online layer's monitoring rounds use it for their two full-arena waves,
// injecting one boxed message over a cached id list instead of re-boxing
// per cell. Note msg is enqueued by reference into every mailbox, so it
// must not be mutated while in flight (the same contract shared boxed
// messages already obey).
func (n *Network) InjectMany(ids []NodeID, msg Message) {
	for _, to := range ids {
		n.enqueue(None, to, msg)
	}
}

func (n *Network) enqueue(from, to NodeID, msg Message) {
	if to < 0 {
		if n.badSend == nil {
			n.badSend = fmt.Errorf("sim: message to invalid node %d", to)
		}
		return
	}
	for int(to) >= len(n.boxes) {
		n.boxes = append(n.boxes, mailbox{})
	}
	mb := &n.boxes[to]
	s := mb.slot(from)
	q := &mb.links[s]
	if q.count == 0 {
		n.ready = append(n.ready, readyRef{to: to, slot: s})
	}
	q.push(msg)
	n.sent++
}

// Step delivers one pending message (if any) and reports whether it did.
func (n *Network) Step() (bool, error) {
	if n.badSend != nil {
		return false, n.badSend
	}
	if len(n.ready) == 0 {
		return false, nil
	}
	i := n.rng.Intn(len(n.ready))
	ref := n.ready[i]
	q := &n.boxes[ref.to].links[ref.slot]
	from := q.from
	msg := q.pop()
	if q.count == 0 {
		// Exact ready-list maintenance: a link enters the list when its
		// queue turns nonempty and leaves here, at its known index, the
		// moment it drains — no stale entries, no compaction scans.
		n.ready[i] = n.ready[len(n.ready)-1]
		n.ready = n.ready[:len(n.ready)-1]
	}
	var p Process
	if int(ref.to) < len(n.procs) {
		p = n.procs[ref.to]
	}
	if p == nil {
		return false, fmt.Errorf("sim: message to unknown node %d", ref.to)
	}
	n.delivered++
	n.ctx.self = ref.to
	p.OnMessage(&n.ctx, from, msg)
	return true, nil
}

// Run delivers messages until the network quiesces (no pending messages) or
// maxSteps deliveries have happened, in which case ErrStepLimit is returned.
func (n *Network) Run(maxSteps int64) error {
	for steps := int64(0); ; steps++ {
		if steps >= maxSteps {
			if n.badSend != nil {
				// A dropped send must never let the run look quiescent.
				return n.badSend
			}
			if len(n.ready) == 0 {
				return nil
			}
			return fmt.Errorf("%w (after %d deliveries)", ErrStepLimit, maxSteps)
		}
		progressed, err := n.Step()
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
	}
}

// Delivered returns the number of messages delivered so far — the message
// complexity metric for experiment E8.
func (n *Network) Delivered() int64 { return n.delivered }

// Sent returns the number of messages enqueued so far.
func (n *Network) Sent() int64 { return n.sent }

// Pending returns the number of undelivered messages.
func (n *Network) Pending() int64 { return n.sent - n.delivered }
