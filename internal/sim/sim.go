// Package sim is a deterministic discrete-event message-passing simulator
// implementing the communication model of thesis Section 3.2: processes with
// unbounded input buffers, bidirectional error-free links, per-link FIFO
// ("synchronous communication: messages from P to Q arrive in the order
// sent"), and arbitrary finite delays — realized by delivering, at each
// step, the head message of a pseudo-randomly chosen nonempty link. With a
// fixed seed every run is bit-for-bit reproducible.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// NodeID identifies a process in the network.
type NodeID int32

// None is the null node id (used for "no parent" and similar sentinels).
const None NodeID = -1

// Message is an opaque payload delivered to a process.
type Message interface{}

// Process is a network participant. Implementations must be deterministic
// functions of their delivered messages to preserve run reproducibility.
type Process interface {
	// OnMessage handles one delivered message. Sends made through ctx are
	// enqueued, not delivered inline.
	OnMessage(ctx *Context, from NodeID, msg Message)
}

// ErrStepLimit is returned by Run when delivery does not quiesce within the
// step budget — usually a protocol livelock.
var ErrStepLimit = errors.New("sim: step limit exceeded before quiescence")

type link struct{ from, to NodeID }

// Network owns the processes and undelivered messages. It is single
// threaded: determinism comes free and the package is safe exactly when a
// Network is confined to one goroutine.
type Network struct {
	rng       *rand.Rand
	procs     map[NodeID]Process
	queues    map[link][]envelope
	ready     []link // links with pending messages
	delivered int64
	sent      int64
}

type envelope struct {
	from NodeID
	msg  Message
}

// NewNetwork creates an empty network with the given determinism seed.
func NewNetwork(seed int64) *Network {
	return &Network{
		rng:    rand.New(rand.NewSource(seed)),
		procs:  make(map[NodeID]Process),
		queues: make(map[link][]envelope),
	}
}

// Add registers a process under id.
func (n *Network) Add(id NodeID, p Process) error {
	if p == nil {
		return fmt.Errorf("sim: nil process for node %d", id)
	}
	if _, dup := n.procs[id]; dup {
		return fmt.Errorf("sim: duplicate node id %d", id)
	}
	n.procs[id] = p
	return nil
}

// Context is the capability handed to a process while it handles a message.
type Context struct {
	net  *Network
	self NodeID
}

// Self returns the id of the process being invoked.
func (c *Context) Self() NodeID { return c.self }

// Send enqueues a message from the current process to another node.
func (c *Context) Send(to NodeID, msg Message) {
	c.net.enqueue(c.self, to, msg)
}

// Sender is the minimal sending capability, implemented by *Context;
// protocol engines (package diffuse) depend only on this.
type Sender interface {
	Self() NodeID
	Send(to NodeID, msg Message)
}

var _ Sender = (*Context)(nil)

// Inject delivers an external event into a node's input buffer, e.g. a job
// arrival. from is recorded as None.
func (n *Network) Inject(to NodeID, msg Message) {
	n.enqueue(None, to, msg)
}

func (n *Network) enqueue(from, to NodeID, msg Message) {
	l := link{from, to}
	q := n.queues[l]
	if len(q) == 0 {
		n.ready = append(n.ready, l)
	}
	n.queues[l] = append(q, envelope{from, msg})
	n.sent++
}

// Step delivers one pending message (if any) and reports whether it did.
func (n *Network) Step() (bool, error) {
	for len(n.ready) > 0 {
		i := n.rng.Intn(len(n.ready))
		l := n.ready[i]
		q := n.queues[l]
		if len(q) == 0 {
			// Stale entry (queue drained under a different ready slot).
			n.ready[i] = n.ready[len(n.ready)-1]
			n.ready = n.ready[:len(n.ready)-1]
			continue
		}
		env := q[0]
		rest := q[1:]
		if len(rest) == 0 {
			delete(n.queues, l)
			n.ready[i] = n.ready[len(n.ready)-1]
			n.ready = n.ready[:len(n.ready)-1]
		} else {
			n.queues[l] = rest
		}
		p, ok := n.procs[l.to]
		if !ok {
			return false, fmt.Errorf("sim: message to unknown node %d", l.to)
		}
		n.delivered++
		p.OnMessage(&Context{net: n, self: l.to}, env.from, env.msg)
		return true, nil
	}
	return false, nil
}

// Run delivers messages until the network quiesces (no pending messages) or
// maxSteps deliveries have happened, in which case ErrStepLimit is returned.
func (n *Network) Run(maxSteps int64) error {
	for steps := int64(0); ; steps++ {
		if steps >= maxSteps {
			if len(n.ready) == 0 {
				return nil
			}
			return fmt.Errorf("%w (after %d deliveries)", ErrStepLimit, maxSteps)
		}
		progressed, err := n.Step()
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
	}
}

// Delivered returns the number of messages delivered so far — the message
// complexity metric for experiment E8.
func (n *Network) Delivered() int64 { return n.delivered }

// Sent returns the number of messages enqueued so far.
func (n *Network) Sent() int64 { return n.sent }

// Pending returns the number of undelivered messages.
func (n *Network) Pending() int64 { return n.sent - n.delivered }
