// Package sim is a deterministic discrete-event message-passing simulator
// implementing the communication model of thesis Section 3.2: processes with
// unbounded input buffers, bidirectional error-free links, per-link FIFO
// ("synchronous communication: messages from P to Q arrive in the order
// sent"), and arbitrary finite delays — realized by delivering, at each
// step, the head message of a pseudo-randomly chosen nonempty link. With a
// fixed seed every run is bit-for-bit reproducible.
//
// Storage is dense: node ids are expected to be small non-negative integers
// (the online layer uses arena cell indices directly), processes live in a
// slice, and each node's pending traffic sits in a slice-backed mailbox of
// per-link ring buffers — no map lookups or per-message allocations on the
// delivery hot path.
//
// Messages are compact tagged values (Msg), stored inline in the ring
// buffers: the protocol vocabulary above this layer is small and closed, so
// a kind byte plus a few integer operands replaces the old boxed
// `interface{}` payloads. Delivery moves plain words — no interface boxing,
// no pointer chasing, and the buffers are invisible to the garbage
// collector.
package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
)

// NodeID identifies a process in the network. Ids must be non-negative and
// should be compact (dense storage is sized by the largest id seen).
type NodeID int32

// None is the null node id (used for "no parent" and similar sentinels).
const None NodeID = -1

// KindInvalid is the reserved zero message kind. No protocol layer may use
// it, which makes the zero Msg detectable as "no message" and lets hosts
// treat kind 0 as a wiring bug.
const KindInvalid uint8 = 0

// Msg is a compact tagged message: a kind byte plus integer operands,
// delivered by value. Each layer owns a globally unique range of kinds
// (package diffuse: 1..7, package gossip: 8..15, package online: 16..31,
// package termination: 240..255; tests use 32..127) and defines what the
// operands mean per kind.
//
// A and B are the primary operands; every single-phase message in the
// system fits in them (a node id, a sequence number, an arena cell index, a
// pair id). C and D are extended operands used by messages that relay on
// behalf of others — the Phase II forward carries its computation identity
// in A/B and the two payload words in C/D, preserving the boxed
// implementation's stale-forward drop check without an indirection.
type Msg struct {
	Kind uint8
	// pad aligns the struct to 24 bytes so slice elements copy as three
	// 8-byte moves instead of split-line 20-byte moves; Msg values move
	// through ring buffers and the ready array on every hop.
	_    [7]uint8
	A, B uint32
	C, D uint32
}

// Process is a network participant. Implementations must be deterministic
// functions of their delivered messages to preserve run reproducibility.
type Process interface {
	// OnMessage handles one delivered message. Sends made through ctx are
	// enqueued, not delivered inline.
	OnMessage(ctx *Context, from NodeID, msg Msg)
}

// ErrStepLimit is returned by Run when delivery does not quiesce within the
// step budget — usually a protocol livelock.
var ErrStepLimit = errors.New("sim: step limit exceeded before quiescence")

// linkQueue is one directed link's FIFO tail: a growable ring buffer of
// inline message slots from a fixed sender. Every link lives in the
// network's chunked arena (see linkArena); chunks never move, so a pointer
// to an entry is stable for the network's lifetime and the hot structures
// (node slot tables, the ready list) cache direct pointers instead of
// re-resolving arena indices. Under the legacy scheduler the link's HEAD
// message does not live here: it sits in the ready list's hot array
// (see Network.ready), so the ring only
// ever holds overflow (second and later undelivered messages, rare at
// protocol fan-outs). The sender is constant per queue, so slots carry only
// the message value; the buffer holds no pointers, so the garbage collector
// never scans it and a pop is a plain copy. The struct is exactly 64 bytes —
// one cache line per arena entry.
type linkQueue struct {
	// count/head are the ring cursors a delivery's refill touches; first so
	// they share the entry's only cache line with listed and proc.
	count int32
	head  int32
	// sealed is the sharded scheduler's delivery watermark: how many of the
	// ring's head messages were sent in an earlier round and are therefore
	// deliverable this round (count - sealed messages arrived this round and
	// wait for the barrier). The legacy scheduler never reads or writes it;
	// in sharded mode the ready list is unused and ALL messages, including
	// the head, live in the ring.
	sealed int32
	// listed marks that the link currently owns a ready-list entry (whose
	// hot slot holds its head message). Pending messages on the link =
	// listed(0/1) + count. Legacy scheduler only.
	listed bool
	// from and to are the link's logical address: the fixed sender and the
	// owning (destination) node.
	from NodeID
	to   NodeID
	// proc is the owning node's process, copied at link creation (links are
	// only ever created for registered nodes, and processes are never
	// replaced). Dispatching through it saves the nodes[to] re-index on
	// every delivery.
	proc Process
	buf  []Msg // ring buffer; len is a power of two
}

func (q *linkQueue) push(m Msg) {
	if int(q.count) == len(q.buf) {
		q.grow()
	}
	q.buf[uint32(q.head+q.count)&uint32(len(q.buf)-1)] = m
	q.count++
}

// grow doubles the ring, unwrapping it to the front of the new buffer. Kept
// out of push — and out of push's inlining budget — so the hot no-grow path
// inlines into enqueue.
//
//go:noinline
func (q *linkQueue) grow() {
	grown := make([]Msg, max(4, 2*len(q.buf)))
	for i := int32(0); i < q.count; i++ {
		grown[i] = q.buf[uint32(q.head+i)&uint32(len(q.buf)-1)]
	}
	q.buf = grown
	q.head = 0
}

func (q *linkQueue) pop() Msg {
	m := q.buf[q.head]
	q.head = (q.head + 1) & int32(len(q.buf)-1)
	q.count--
	return m
}

// Link storage: a chunked, append-only arena.
//
// All linkQueues live in fixed-size chunks that never move once allocated,
// so an arena index — and the pointer it resolves to — stays valid for the
// network's lifetime. That retires the pointer-repair machinery the direct-
// pointer ready list needed (links used to carry (to, slot) address fields
// purely so repairReady could survive a per-node table reallocation), and it
// is what makes first-contact link creation safe while sharded rounds run in
// parallel: an append can never move an entry another shard's worker is
// reading. The chunk table itself is copied on growth and published
// atomically; a stale table copy remains valid for every index allocated
// before it was loaded.
const (
	linkChunkShift = 8
	linkChunkSize  = 1 << linkChunkShift // links per chunk (16 KiB of 64-byte entries)
	linkChunkMask  = linkChunkSize - 1
)

type linkChunk [linkChunkSize]linkQueue

type linkArena struct {
	// chunks is the atomically published chunk table. Readers load it once
	// per access; alloc replaces it wholesale under mu, so a loaded table is
	// immutable.
	chunks atomic.Pointer[[]*linkChunk]
	mu     sync.Mutex // serializes alloc (first contact on a pair — rare)
	n      int32      // links allocated; written under mu
}

// alloc appends one zeroed link and returns its (immobile) entry. Safe for
// concurrent use by sharded workers (each initializes only links it owns);
// the legacy scheduler calls it single-threaded. Callers hold the returned
// pointer — entries never move, so no index indirection survives past this
// call (an early index-addressed ready list paid two dependent loads per
// hot-path resolution; see DESIGN.md).
func (a *linkArena) alloc() *linkQueue {
	a.mu.Lock()
	qi := a.n
	a.n = qi + 1
	tp := a.chunks.Load()
	have := 0
	if tp != nil {
		have = len(*tp)
	}
	if int(qi)>>linkChunkShift == have {
		grown := make([]*linkChunk, have, have+1)
		if tp != nil {
			copy(grown, *tp)
		}
		grown = append(grown, new(linkChunk))
		a.chunks.Store(&grown)
		tp = &grown
	}
	a.mu.Unlock()
	return &(*tp)[qi>>linkChunkShift][qi&linkChunkMask]
}

// reset restores every allocated link to its just-created queue state (ring
// forgotten, watermarks cleared) while keeping all storage. One contiguous
// sweep per chunk — the warm-reset path walks packed memory instead of
// hopping across per-node link tables.
func (a *linkArena) reset() {
	tp := a.chunks.Load()
	if tp == nil {
		return
	}
	left := a.n
	for _, ch := range *tp {
		k := left
		if k > linkChunkSize {
			k = linkChunkSize
		}
		for i := int32(0); i < k; i++ {
			q := &ch[i]
			q.listed = false
			q.head = 0
			q.count = 0
			q.sealed = 0
		}
		if left -= k; left == 0 {
			return
		}
	}
}

// readyHead is one hot ready-list entry: a listed link's head message, the
// two ids its dispatch needs, and a direct pointer to the arena-resident
// backing link, packed in 40 bytes. A scheduler pick reads one dense array
// element plus exactly one scattered link entry (ring bookkeeping and the
// owning process) — the head-out-of-line layout that keeps wide ready lists
// cache-resident where direct pointers into 96-byte link records did not.
// The pointer is cached rather than an arena index: entries never move, and
// an index costs two extra dependent loads (chunk table, then chunk) per
// delivery, which profiles showed on the warm monitoring path.
type readyHead struct {
	msg  Msg
	q    *linkQueue
	to   NodeID
	from NodeID
}

// node is one registered process together with its incoming links — the
// mailbox. Keeping the process, link table, and injection cache in one
// struct means a send's validation, slot lookup, and push all walk from a
// single slice element, typically one cache line per destination. The link
// table is append-only, so a link's slot index is stable for the network's
// lifetime; fan-in equals the node's degree in the communication graph, so
// the linear slot scan on send is over a handful of entries.
type node struct {
	proc Process
	// linkQs[s] is the node's s-th incoming link (arena-resident, immobile).
	// The slice is append-only, so a slot index is stable for the network's
	// lifetime. The sender id is read through the pointer (q.from sits in
	// the entry's single cache line, which every consumer touches next
	// anyway) rather than from a parallel id array — dropping the second
	// array keeps the node entry itself to one cache line, which inject
	// waves stride over.
	linkQs []*linkQueue
	// injectQ caches the None (external-injection) link, so full-arena
	// injection waves skip the slot scan entirely; nil means not yet
	// resolved. Arena entries never move, so the cache never invalidates —
	// not even across Reset.
	injectQ *linkQueue
	// recvSlot caches the slot that matched the last in-protocol send to
	// this node. Steady flows (a token circling a ring, a heartbeat chain)
	// hit it every time even when slot 0 belongs to another sender — e.g.
	// an injection link created before the protocol's. A miss falls back to
	// the queueFor scan, which refreshes the cache; slots are stable, so a
	// hit can never be wrong, only stale.
	recvSlot int32
	// pend marks (sharded mode only) that the node has undelivered arrivals
	// and sits on its owner shard's active or next list — the dedup bit for
	// those lists. Cleared as the owning shard opens the node's round.
	pend bool
}

// alfg mirrors math/rand's additive lagged Fibonacci generator
// (x_i = x_{i-273} + x_{i-607}, wrapping int64 addition) so the scheduler
// can draw without an interface call per delivery. Its state is never
// computed from scratch: captureALFG recovers it from a seeded source's own
// output stream and verifies it draw-for-draw, so this stays exact or is
// not used at all.
type alfg struct {
	tap, feed int32
	vec       [alfgLen]int64
}

const (
	alfgLen = 607 // math/rand rngLen
	alfgTap = 273 // math/rand rngTap
)

// next is rngSource.Int63, inlined: one masked draw, no interface call.
func (f *alfg) next() int64 {
	t, fd := f.tap-1, f.feed-1
	if t < 0 {
		t += alfgLen
	}
	if fd < 0 {
		fd += alfgLen
	}
	x := f.vec[fd] + f.vec[t]
	f.vec[fd] = x
	f.tap, f.feed = t, fd
	return x & (1<<63 - 1)
}

// prev inverts one draw (the additive update is bijective), used by
// captureALFG to rewind the draws it spent on capture and verification.
func (f *alfg) prev() {
	f.vec[f.feed] -= f.vec[f.tap]
	f.feed++
	if f.feed >= alfgLen {
		f.feed = 0
	}
	f.tap++
	if f.tap >= alfgLen {
		f.tap = 0
	}
}

// captureALFG reconstructs a just-seeded source's generator state into f.
// Every draw of the real generator returns the state word it just wrote, so
// draining one full period's worth of outputs IS the state — no access to
// math/rand internals. The copy is then verified in lockstep against the
// source and rewound to the post-seed state. Returns false (and leaves the
// source's state spent — the caller must re-Seed) if the source is not the
// generator this mirrors.
func captureALFG(src rand.Source, f *alfg) bool {
	s64, ok := src.(rand.Source64)
	if !ok {
		return false
	}
	f.tap, f.feed = 0, alfgLen-alfgTap // rngSource.Seed's start positions
	for i := 0; i < alfgLen; i++ {
		// Draw i overwrote the feed slot for that step.
		slot := (int(f.feed) - 1 - i) % alfgLen
		if slot < 0 {
			slot += alfgLen
		}
		f.vec[slot] = int64(s64.Uint64())
	}
	const verify = 200
	for i := 0; i < verify; i++ {
		f.next()
		if uint64(f.vec[f.feed]) != s64.Uint64() {
			return false
		}
	}
	for i := 0; i < alfgLen+verify; i++ {
		f.prev()
	}
	return true
}

// Network owns the processes and undelivered messages. It is single
// threaded: determinism comes free and the package is safe exactly when a
// Network is confined to one goroutine.
type Network struct {
	src   rand.Source
	nodes []node // dense, indexed by NodeID
	// links is the chunked arena holding every linkQueue in the network;
	// nodes and the ready list hold direct pointers into it (see linkArena).
	links linkArena
	// ready is the legacy scheduler's ready list: the exact set of nonempty
	// links, as a dense hot array carrying each listed link's head message,
	// dispatch ids, and backing-link pointer. Listing a link appends one
	// entry; draining one swap-removes it, so the draw loop's random pick
	// touches packed memory and dereferences exactly one scattered link
	// record — the picked one.
	ready     []readyHead
	delivered int64
	sent      int64
	// badSend records the first send to an invalid or unknown node id;
	// surfaced as an error on the next Step (deferred, like the map-era
	// "unknown node" behavior of erroring at delivery time, not send time).
	badSend error
	// ctx is the single delivery context, handed to every OnMessage with
	// only its self field rewritten — one pooled struct instead of one heap
	// allocation per delivered message.
	ctx Context
	// modK/modMaxv/modM cache intn's per-bound constants for the last
	// non-power-of-two draw bound: the rejection threshold exactly as
	// math/rand.Int31n computes it, and the ⌈2⁶⁴/modK⌉ fixed-point magic
	// that turns the final modulo into two multiplies. Ready-list lengths
	// repeat heavily, so the two divisions behind these values are paid
	// roughly once per length instead of once per delivery.
	modK    int32
	modMaxv int32
	modM    uint64
	// pristine holds a snapshot of the source's internal state right after
	// seeding with pristineSeed, so the warm-start path can reseed by a
	// plain state copy instead of math/rand's 607-round seed scramble.
	// Only used when seedByCopy verified the technique at init (see below)
	// and the faster captured-generator path below is unavailable.
	pristine     reflect.Value
	pristineSeed int64
	havePristine bool
	// fast is the in-struct mirror of the seeded generator (see alfg),
	// active when fastOK: scheduler draws then run inline with no interface
	// call, and a warm Reset restores fastPristine (the post-Seed state)
	// with a plain copy. When capture fails, draws go through src.
	fast         alfg
	fastPristine alfg
	fastOK       bool
	// sh is non-nil when the sealed-round sharded scheduler is selected
	// (SetShards); every entry point dispatches on it. curSeed tracks the
	// current episode seed so SetShards can derive per-cell streams without
	// a Reset.
	sh      *shardNet
	curSeed int64
}

// NewNetwork creates an empty network with the given determinism seed.
func NewNetwork(seed int64) *Network {
	n := &Network{src: rand.NewSource(seed), curSeed: seed}
	n.ctx.net = n
	return n
}

// seedByCopy reports whether reseeding a math/rand source by copying a
// snapshot of its just-seeded state (via reflect) reproduces the stream of a
// freshly seeded source. Verified once at init against the real generator;
// if the runtime's source ever stops being a plain state struct this turns
// false and Reset falls back to Seed. The copy replaces a reseed costing
// 607 multiplicative scramble rounds with a ~5KB memmove.
var seedByCopy = verifySeedByCopy()

func verifySeedByCopy() (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	src := rand.NewSource(20080527)
	v := reflect.ValueOf(src)
	if v.Kind() != reflect.Ptr {
		return false
	}
	snap := reflect.New(v.Type().Elem()).Elem()
	snap.Set(v.Elem())
	want := make([]int64, 64)
	for i := range want {
		want[i] = src.Int63()
	}
	v.Elem().Set(snap) // roll back and replay
	for i := range want {
		if src.Int63() != want[i] {
			return false
		}
	}
	return true
}

// intn replicates math/rand.(*Rand).Intn over the network's source — the
// exact same values from the exact same number of source draws, minus the
// wrapper layers the profile showed on the delivery hot path. k is a ready-
// list length: always ≥ 1 and far below 2³¹, so only the Int31n shape of
// Intn is needed. intn(1) deterministically returns 0 but still consumes
// one draw, which is what keeps burst delivery stream-aligned (see Run).
func (n *Network) intn(k int) int {
	fast := n.fastOK // hoisted: draws below branch without re-loading
	kk := int32(k)
	if kk&(kk-1) == 0 { // power of two (including k == 1): mask, one draw
		var x int64
		if fast {
			x = n.fast.next()
		} else {
			x = n.src.Int63()
		}
		return int(int32(x>>32) & (kk - 1))
	}
	if kk != n.modK {
		n.modK = kk
		n.modMaxv = int32((1 << 31) - 1 - (1<<31)%uint32(kk))
		n.modM = ^uint64(0)/uint64(kk) + 1
	}
	var x int64
	if fast {
		x = n.fast.next()
	} else {
		x = n.src.Int63()
	}
	v := int32(x >> 32)
	for v > n.modMaxv {
		if fast {
			x = n.fast.next()
		} else {
			x = n.src.Int63()
		}
		v = int32(x >> 32)
	}
	// v % kk by Lemire's exact fastmod: for kk < 2³² and M = ⌈2⁶⁴/kk⌉,
	// ((M·v mod 2⁶⁴)·kk) >> 64 == v mod kk for every 32-bit v — two
	// multiplies instead of a hardware divide on the delivery hot path.
	hi, _ := bits.Mul64(n.modM*uint64(uint32(v)), uint64(kk))
	return int(hi)
}

// Reset returns the network to its just-constructed state while retaining
// all storage, so a reused network allocates nothing on re-run: registered
// processes stay, every mailbox keeps its link table and each link keeps
// its ring-buffer capacity (pending message slots are simply forgotten —
// they hold no pointers), the ready list is cleared in place, the delivery
// counters and the bad-send latch are zeroed, and the RNG is reseeded. A
// reset network runs bit-for-bit identically to a freshly built one with
// the same seed and processes.
func (n *Network) Reset(seed int64) {
	n.curSeed = seed
	if n.sh == nil {
		n.reseed(seed)
	}
	for b := range n.nodes {
		n.nodes[b].pend = false
	}
	n.links.reset()
	n.ready = n.ready[:0]
	n.delivered = 0
	n.sent = 0
	n.badSend = nil
	if n.sh != nil {
		// Sharded mode leaves the legacy source untouched (per-cell streams
		// replace it); switching back to legacy with SetShards(0) reseeds on
		// the next Reset.
		n.shardReset(seed)
	}
}

// reseed puts the source in the same state Seed(seed) would, preferring a
// snapshot copy when the same seed repeats — the warm sweep engine resets
// thousands of episodes with one seed, and the copy is ~20x cheaper than
// math/rand's seed scramble. The first Reset with a new seed pays one Seed
// plus one snapshot allocation; warm repeats allocate nothing.
func (n *Network) reseed(seed int64) {
	if n.fastOK && n.pristineSeed == seed {
		n.fast = n.fastPristine
		return
	}
	n.src.Seed(seed)
	if captureALFG(n.src, &n.fast) {
		n.fastPristine = n.fast
		n.fastOK = true
		n.havePristine = false
		n.pristineSeed = seed
		return
	}
	n.fastOK = false
	// Capture spends draws; restore the pristine seeded state.
	n.src.Seed(seed)
	if seedByCopy {
		if n.havePristine && n.pristineSeed == seed {
			reflect.ValueOf(n.src).Elem().Set(n.pristine)
			return
		}
		v := reflect.ValueOf(n.src)
		n.pristine = reflect.New(v.Type().Elem()).Elem()
		n.pristine.Set(v.Elem())
		n.pristineSeed = seed
		n.havePristine = true
	}
}

// Add registers a process under id.
func (n *Network) Add(id NodeID, p Process) error {
	if p == nil {
		return fmt.Errorf("sim: nil process for node %d", id)
	}
	if id < 0 {
		return fmt.Errorf("sim: node id %d must be non-negative", id)
	}
	for int(id) >= len(n.nodes) {
		n.nodes = append(n.nodes, node{})
	}
	if n.nodes[id].proc != nil {
		return fmt.Errorf("sim: duplicate node id %d", id)
	}
	n.nodes[id].proc = p
	return nil
}

// Context is the capability handed to a process while it handles a message.
// It is pooled: the network rewrites one Context per delivery, so it is only
// valid for the duration of the OnMessage call it was passed to — processes
// must not retain it.
type Context struct {
	net  *Network
	self NodeID
	// shard is the executing shard in sharded mode (each shard owns one
	// Context, so parallel handlers never share one); nil under the legacy
	// scheduler.
	shard *shard
}

// Self returns the id of the process being invoked.
func (c *Context) Self() NodeID { return c.self }

// Shard returns the index of the shard executing this delivery, or 0 under
// the legacy scheduler. Hosts that buffer writes per shard (the online
// layer's blackboard) use it to pick their buffer.
func (c *Context) Shard() int {
	if c.shard == nil {
		return 0
	}
	return int(c.shard.id)
}

// Send enqueues a message from the current process to another node.
func (c *Context) Send(to NodeID, msg Msg) {
	if c.shard != nil {
		c.shard.send(c.self, to, msg)
		return
	}
	c.net.enqueue(c.self, to, msg)
}

// Sender is the minimal sending capability, implemented by *Context;
// protocol engines (package diffuse) depend only on this.
type Sender interface {
	Self() NodeID
	Send(to NodeID, msg Msg)
}

var _ Sender = (*Context)(nil)

// known reports whether id addresses a registered process.
func (n *Network) known(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes) && n.nodes[id].proc != nil
}

// queueFor resolves (to, from) to the link's slot and entry, appending the
// link on first contact. The scan walks the node's slot table — in-degree
// entries, a handful per node — and callers cache the slot or entry
// pointer, so it stays off hot paths.
func (n *Network) queueFor(to, from NodeID) (int32, *linkQueue) {
	mb := &n.nodes[to]
	for s, q := range mb.linkQs {
		if q.from == from {
			return int32(s), q
		}
	}
	return n.addLink(to, from)
}

// addLink appends a link on first contact between a pair — once per pair, so
// kept out of queueFor to leave the hot scan within the inlining budget.
//
//go:noinline
func (n *Network) addLink(to, from NodeID) (int32, *linkQueue) {
	mb := &n.nodes[to]
	q := n.links.alloc()
	q.from = from
	q.to = to
	q.proc = mb.proc
	slot := int32(len(mb.linkQs))
	mb.linkQs = append(mb.linkQs, q)
	return slot, q
}

// Inject delivers an external event into a node's input buffer, e.g. a job
// arrival. from is recorded as None. Injecting to an id with no registered
// process latches a deferred error surfaced by the next Step — the same
// discipline as an in-protocol send to an invalid id — instead of silently
// enqueuing a message that errors only if and when the scheduler draws it.
func (n *Network) Inject(to NodeID, msg Msg) {
	if !n.known(to) {
		if n.badSend == nil {
			n.badSend = fmt.Errorf("sim: inject to unknown node %d", to)
		}
		return
	}
	if n.sh != nil {
		n.shardInject(to, msg)
		return
	}
	n.injectKnown(to, msg)
}

// InjectMany enqueues one message to every listed node, in order. It is
// exactly equivalent — same queue contents, same ready-list order, hence the
// same delivery schedule — to calling Inject(id, msg) for each id, but
// writes the wave directly into each mailbox's cached injection slot: no
// slot scan, no per-node revalidation beyond the unknown-id check. The
// online layer's monitoring rounds use it for their two full-arena waves.
func (n *Network) InjectMany(ids []NodeID, msg Msg) {
	if n.sh != nil {
		for _, to := range ids {
			if !n.known(to) {
				if n.badSend == nil {
					n.badSend = fmt.Errorf("sim: inject to unknown node %d", to)
				}
				continue
			}
			n.shardInject(to, msg)
		}
		return
	}
	for _, to := range ids {
		if !n.known(to) {
			if n.badSend == nil {
				n.badSend = fmt.Errorf("sim: inject to unknown node %d", to)
			}
			continue
		}
		n.injectKnown(to, msg)
	}
}

// listReady reserves one ready-list entry and returns it for the caller to
// fill in place. Appending a composite literal instead materializes the
// 40-byte entry on the stack and copies it over — measurable at
// injection-wave rates — so the two listing sites write their fields
// straight into the reserved slot.
func (n *Network) listReady() *readyHead {
	if len(n.ready) == cap(n.ready) {
		n.ready = append(n.ready, readyHead{})
	} else {
		n.ready = n.ready[:len(n.ready)+1]
	}
	return &n.ready[len(n.ready)-1]
}

// injectKnown enqueues from the external (None) link of a validated id.
func (n *Network) injectKnown(to NodeID, msg Msg) {
	mb := &n.nodes[to]
	q := mb.injectQ
	if q == nil {
		_, q = n.queueFor(to, None)
		mb.injectQ = q
	}
	if !q.listed {
		// 0→1 transition: the message becomes the link's head, written into
		// the ready list's hot array; the ring is not touched.
		q.listed = true
		h := n.listReady()
		h.msg = msg
		h.q = q
		h.to = to
		h.from = None
	} else {
		if int(q.count) == len(q.buf) {
			q.grow()
		}
		q.buf[uint32(q.head+q.count)&uint32(len(q.buf)-1)] = msg
		q.count++
	}
	n.sent++
}

// latchBadSend records the first send to an invalid or unknown node id.
// Kept out of enqueue so enqueue's frame carries no fmt vararg slots.
//
//go:noinline
func (n *Network) latchBadSend(to NodeID) {
	if n.badSend == nil {
		if to < 0 {
			n.badSend = fmt.Errorf("sim: message to invalid node %d", to)
		} else {
			n.badSend = fmt.Errorf("sim: message to unknown node %d", to)
		}
	}
}

// stepLimitErr builds Run's budget error. Kept out of Run so the delivery
// loop's frame carries no fmt vararg slots.
//
//go:noinline
func stepLimitErr(maxSteps int64) error {
	return fmt.Errorf("%w (after %d deliveries)", ErrStepLimit, maxSteps)
}

func (n *Network) enqueue(from, to NodeID, msg Msg) {
	// Cached-slot fast path: most nodes hear overwhelmingly from one
	// neighbor, and queueFor's scan loop keeps it from inlining here. An
	// existing link proves its owner was validated when the link was
	// created (links are only added below, after the known check), so the
	// dominant path needs just the bounds test — not the proc load.
	var q *linkQueue
	if uint(int(to)) < uint(len(n.nodes)) {
		mb := &n.nodes[to]
		if s := mb.recvSlot; int(s) < len(mb.linkQs) && mb.linkQs[s].from == from {
			q = mb.linkQs[s]
		} else if mb.proc != nil {
			var s int32
			s, q = n.queueFor(to, from)
			mb.recvSlot = s
		}
	}
	if q == nil {
		// Latch the first bad send (negative or unregistered id) and drop
		// the message; the next Step surfaces it. Validating here keeps
		// deliver infallible: everything queued has a registered
		// destination.
		n.latchBadSend(to)
		return
	}
	if !q.listed {
		// 0→1 transition: the message becomes the link's head, written
		// straight into the ready list's hot array — the dominant send
		// shape at protocol fan-outs, and it never touches the ring buffer.
		q.listed = true
		h := n.listReady()
		h.msg = msg
		h.q = q
		h.to = to
		h.from = from
	} else {
		// Overflow behind an undelivered head: push, by hand (the inliner
		// refuses push because of its grow call, and the call overhead is
		// measurable at this send rate).
		if int(q.count) == len(q.buf) {
			q.grow()
		}
		q.buf[uint32(q.head+q.count)&uint32(len(q.buf)-1)] = msg
		q.count++
	}
	n.sent++
}

// deliver pops the head of ready entry i and hands it to the destination
// process. Exact ready-list maintenance: a link enters the list when its
// queue turns nonempty and leaves here, at its known index, the moment it
// drains — no stale entries, no compaction scans. Destinations were
// validated when the message was enqueued, so delivery cannot fail.
func (n *Network) deliver(i int) {
	h := &n.ready[i]
	q := h.q
	m := h.msg
	to, from := h.to, h.from
	if q.count > 0 {
		// Refill: promote the ring's head into the entry's hot slot (pop,
		// by hand); the entry keeps its position, preserving pick order.
		h.msg = q.buf[q.head]
		q.head = (q.head + 1) & int32(len(q.buf)-1)
		q.count--
	} else {
		q.listed = false
		last := len(n.ready) - 1
		n.ready[i] = n.ready[last]
		n.ready = n.ready[:last]
	}
	n.delivered++
	n.ctx.self = to
	q.proc.OnMessage(&n.ctx, from, m)
}

// Step delivers one pending message (if any) and reports whether it did.
//
// RNG draw discipline: every delivery consumes exactly one seeded draw. When
// more than one link is ready the draw picks the link; when exactly one is
// ready the choice is forced, but the draw is still consumed (intn(1) burns
// one source value), keeping the stream — and therefore every later pick —
// bit-for-bit aligned with the historical one-draw-per-delivery scheduler.
// Run's burst path relies on this equivalence.
func (n *Network) Step() (bool, error) {
	if n.sh != nil {
		return n.stepSharded()
	}
	if n.badSend != nil {
		return false, n.badSend
	}
	if len(n.ready) == 0 {
		return false, nil
	}
	n.deliver(n.intn(len(n.ready)))
	return true, nil
}

// Run delivers messages until the network quiesces (no pending messages) or
// maxSteps deliveries have happened, in which case ErrStepLimit is returned.
//
// Delivery is burst-oriented: while exactly one link is ready the scheduler
// has no choice to make, so Run drains that run of messages in a tight loop
// — still consuming one seeded draw per delivery (see Step) so the delivery
// schedule is bit-for-bit identical to stepping one message at a time,
// which TestRunMatchesStepByStep pins.
func (n *Network) Run(maxSteps int64) error {
	if n.sh != nil {
		return n.runSharded(maxSteps)
	}
	for steps := int64(0); ; {
		if n.badSend != nil {
			return n.badSend
		}
		// Burst: a singleton ready list forces the pick. Deliveries during
		// the burst may enqueue onto other links (ending the burst) or latch
		// a bad send (checked per delivery, as Step would).
		for len(n.ready) == 1 && n.badSend == nil {
			if steps >= maxSteps {
				return stepLimitErr(maxSteps)
			}
			// The draw intn(1) would consume; keeps streams aligned.
			if n.fastOK {
				n.fast.next()
			} else {
				n.src.Int63()
			}
			// deliver(0), by hand, with the swap-remove specialized to the
			// singleton ready list (deliver stays a call; at this rate the
			// call overhead alone is measurable). The hot-array pointer is
			// re-taken every iteration: OnMessage may list links and grow
			// the backing array.
			h := &n.ready[0]
			q := h.q
			m := h.msg
			to, from := h.to, h.from
			if q.count > 0 {
				h.msg = q.buf[q.head]
				q.head = (q.head + 1) & int32(len(q.buf)-1)
				q.count--
			} else {
				q.listed = false
				n.ready = n.ready[:0]
			}
			n.delivered++
			n.ctx.self = to
			q.proc.OnMessage(&n.ctx, from, m)
			steps++
		}
		if n.badSend != nil {
			return n.badSend
		}
		if len(n.ready) == 0 {
			return nil
		}
		if steps >= maxSteps {
			return stepLimitErr(maxSteps)
		}
		// deliver(intn(len(ready))), by hand — same body as deliver, with
		// intn's power-of-two mask path (the common ready-list shapes)
		// inlined ahead of the general call.
		var i int
		if k := int32(len(n.ready)); k&(k-1) == 0 {
			var x int64
			if n.fastOK {
				x = n.fast.next()
			} else {
				x = n.src.Int63()
			}
			i = int(int32(x>>32) & (k - 1))
		} else {
			// intn's rejection + fastmod path, by hand (intn's draw loop
			// keeps it from inlining, and at one draw per delivery the call
			// overhead is measurable).
			if k != n.modK {
				n.modK = k
				n.modMaxv = int32((1 << 31) - 1 - (1<<31)%uint32(k))
				n.modM = ^uint64(0)/uint64(k) + 1
			}
			var x int64
			if n.fastOK {
				x = n.fast.next()
			} else {
				x = n.src.Int63()
			}
			v := int32(x >> 32)
			for v > n.modMaxv {
				if n.fastOK {
					x = n.fast.next()
				} else {
					x = n.src.Int63()
				}
				v = int32(x >> 32)
			}
			hi, _ := bits.Mul64(n.modM*uint64(uint32(v)), uint64(k))
			i = int(hi)
		}
		h := &n.ready[i]
		q := h.q
		m := h.msg
		to, from := h.to, h.from
		if q.count > 0 {
			h.msg = q.buf[q.head]
			q.head = (q.head + 1) & int32(len(q.buf)-1)
			q.count--
		} else {
			q.listed = false
			last := len(n.ready) - 1
			n.ready[i] = n.ready[last]
			n.ready = n.ready[:last]
		}
		n.delivered++
		n.ctx.self = to
		q.proc.OnMessage(&n.ctx, from, m)
		steps++
	}
}

// Delivered returns the number of messages delivered so far — the message
// complexity metric for experiment E8.
func (n *Network) Delivered() int64 { return n.delivered }

// Sent returns the number of messages enqueued so far.
func (n *Network) Sent() int64 { return n.sent }

// Pending returns the number of undelivered messages.
func (n *Network) Pending() int64 { return n.sent - n.delivered }
