package sim

import (
	"errors"
	"testing"
)

// echoProc replies "ack" to every "ping" and records deliveries.
type echoProc struct {
	got []Message
}

func (e *echoProc) OnMessage(ctx *Context, from NodeID, msg Message) {
	e.got = append(e.got, msg)
	if msg == "ping" && from != None {
		ctx.Send(from, "ack")
	}
}

type silentProc struct{ got []Message }

func (s *silentProc) OnMessage(_ *Context, _ NodeID, msg Message) {
	s.got = append(s.got, msg)
}

func TestAddValidation(t *testing.T) {
	n := NewNetwork(1)
	if err := n.Add(1, nil); err == nil {
		t.Error("nil process should fail")
	}
	if err := n.Add(1, &silentProc{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(1, &silentProc{}); err == nil {
		t.Error("duplicate id should fail")
	}
}

func TestInjectAndQuiesce(t *testing.T) {
	n := NewNetwork(1)
	p := &silentProc{}
	if err := n.Add(7, p); err != nil {
		t.Fatal(err)
	}
	n.Inject(7, "hello")
	n.Inject(7, "world")
	if err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(p.got) != 2 || p.got[0] != "hello" || p.got[1] != "world" {
		t.Fatalf("got %v", p.got)
	}
	if n.Delivered() != 2 || n.Pending() != 0 {
		t.Errorf("delivered=%d pending=%d", n.Delivered(), n.Pending())
	}
}

func TestPingAck(t *testing.T) {
	n := NewNetwork(2)
	a, b := &echoProc{}, &echoProc{}
	if err := n.Add(1, a); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(2, b); err != nil {
		t.Fatal(err)
	}
	n.Inject(1, "go") // a does nothing with "go"
	// Make a ping b by sending a ping from node 2's perspective: inject a
	// "ping" to b with from recorded as None does not ack; instead deliver a
	// ping from a to b through a's handler.
	n.Inject(2, "ping") // from None: no ack expected
	if err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 1 {
		t.Fatalf("b got %v", b.got)
	}
	if len(a.got) != 1 {
		t.Fatalf("a got %v", a.got)
	}
}

// chainProc forwards a counter down a chain until it hits zero.
type chainProc struct {
	next NodeID
	seen int
}

func (c *chainProc) OnMessage(ctx *Context, _ NodeID, msg Message) {
	k, ok := msg.(int)
	if !ok {
		return
	}
	c.seen++
	if k > 0 && c.next != None {
		ctx.Send(c.next, k-1)
	}
}

func TestChainDeterminism(t *testing.T) {
	run := func(seed int64) int64 {
		n := NewNetwork(seed)
		const hops = 50
		for i := 0; i < hops; i++ {
			next := NodeID(i + 1)
			if i == hops-1 {
				next = None
			}
			if err := n.Add(NodeID(i), &chainProc{next: next}); err != nil {
				t.Fatal(err)
			}
		}
		n.Inject(0, hops)
		if err := n.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return n.Delivered()
	}
	if run(3) != run(3) {
		t.Error("same seed must give identical delivery counts")
	}
	if run(3) != 50 {
		t.Errorf("chain should deliver 50 messages, got %d", run(3))
	}
}

func TestPerLinkFIFO(t *testing.T) {
	// Two streams into one node over the same link must stay ordered even
	// when many other links churn.
	n := NewNetwork(99)
	sink := &silentProc{}
	if err := n.Add(0, sink); err != nil {
		t.Fatal(err)
	}
	noise := &silentProc{}
	if err := n.Add(1, noise); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		n.Inject(0, i)
		n.Inject(1, i)
	}
	if err := n.Run(1000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if sink.got[i] != i {
			t.Fatalf("FIFO violated at %d: %v", i, sink.got[i])
		}
	}
}

// loopProc sends to itself forever — a livelock the step limit must catch.
type loopProc struct{}

func (loopProc) OnMessage(ctx *Context, _ NodeID, msg Message) {
	ctx.Send(ctx.Self(), msg)
}

func TestStepLimit(t *testing.T) {
	n := NewNetwork(5)
	if err := n.Add(1, loopProc{}); err != nil {
		t.Fatal(err)
	}
	n.Inject(1, "spin")
	err := n.Run(100)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
}

func TestUnknownRecipient(t *testing.T) {
	n := NewNetwork(5)
	n.Inject(42, "lost")
	if err := n.Run(10); err == nil {
		t.Error("message to unknown node should error")
	}
}

func TestStepOnEmptyNetwork(t *testing.T) {
	n := NewNetwork(5)
	progressed, err := n.Step()
	if err != nil || progressed {
		t.Errorf("empty step: %v %v", progressed, err)
	}
}

// TestInjectManyEquivalentToInjectLoop pins the InjectMany contract: same
// queue contents, same ready-list order, same sent counter — and therefore
// the same delivery schedule — as calling Inject per id.
func TestInjectManyEquivalentToInjectLoop(t *testing.T) {
	ids := []NodeID{3, 0, 2, 1, 3, 0}
	build := func(batch bool) (*Network, []*silentProc) {
		n := NewNetwork(77)
		procs := make([]*silentProc, 4)
		for i := range procs {
			procs[i] = &silentProc{}
			if err := n.Add(NodeID(i), procs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if batch {
			n.InjectMany(ids, "wave")
		} else {
			for _, id := range ids {
				n.Inject(id, "wave")
			}
		}
		return n, procs
	}
	nb, pb := build(true)
	nl, pl := build(false)
	if nb.Sent() != nl.Sent() || nb.Sent() != int64(len(ids)) {
		t.Fatalf("sent %d (batch) vs %d (loop), want %d", nb.Sent(), nl.Sent(), len(ids))
	}
	// Same seed + same enqueue order => the randomized delivery schedules
	// replay identically, delivering per-process streams in the same order.
	if err := nb.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := nl.Run(100); err != nil {
		t.Fatal(err)
	}
	for i := range pb {
		if len(pb[i].got) != len(pl[i].got) {
			t.Fatalf("node %d: %d msgs (batch) vs %d (loop)", i, len(pb[i].got), len(pl[i].got))
		}
	}
	if nb.Delivered() != nl.Delivered() {
		t.Errorf("delivered %d vs %d", nb.Delivered(), nl.Delivered())
	}
}

// TestInjectManyBadIDLatches pins that a negative id in the batch latches
// the bad-send error exactly like Inject, while later ids still enqueue.
func TestInjectManyBadIDLatches(t *testing.T) {
	n := NewNetwork(1)
	p := &silentProc{}
	if err := n.Add(0, p); err != nil {
		t.Fatal(err)
	}
	n.InjectMany([]NodeID{0, -1, 0}, "x")
	if n.Sent() != 2 {
		t.Errorf("sent = %d, want 2 (negative id skipped)", n.Sent())
	}
	if err := n.Run(100); err == nil {
		t.Error("bad-send latch should surface on Run")
	}
}
