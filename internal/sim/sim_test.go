package sim

import (
	"errors"
	"testing"
)

// Test message kinds (the 32..127 range reserved for tests by the Msg doc).
const (
	kindPing uint8 = iota + 32 // request: echoProc answers with kindAck
	kindAck
	kindToken // A: remaining hop count
	kindWave  // broadcast payload for the InjectMany tests
	kindText  // A: an arbitrary test marker value
)

func ping() Msg              { return Msg{Kind: kindPing} }
func token(k uint32) Msg     { return Msg{Kind: kindToken, A: k} }
func text(marker uint32) Msg { return Msg{Kind: kindText, A: marker} }

// echoProc replies kindAck to every kindPing and records deliveries.
type echoProc struct {
	got []Msg
}

func (e *echoProc) OnMessage(ctx *Context, from NodeID, msg Msg) {
	e.got = append(e.got, msg)
	if msg.Kind == kindPing && from != None {
		ctx.Send(from, Msg{Kind: kindAck})
	}
}

type silentProc struct{ got []Msg }

func (s *silentProc) OnMessage(_ *Context, _ NodeID, msg Msg) {
	s.got = append(s.got, msg)
}

func TestAddValidation(t *testing.T) {
	n := NewNetwork(1)
	if err := n.Add(1, nil); err == nil {
		t.Error("nil process should fail")
	}
	if err := n.Add(1, &silentProc{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(1, &silentProc{}); err == nil {
		t.Error("duplicate id should fail")
	}
}

func TestInjectAndQuiesce(t *testing.T) {
	n := NewNetwork(1)
	p := &silentProc{}
	if err := n.Add(7, p); err != nil {
		t.Fatal(err)
	}
	n.Inject(7, text(1))
	n.Inject(7, text(2))
	if err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(p.got) != 2 || p.got[0] != text(1) || p.got[1] != text(2) {
		t.Fatalf("got %v", p.got)
	}
	if n.Delivered() != 2 || n.Pending() != 0 {
		t.Errorf("delivered=%d pending=%d", n.Delivered(), n.Pending())
	}
}

func TestPingAck(t *testing.T) {
	n := NewNetwork(2)
	a, b := &echoProc{}, &echoProc{}
	if err := n.Add(1, a); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(2, b); err != nil {
		t.Fatal(err)
	}
	n.Inject(1, text(0)) // a does nothing with a non-ping
	// An injected ping has from = None, so no ack is expected.
	n.Inject(2, ping())
	if err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 1 {
		t.Fatalf("b got %v", b.got)
	}
	if len(a.got) != 1 {
		t.Fatalf("a got %v", a.got)
	}
}

// chainProc forwards a token down a chain until its count hits zero.
type chainProc struct {
	next NodeID
	seen int
}

func (c *chainProc) OnMessage(ctx *Context, _ NodeID, msg Msg) {
	if msg.Kind != kindToken {
		return
	}
	c.seen++
	if msg.A > 0 && c.next != None {
		ctx.Send(c.next, token(msg.A-1))
	}
}

func TestChainDeterminism(t *testing.T) {
	run := func(seed int64) int64 {
		n := NewNetwork(seed)
		const hops = 50
		for i := 0; i < hops; i++ {
			next := NodeID(i + 1)
			if i == hops-1 {
				next = None
			}
			if err := n.Add(NodeID(i), &chainProc{next: next}); err != nil {
				t.Fatal(err)
			}
		}
		n.Inject(0, token(hops))
		if err := n.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return n.Delivered()
	}
	if run(3) != run(3) {
		t.Error("same seed must give identical delivery counts")
	}
	if run(3) != 50 {
		t.Errorf("chain should deliver 50 messages, got %d", run(3))
	}
}

func TestPerLinkFIFO(t *testing.T) {
	// Two streams into one node over the same link must stay ordered even
	// when many other links churn.
	n := NewNetwork(99)
	sink := &silentProc{}
	if err := n.Add(0, sink); err != nil {
		t.Fatal(err)
	}
	noise := &silentProc{}
	if err := n.Add(1, noise); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		n.Inject(0, token(uint32(i)))
		n.Inject(1, token(uint32(i)))
	}
	if err := n.Run(1000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if sink.got[i].A != uint32(i) {
			t.Fatalf("FIFO violated at %d: %v", i, sink.got[i])
		}
	}
}

// loopProc sends to itself forever — a livelock the step limit must catch.
type loopProc struct{}

func (loopProc) OnMessage(ctx *Context, _ NodeID, msg Msg) {
	ctx.Send(ctx.Self(), msg)
}

func TestStepLimit(t *testing.T) {
	n := NewNetwork(5)
	if err := n.Add(1, loopProc{}); err != nil {
		t.Fatal(err)
	}
	n.Inject(1, text(7))
	err := n.Run(100)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
}

func TestUnknownRecipient(t *testing.T) {
	n := NewNetwork(5)
	n.Inject(42, text(1))
	if err := n.Run(10); err == nil {
		t.Error("message to unknown node should error")
	}
}

// TestInjectUnknownLatchesDeferredError is the regression test for the
// Inject/Step consistency fix: injecting to a node id with no registered
// process must latch the same deferred-error state a bad in-protocol send
// does — nothing is enqueued, and the next Step (or Run) reports the error
// even though the ready list is empty — instead of silently enqueuing a
// message that only errors if the scheduler happens to draw it.
func TestInjectUnknownLatchesDeferredError(t *testing.T) {
	n := NewNetwork(5)
	p := &silentProc{}
	if err := n.Add(0, p); err != nil {
		t.Fatal(err)
	}
	n.Inject(3, text(1)) // id 3 was never Added
	if n.Sent() != 0 {
		t.Errorf("unknown-id inject enqueued: sent=%d, want 0", n.Sent())
	}
	if _, err := n.Step(); err == nil {
		t.Error("Step after unknown-id inject must surface the latched error")
	}
	// Run must also report it rather than declaring quiescence.
	if err := n.Run(100); err == nil {
		t.Error("Run after unknown-id inject must error, not quiesce")
	}
	// InjectMany applies the same rule per id: valid ids enqueue, the
	// unknown one latches.
	n2 := NewNetwork(5)
	if err := n2.Add(0, &silentProc{}); err != nil {
		t.Fatal(err)
	}
	n2.InjectMany([]NodeID{0, 9, 0}, text(2))
	if n2.Sent() != 2 {
		t.Errorf("sent = %d, want 2 (unknown id skipped)", n2.Sent())
	}
	if err := n2.Run(100); err == nil {
		t.Error("InjectMany with an unknown id must surface on Run")
	}
	// Reset clears the latch and the network is usable again.
	n2.Reset(5)
	n2.Inject(0, text(3))
	if err := n2.Run(100); err != nil {
		t.Fatalf("post-reset run: %v", err)
	}
}

func TestStepOnEmptyNetwork(t *testing.T) {
	n := NewNetwork(5)
	progressed, err := n.Step()
	if err != nil || progressed {
		t.Errorf("empty step: %v %v", progressed, err)
	}
}

// TestInjectManyEquivalentToInjectLoop pins the InjectMany contract: same
// queue contents, same ready-list order, same sent counter — and therefore
// the same delivery schedule — as calling Inject per id.
func TestInjectManyEquivalentToInjectLoop(t *testing.T) {
	ids := []NodeID{3, 0, 2, 1, 3, 0}
	wave := Msg{Kind: kindWave, A: 9}
	build := func(batch bool) (*Network, []*silentProc) {
		n := NewNetwork(77)
		procs := make([]*silentProc, 4)
		for i := range procs {
			procs[i] = &silentProc{}
			if err := n.Add(NodeID(i), procs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if batch {
			n.InjectMany(ids, wave)
		} else {
			for _, id := range ids {
				n.Inject(id, wave)
			}
		}
		return n, procs
	}
	nb, pb := build(true)
	nl, pl := build(false)
	if nb.Sent() != nl.Sent() || nb.Sent() != int64(len(ids)) {
		t.Fatalf("sent %d (batch) vs %d (loop), want %d", nb.Sent(), nl.Sent(), len(ids))
	}
	// Same seed + same enqueue order => the randomized delivery schedules
	// replay identically, delivering per-process streams in the same order.
	if err := nb.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := nl.Run(100); err != nil {
		t.Fatal(err)
	}
	for i := range pb {
		if len(pb[i].got) != len(pl[i].got) {
			t.Fatalf("node %d: %d msgs (batch) vs %d (loop)", i, len(pb[i].got), len(pl[i].got))
		}
	}
	if nb.Delivered() != nl.Delivered() {
		t.Errorf("delivered %d vs %d", nb.Delivered(), nl.Delivered())
	}
}

// TestInjectManyBadIDLatches pins that a negative id in the batch latches
// the bad-send error exactly like Inject, while later ids still enqueue.
func TestInjectManyBadIDLatches(t *testing.T) {
	n := NewNetwork(1)
	p := &silentProc{}
	if err := n.Add(0, p); err != nil {
		t.Fatal(err)
	}
	n.InjectMany([]NodeID{0, -1, 0}, text(4))
	if n.Sent() != 2 {
		t.Errorf("sent = %d, want 2 (negative id skipped)", n.Sent())
	}
	if err := n.Run(100); err == nil {
		t.Error("bad-send latch should surface on Run")
	}
}
