package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Persistent shard workers.
//
// The first sharded engine spawned one goroutine per shard per phase — 2×S
// goroutine creations plus two fresh WaitGroup cycles every round, a cost
// the benchmarks could see even at S=1 because sealed rounds are short (a
// lone token chain delivers ~S messages per round). This pool replaces the
// spawning with long-lived workers parked on buffered wake channels, with
// two structural changes on top:
//
//   - The pool is sized to the host, not the shard count: W =
//     min(shards, GOMAXPROCS) participants, each owning a contiguous block
//     of shards per round. Goroutines beyond the core count cannot add
//     parallelism — they only add hand-offs — so a 1-core host runs W=1
//     (the coordinator plays and merges every stripe itself, with no
//     cross-goroutine crossings at all) while an N-core host gets exactly
//     the barrier it can use. The width is fixed at pool creation
//     (SetShards); a later GOMAXPROCS change takes effect on the next
//     reshard.
//   - The coordinator joins the round as the first participant instead of
//     sleeping through it (caller-joins), so only W-1 goroutines exist and
//     a round costs two coordinator-visible barrier crossings: W-1 channel
//     sends to wake the workers, then one receive when the last merge
//     lands. The play→merge hand-off in between is internal — the last
//     participant out of the play phase re-arms the phase counter and
//     releases everyone (itself included) through per-participant flip
//     channels — so all plays still complete strictly before any merge
//     begins.
//
// Scheduling stays bit-identical by the sealed-round argument: every
// delivery order the engine fixes is per-cell, phases never overlap, and
// neither the shard→participant assignment nor the within-block play order
// is observable (the sequential engine already plays ascending stripes, and
// blocks are ascending too).
//
// Memory model: the coordinator's wake send happens-before the worker's
// round (pre-round injections and hook effects are visible to handlers);
// every playRound happens-before every mergeRound via the playLeft atomic
// countdown plus the flip-channel sends that follow its zero crossing; and
// every mergeRound happens-before the coordinator's done receive via the
// mergeLeft countdown plus the done send — the same edges the per-phase
// WaitGroups used to provide.
//
// Teardown: the pool deliberately holds no reference to the Network. A wake
// channel carries a block of shards per round and the worker clears the
// slice before re-parking, so a parked pool keeps nothing of the network
// alive; an abandoned Network (dropped without SetShards(0) or a reshard)
// becomes unreachable as usual, and the runtime.AddCleanup hook registered
// at pool creation closes the wake channels and lets the workers exit.
type shardWorkers struct {
	// wake[i] (buffered 1) carries worker i's shard block once per round
	// (worker i owns block i+1; the coordinator owns block 0); closing it
	// terminates the worker.
	wake []chan []shard
	// flip (buffered 1 each) releases the participants from the internal
	// play→merge barrier: slot i for worker i, the last slot for the
	// coordinator. The last participant out of the play phase fills all of
	// them.
	flip []chan struct{}
	// done (buffered 1) is filled by the last participant out of the merge
	// phase — one coordinator wakeup per round (a self-delivery when the
	// coordinator merges last).
	done chan struct{}
	// playLeft/mergeLeft count down the participants still inside the
	// current phase; whoever takes a counter to zero re-arms it for the
	// next round before releasing anyone, so the counters are always at
	// their starting value when a round begins.
	playLeft  atomic.Int32
	mergeLeft atomic.Int32

	n       int32 // participants: len(wake) workers + the coordinator
	once    sync.Once
	cleanup runtime.Cleanup
}

// newShardWorkers sizes the pool to min(count, GOMAXPROCS) participants and
// starts the W-1 parked workers (the coordinator is the W-th), plus a GC
// hook that tears them down if net is collected without an explicit
// teardown.
func newShardWorkers(net *Network, count int) *shardWorkers {
	w := runtime.GOMAXPROCS(0)
	if w > count {
		w = count
	}
	if w < 1 {
		w = 1
	}
	p := &shardWorkers{
		wake: make([]chan []shard, w-1),
		flip: make([]chan struct{}, w),
		done: make(chan struct{}, 1),
		n:    int32(w),
	}
	p.playLeft.Store(p.n)
	p.mergeLeft.Store(p.n)
	for i := range p.flip {
		p.flip[i] = make(chan struct{}, 1)
	}
	for i := range p.wake {
		p.wake[i] = make(chan []shard, 1)
		go p.work(i)
	}
	p.cleanup = runtime.AddCleanup(net, (*shardWorkers).stop, p)
	return p
}

// round plays one sealed round across all shards: wake the workers with
// their blocks, join as the first participant, wait for the last merge.
// Zero allocations.
func (p *shardWorkers) round(shards []shard) {
	w := int(p.n)
	if w == 1 {
		// Degenerate width (single-core host): the coordinator is the only
		// participant — no counters, no crossings, just the two phase loops.
		for i := range shards {
			shards[i].playRound()
		}
		for i := range shards {
			shards[i].mergeRound()
		}
		return
	}
	per := (len(shards) + w - 1) / w
	for j := 1; j < w; j++ {
		lo := min(j*per, len(shards))
		p.wake[j-1] <- shards[lo:min(lo+per, len(shards))]
	}
	mine := shards[:per]
	for i := range mine {
		mine[i].playRound()
	}
	if p.playLeft.Add(-1) == 0 {
		p.playLeft.Store(p.n)
		for _, c := range p.flip {
			c <- struct{}{}
		}
	}
	<-p.flip[w-1]
	for i := range mine {
		mine[i].mergeRound()
	}
	if p.mergeLeft.Add(-1) == 0 {
		p.mergeLeft.Store(p.n)
		p.done <- struct{}{}
	}
	<-p.done
}

// work is one worker's loop: park, play its block, cross the internal
// barrier, merge the block, signal if last, re-park.
func (p *shardWorkers) work(i int) {
	wake, flip := p.wake[i], p.flip[i]
	for {
		blk, ok := <-wake
		if !ok {
			return
		}
		for i := range blk {
			blk[i].playRound()
		}
		if p.playLeft.Add(-1) == 0 {
			p.playLeft.Store(p.n)
			for _, c := range p.flip {
				c <- struct{}{}
			}
		}
		<-flip
		for i := range blk {
			blk[i].mergeRound()
		}
		// Drop the block before re-parking so the parked pool roots nothing
		// of the network (GC-driven teardown depends on it). Done before
		// the final countdown: after the done send the coordinator may drop
		// the network at any moment.
		blk = nil
		_ = blk
		if p.mergeLeft.Add(-1) == 0 {
			p.mergeLeft.Store(p.n)
			p.done <- struct{}{}
		}
	}
}

// stop terminates the workers and cancels the GC hook. Idempotent, and safe
// from the cleanup goroutine itself.
func (p *shardWorkers) stop() {
	p.once.Do(func() {
		p.cleanup.Stop()
		for _, c := range p.wake {
			close(c)
		}
	})
}
