package sim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Tests for the persistent worker pool (worker.go) and the shared
// coordinator bookkeeping (foldShardTallies): pool lifecycle across
// reshard/reuse/teardown, GC-driven teardown of abandoned pools, schedule
// parity between pool-driven parallel rounds and the sequential reference,
// and the bad-send first-error-wins latch.

// badSenderTo fires one message to a specific unregistered node id on every
// delivery, so concurrent shards can latch distinguishable errors.
type badSenderTo struct{ target NodeID }

func (b badSenderTo) OnMessage(ctx *Context, _ NodeID, _ Msg) {
	ctx.Send(b.target, ping())
}

// TestFoldShardTalliesBadSendFirstErrorWins pins the adoption order of the
// deferred bad-send latch: when several shards latch an error in the same
// round, the coordinator adopts the lowest shard's — which, stripes being
// ascending runs of ascending cells, is the first error in canonical cell
// order and therefore shard-count-invariant.
func TestFoldShardTalliesBadSendFirstErrorWins(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		n := NewNetwork(1)
		// Two cells, two stripes: cell 0 (shard 0) sends to unknown 99,
		// cell 1 (shard 1) to unknown 77 — both in the same round.
		if err := n.Add(0, badSenderTo{target: 99}); err != nil {
			t.Fatal(err)
		}
		if err := n.Add(1, badSenderTo{target: 77}); err != nil {
			t.Fatal(err)
		}
		if err := n.SetShards(2, parallel); err != nil {
			t.Fatal(err)
		}
		n.Inject(0, ping())
		n.Inject(1, ping())
		err := n.Run(100)
		if err == nil {
			t.Fatalf("parallel=%v: bad sends not surfaced", parallel)
		}
		if want := "unknown node 99"; !strings.Contains(err.Error(), want) {
			t.Fatalf("parallel=%v: adopted %q, want shard 0's %q", parallel, err, want)
		}
		// The latch must hold first-wins across later rounds too.
		if err2 := n.Run(100); err2 == nil || err2.Error() != err.Error() {
			t.Fatalf("parallel=%v: latch moved from %q to %q", parallel, err, err2)
		}
	}
}

// floodEpisode injects the standard flood workload and runs to quiescence.
func floodEpisode(t *testing.T, n *Network, cells int) {
	t.Helper()
	for j := 0; j < 6; j++ {
		n.Inject(NodeID((j*13)%cells), token(uint32(20+j*9)))
	}
	if err := n.Run(200_000); err != nil {
		t.Fatal(err)
	}
}

// waitGoroutinesAtMost polls until the process goroutine count drops to at
// most limit (worker exits are asynchronous after a pool stop).
func waitGoroutinesAtMost(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g := runtime.NumGoroutine()
		if g <= limit {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d", g, limit)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardWorkerPoolLifecycle pins the pool across every mode transition:
// parallel SetShards parks one worker per stripe; a same-count SetShards
// reuses the parked pool (the online layer reselects the scheduler every
// episode); a reshard retires the old pool and sizes a new one; flipping to
// sequential or legacy mode drains all workers.
func TestShardWorkerPoolLifecycle(t *testing.T) {
	// The pool sizes itself to min(shards, GOMAXPROCS); pin GOMAXPROCS so
	// worker counts are host-independent (1-core CI included).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	base := runtime.NumGoroutine()
	refLogs, refDel, refSent := runFlood(t, 4, 4, 31, 1, false)
	waitGoroutinesAtMost(t, base)

	logs := make([][]deliveryRecord, 16)
	n := buildFloodGrid(t, 4, 4, 31, logs)
	if err := n.SetShards(4, true); err != nil {
		t.Fatal(err)
	}
	// S-1 workers: the coordinator joins the round as shard 0's participant.
	if g := runtime.NumGoroutine(); g < base+3 {
		t.Fatalf("after SetShards(4, true): %d goroutines, want >= %d", g, base+3)
	}
	pool := n.sh.pool
	if pool == nil {
		t.Fatal("parallel mode without a worker pool")
	}

	floodEpisode(t, n, 16)
	if n.Delivered() != refDel || n.Sent() != refSent {
		t.Fatalf("pool episode delivered=%d sent=%d, want %d/%d", n.Delivered(), n.Sent(), refDel, refSent)
	}
	diffLogs(t, "pool episode", refLogs, logs)

	// Same-count reselect while the workers are parked: the pool survives.
	if err := n.SetShards(4, true); err != nil {
		t.Fatal(err)
	}
	if n.sh.pool != pool {
		t.Fatal("same-count SetShards rebuilt the worker pool")
	}
	n.Reset(31)
	for id := range logs {
		logs[id] = logs[id][:0]
	}
	floodEpisode(t, n, 16)
	diffLogs(t, "reused pool episode", refLogs, logs)

	// Reshard while parked: new stripe count, new pool, old workers drain.
	if err := n.SetShards(8, true); err != nil {
		t.Fatal(err)
	}
	if n.sh.pool == pool {
		t.Fatal("reshard kept a pool sized for the old stripe count")
	}
	waitGoroutinesAtMost(t, base+7)
	n.Reset(31)
	for id := range logs {
		logs[id] = logs[id][:0]
	}
	floodEpisode(t, n, 16)
	diffLogs(t, "resharded pool episode", refLogs, logs)

	// Parallel → sequential on the same count retires the pool...
	if err := n.SetShards(8, false); err != nil {
		t.Fatal(err)
	}
	if n.sh.pool != nil {
		t.Fatal("sequential mode kept a worker pool")
	}
	waitGoroutinesAtMost(t, base)
	// ...and legacy mode from a parallel pool drains too.
	if err := n.SetShards(8, true); err != nil {
		t.Fatal(err)
	}
	if err := n.SetShards(0, false); err != nil {
		t.Fatal(err)
	}
	waitGoroutinesAtMost(t, base)
}

// spawnAbandonedPool runs a parallel episode and drops the network without
// SetShards(0) — the pool must not keep it (or its workers) alive.
//
//go:noinline
func spawnAbandonedPool(t *testing.T) {
	logs := make([][]deliveryRecord, 16)
	n := buildFloodGrid(t, 4, 4, 3, logs)
	if err := n.SetShards(4, true); err != nil {
		t.Fatal(err)
	}
	floodEpisode(t, n, 16)
}

// TestShardWorkerPoolReleasedByGC pins the finalizer half of the pool's
// lifecycle: an abandoned parallel network becomes unreachable (parked
// workers root no network state), its cleanup stops the pool, and the
// workers exit.
func TestShardWorkerPoolReleasedByGC(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4)) // ensure workers exist
	base := runtime.NumGoroutine()
	spawnAbandonedPool(t)
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned pool still alive: %d goroutines, want <= %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardResetMidEpisodeParallel pins Reset with a live worker pool and
// sealed traffic still pending: the aborted episode leaves no residue, and
// the rerun matches the sequential reference bit for bit.
func TestShardResetMidEpisodeParallel(t *testing.T) {
	refLogs, refDel, _ := runFlood(t, 8, 6, 11, 4, false)

	logs := make([][]deliveryRecord, 48)
	n := buildFloodGrid(t, 8, 6, 11, logs)
	if err := n.SetShards(4, true); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		n.Inject(NodeID((j*13)%48), token(uint32(20+j*9)))
	}
	if err := n.Run(10); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("Run(10) = %v, want ErrStepLimit", err)
	}
	if n.Pending() == 0 {
		t.Fatal("expected pending traffic at the aborted barrier")
	}

	n.Reset(11)
	for id := range logs {
		logs[id] = logs[id][:0]
	}
	floodEpisode(t, n, 48)
	if n.Delivered() != refDel {
		t.Fatalf("post-reset delivered=%d, want %d", n.Delivered(), refDel)
	}
	diffLogs(t, "reset mid-episode", refLogs, logs)
}

// TestShardAlternatingSequentialParallelStress drives many episodes on ONE
// network while flipping execution mode and stripe count between episodes —
// the -race companion for the pool's start/reuse/retire transitions. Every
// episode must reproduce the same schedule (shard-count invariance makes
// one reference serve all configurations).
func TestShardAlternatingSequentialParallelStress(t *testing.T) {
	// Force real cross-goroutine barriers even on a single-core host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	refLogs, refDel, refSent := runFlood(t, 8, 6, 23, 1, false)

	counts := []int{4, 4, 8, 2, 8, 4, 2, 2, 8, 4, 4, 8}
	logs := make([][]deliveryRecord, 48)
	n := buildFloodGrid(t, 8, 6, 23, logs)
	for ep, shards := range counts {
		parallel := ep%2 == 1
		if err := n.SetShards(shards, parallel); err != nil {
			t.Fatalf("episode %d: %v", ep, err)
		}
		n.Reset(23)
		for id := range logs {
			logs[id] = logs[id][:0]
		}
		floodEpisode(t, n, 48)
		if n.Delivered() != refDel || n.Sent() != refSent {
			t.Fatalf("episode %d (shards=%d parallel=%v): delivered=%d sent=%d, want %d/%d",
				ep, shards, parallel, n.Delivered(), n.Sent(), refDel, refSent)
		}
		diffLogs(t, fmt.Sprintf("episode %d shards=%d parallel=%v", ep, shards, parallel), refLogs, logs)
	}
}

// TestShardParallelParityRandomized sweeps seeds × shard counts comparing
// pool-driven parallel rounds against the sequential reference — the
// fuzz-style parity net under the persistent-worker engine.
func TestShardParallelParityRandomized(t *testing.T) {
	// Force real cross-goroutine barriers even on a single-core host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for seed := int64(100); seed < 106; seed++ {
		for _, shards := range []int{2, 4, 8} {
			seqLogs, seqDel, seqSent := runFlood(t, 6, 5, seed, shards, false)
			parLogs, parDel, parSent := runFlood(t, 6, 5, seed, shards, true)
			if parDel != seqDel || parSent != seqSent {
				t.Fatalf("seed=%d shards=%d: parallel delivered=%d sent=%d, want %d/%d",
					seed, shards, parDel, parSent, seqDel, seqSent)
			}
			diffLogs(t, fmt.Sprintf("seed=%d shards=%d", seed, shards), seqLogs, parLogs)
		}
	}
}

// TestShardParallelWarmEpisodeAllocationFree extends the warm zero-alloc
// guard to pool-driven rounds: once the workers exist and capacities are
// established, a full parallel episode — reset, inject, run — allocates
// nothing (channel barrier crossings are allocation-free).
func TestShardParallelWarmEpisodeAllocationFree(t *testing.T) {
	// Force real cross-goroutine barriers even on a single-core host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const w, h = 8, 6
	logs := make([][]deliveryRecord, w*h)
	n := buildFloodGrid(t, w, h, 1, logs)
	if err := n.SetShards(4, true); err != nil {
		t.Fatal(err)
	}
	episode := func() {
		n.Reset(1)
		for id := range logs {
			logs[id] = logs[id][:0]
		}
		for j := 0; j < 6; j++ {
			n.Inject(NodeID((j*13)%(w*h)), token(uint32(20+j*9)))
		}
		if err := n.Run(200_000); err != nil {
			t.Fatal(err)
		}
	}
	episode() // warm all capacities (rings, logs, crossbar, scratch)
	episode()
	if avg := testing.AllocsPerRun(20, episode); avg != 0 {
		t.Fatalf("warm parallel episode allocates %.1f times", avg)
	}
}
