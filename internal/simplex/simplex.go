// Package simplex implements a dense two-phase primal simplex solver for
// small linear programs in standard inequality form:
//
//	maximize  c^T x   subject to  A x <= b,  x >= 0.
//
// The thesis' entire offline analysis is a chain of LPs (programs 2.1-2.8
// and their duals in Table 1); packages flow/lpchar solve them by
// combinatorial reductions. This package provides the direct LP route, used
// in tests as a third independent check on small instances — if the duality
// chain in Section 2.2 is transcribed correctly, all three must agree.
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Eps is the pivoting tolerance.
const Eps = 1e-9

// Status describes a solve outcome.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota + 1
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is an LP in standard inequality form.
type Problem struct {
	// C is the objective vector (maximize C.x).
	C []float64
	// A is the constraint matrix, row-major; each row i satisfies
	// A[i].x <= B[i].
	A [][]float64
	// B is the right-hand side.
	B []float64
}

// Solution is an LP result.
type Solution struct {
	Status Status
	// Value is the optimal objective (valid when Status == Optimal).
	Value float64
	// X is an optimal assignment (valid when Status == Optimal).
	X []float64
}

// ErrBadShape is returned for inconsistent problem dimensions.
var ErrBadShape = errors.New("simplex: inconsistent problem shape")

// Solve runs two-phase simplex (Bland's rule, so it cannot cycle).
func Solve(p Problem) (*Solution, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return nil, fmt.Errorf("%w: %d rows vs %d rhs", ErrBadShape, m, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrBadShape, i, len(row), n)
		}
	}
	for _, v := range p.C {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("simplex: non-finite objective coefficient %v", v)
		}
	}
	// Tableau with slack variables; negative rhs rows need phase 1.
	t := newTableau(p)
	if t.needPhase1 {
		if !t.phase1() {
			return &Solution{Status: Infeasible}, nil
		}
	}
	switch t.phase2() {
	case Unbounded:
		return &Solution{Status: Unbounded}, nil
	default:
		x := t.extract()
		return &Solution{Status: Optimal, Value: t.objective(p.C, x), X: x}, nil
	}
}

// tableau holds the dense simplex state: rows are constraints, columns are
// [structural | slack | artificial], with a basis index per row.
type tableau struct {
	n, m       int // structural vars, constraints
	nArt       int
	a          [][]float64 // m x (n + m + nArt)
	b          []float64
	basis      []int
	cost       []float64 // current objective row (phase-dependent)
	needPhase1 bool
	artStart   int
	pOrig      Problem
}

func newTableau(p Problem) *tableau {
	n, m := len(p.C), len(p.A)
	t := &tableau{n: n, m: m, pOrig: p}
	// Count artificials: one per negative-rhs row.
	for _, bi := range p.B {
		if bi < 0 {
			t.nArt++
		}
	}
	t.needPhase1 = t.nArt > 0
	cols := n + m + t.nArt
	t.artStart = n + m
	t.a = make([][]float64, m)
	t.b = make([]float64, m)
	t.basis = make([]int, m)
	art := 0
	for i := 0; i < m; i++ {
		row := make([]float64, cols)
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1 // multiply the row by -1 so rhs >= 0
		}
		for j := 0; j < n; j++ {
			row[j] = sign * p.A[i][j]
		}
		row[n+i] = sign // slack (negative slack coefficient when flipped)
		t.b[i] = sign * p.B[i]
		if sign < 0 {
			// Flipped row: slack coefficient is -1, not a valid basis
			// column; add an artificial.
			row[t.artStart+art] = 1
			t.basis[i] = t.artStart + art
			art++
		} else {
			t.basis[i] = n + i
		}
		t.a[i] = row
	}
	return t
}

// phase1 drives the artificials out; returns false when infeasible.
func (t *tableau) phase1() bool {
	cols := len(t.a[0])
	t.cost = make([]float64, cols)
	for j := t.artStart; j < cols; j++ {
		t.cost[j] = -1 // maximize -sum(artificials)
	}
	obj := t.run()
	if obj == Unbounded {
		return false // cannot happen for phase 1, defensive
	}
	// Feasible iff all artificials are zero.
	for i, bi := range t.basis {
		if bi >= t.artStart && t.b[i] > Eps {
			return false
		}
	}
	// Pivot any residual artificial out of the basis if possible.
	for i, bi := range t.basis {
		if bi < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > Eps {
				t.pivot(i, j)
				break
			}
		}
	}
	return true
}

func (t *tableau) phase2() Status {
	cols := len(t.a[0])
	t.cost = make([]float64, cols)
	copy(t.cost, t.pOrig.C)
	// Artificials must never re-enter.
	for j := t.artStart; j < cols; j++ {
		t.cost[j] = math.Inf(-1)
	}
	return t.run()
}

// run performs simplex iterations with Bland's rule until optimal or
// unbounded, maintaining reduced costs implicitly (recomputed per pivot for
// clarity; instances here are small).
func (t *tableau) run() Status {
	for iter := 0; iter < 10000*(t.m+t.n+1); iter++ {
		// Reduced costs: c_j - c_B . column_j.
		enter := -1
		for j := 0; j < len(t.a[0]); j++ {
			if math.IsInf(t.cost[j], -1) {
				continue
			}
			rc := t.cost[j]
			for i := 0; i < t.m; i++ {
				cb := t.cost[t.basis[i]]
				if math.IsInf(cb, -1) {
					cb = 0
				}
				rc -= cb * t.a[i][j]
			}
			if rc > Eps {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test (Bland: smallest basis index breaks ties).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > Eps {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < best-Eps || (ratio < best+Eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	return Optimal // iteration cap; unreachable with Bland's rule
}

func (t *tableau) pivot(row, col int) {
	pv := t.a[row][col]
	inv := 1 / pv
	for j := range t.a[row] {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if math.Abs(f) <= Eps {
			continue
		}
		for j := range t.a[i] {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.b[i] -= f * t.b[row]
	}
	t.basis[row] = col
}

func (t *tableau) extract() []float64 {
	x := make([]float64, t.n)
	for i, bi := range t.basis {
		if bi < t.n {
			x[bi] = t.b[i]
		}
	}
	return x
}

func (t *tableau) objective(c, x []float64) float64 {
	v := 0.0
	for j := range c {
		v += c[j] * x[j]
	}
	return v
}
