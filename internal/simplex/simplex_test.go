package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func solve(t *testing.T, p Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBadShapes(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("row width mismatch should fail")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); err == nil {
		t.Error("rhs length mismatch should fail")
	}
	if _, err := Solve(Problem{C: []float64{math.NaN()}, A: nil, B: nil}); err == nil {
		t.Error("NaN objective should fail")
	}
}

func TestTextbookOptimal(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2, 6).
	s := solve(t, Problem{
		C: []float64{3, 5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	})
	if s.Status != Optimal || math.Abs(s.Value-36) > 1e-6 {
		t.Fatalf("status %v value %v", s.Status, s.Value)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestUnbounded(t *testing.T) {
	s := solve(t, Problem{C: []float64{1}, A: [][]float64{{-1}}, B: []float64{0}})
	if s.Status != Unbounded {
		t.Fatalf("status %v", s.Status)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and -x <= -3 (x >= 3): infeasible.
	s := solve(t, Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -3},
	})
	if s.Status != Infeasible {
		t.Fatalf("status %v", s.Status)
	}
}

func TestPhase1Feasible(t *testing.T) {
	// Requires phase 1: x + y >= 2 (as -x-y <= -2), x,y <= 3; max x+y = 6.
	s := solve(t, Problem{
		C: []float64{1, 1},
		A: [][]float64{{-1, -1}, {1, 0}, {0, 1}},
		B: []float64{-2, 3, 3},
	})
	if s.Status != Optimal || math.Abs(s.Value-6) > 1e-6 {
		t.Fatalf("status %v value %v x %v", s.Status, s.Value, s.X)
	}
}

func TestEqualityViaPairedInequalities(t *testing.T) {
	// x + y = 5 (two inequalities), max 2x + y with x <= 3: optimum 8 at
	// (3, 2).
	s := solve(t, Problem{
		C: []float64{2, 1},
		A: [][]float64{{1, 1}, {-1, -1}, {1, 0}},
		B: []float64{5, -5, 3},
	})
	if s.Status != Optimal || math.Abs(s.Value-8) > 1e-6 {
		t.Fatalf("status %v value %v x %v", s.Status, s.Value, s.X)
	}
}

func TestDegeneratePivotsTerminate(t *testing.T) {
	// A classically degenerate instance (Beale-like); Bland's rule must
	// terminate with the right optimum.
	s := solve(t, Problem{
		C: []float64{0.75, -150, 0.02, -6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		B: []float64{0, 0, 1},
	})
	if s.Status != Optimal || math.Abs(s.Value-0.05) > 1e-6 {
		t.Fatalf("status %v value %v", s.Status, s.Value)
	}
}

// TestRandomAgainstVertexEnumeration cross-checks simplex on random 2-var
// LPs against brute-force vertex enumeration.
func TestRandomAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(4)
		p := Problem{C: []float64{float64(rng.Intn(11) - 5), float64(rng.Intn(11) - 5)}}
		for i := 0; i < m; i++ {
			p.A = append(p.A, []float64{float64(rng.Intn(7) - 2), float64(rng.Intn(7) - 2)})
			p.B = append(p.B, float64(rng.Intn(10)))
		}
		// Bound the region so brute force is exact and unboundedness is
		// impossible.
		p.A = append(p.A, []float64{1, 0}, []float64{0, 1})
		p.B = append(p.B, 20, 20)
		s := solve(t, p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		best := bruteForce2D(p)
		if math.Abs(s.Value-best) > 1e-5 {
			t.Fatalf("trial %d: simplex %v vs brute force %v (problem %+v)",
				trial, s.Value, best, p)
		}
		// The returned X must be feasible and achieve Value.
		for i := range p.A {
			if p.A[i][0]*s.X[0]+p.A[i][1]*s.X[1] > p.B[i]+1e-6 {
				t.Fatalf("trial %d: X %v violates row %d", trial, s.X, i)
			}
		}
		if s.X[0] < -1e-9 || s.X[1] < -1e-9 {
			t.Fatalf("trial %d: negative X %v", trial, s.X)
		}
	}
}

// bruteForce2D enumerates all constraint-pair intersections plus axis
// intersections and returns the best feasible objective.
func bruteForce2D(p Problem) float64 {
	// Add x >= 0, y >= 0 as lines too.
	type line struct{ a, b, c float64 } // a*x + b*y = c
	var lines []line
	for i := range p.A {
		lines = append(lines, line{p.A[i][0], p.A[i][1], p.B[i]})
	}
	lines = append(lines, line{1, 0, 0}, line{0, 1, 0})
	feasible := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for i := range p.A {
			if p.A[i][0]*x+p.A[i][1]*y > p.B[i]+1e-9 {
				return false
			}
		}
		return true
	}
	best := math.Inf(-1)
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			det := lines[i].a*lines[j].b - lines[j].a*lines[i].b
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / det
			y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / det
			if feasible(x, y) {
				if v := p.C[0]*x + p.C[1]*y; v > best {
					best = v
				}
			}
		}
	}
	if feasible(0, 0) && best < 0 {
		best = 0
	}
	return best
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Infeasible, Unbounded, Status(9)} {
		if s.String() == "" {
			t.Errorf("empty string for %d", int(s))
		}
	}
}
