package sweep

import (
	"runtime"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/online"
)

// benchScenarios is the multi-seed sweep BENCH_sweep.json records: 16
// fixed-seed episodes of the hot-point workload on one geometry — the shape
// of a robustness or seed-sensitivity study. The plain variant is
// construction-bound (where warm pooling pays most); the monitored one is
// message-bound (where the zero-alloc rounds pay).
func benchScenarios(b *testing.B, monitoring bool) []Scenario {
	b.Helper()
	arena := grid.MustNew(8, 8)
	jobs := make([]grid.Point, 60)
	for i := range jobs {
		jobs[i] = grid.P(4, 4)
	}
	seq := demand.NewSequence(jobs)
	scs := make([]Scenario, 16)
	for i := range scs {
		scs[i] = Scenario{
			Opts: online.Options{
				Arena: arena, CubeSide: 8, Capacity: 24,
				Seed: int64(i + 1), Monitoring: monitoring,
			},
			Seq: seq,
		}
	}
	return scs
}

// eachVariant runs the benchmark body under "plain" and "monitored"
// sub-benchmarks.
func eachVariant(b *testing.B, body func(b *testing.B, scs []Scenario)) {
	for _, monitoring := range []bool{false, true} {
		name := "plain"
		if monitoring {
			name = "monitored"
		}
		b.Run(name, func(b *testing.B) {
			scs := benchScenarios(b, monitoring)
			b.ReportAllocs()
			b.ResetTimer()
			body(b, scs)
		})
	}
}

func requireOK(b *testing.B, results []*online.Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, res := range results {
		if !res.OK() {
			b.Fatalf("scenario failed: %+v", res.Failures[0])
		}
	}
}

// BenchmarkSweepColdSerial is the pre-sweep experiments style: one fresh
// NewRunner per scenario, strictly serial — the baseline the engine
// replaces.
func BenchmarkSweepColdSerial(b *testing.B) {
	eachVariant(b, func(b *testing.B, scs []Scenario) {
		for i := 0; i < b.N; i++ {
			results := make([]*online.Result, len(scs))
			for j, sc := range scs {
				r, err := online.NewRunner(sc.Opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run(sc.Seq)
				if err != nil {
					b.Fatal(err)
				}
				results[j] = res
			}
			requireOK(b, results, nil)
		}
	})
}

// BenchmarkSweepWarmSerial is the engine at width 1: same serial order, but
// every scenario after the first warm-resets one pooled runner.
func BenchmarkSweepWarmSerial(b *testing.B) {
	eachVariant(b, func(b *testing.B, scs []Scenario) {
		for i := 0; i < b.N; i++ {
			results, err := Episodes(Config{Workers: 1}, scs)
			requireOK(b, results, err)
		}
	})
}

// BenchmarkSweepParallel is the engine at full width (runtime.NumCPU());
// on a 1-core host it degrades to the warm-serial number.
func BenchmarkSweepParallel(b *testing.B) {
	eachVariant(b, func(b *testing.B, scs []Scenario) {
		for i := 0; i < b.N; i++ {
			results, err := Episodes(Config{Workers: runtime.NumCPU()}, scs)
			requireOK(b, results, err)
		}
	})
}
