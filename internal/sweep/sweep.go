// Package sweep is the deterministic parallel episode-sweep engine: the
// substrate every multi-scenario study in this repository (the experiments
// tables, capacity grids, robustness sweeps) runs on.
//
// A sweep evaluates n independent scenarios — cells of a grid such as
// workload × geometry × seed × failure fraction × monitoring on/off — on a
// pool of workers and returns the results ordered by scenario index. Two
// disciplines make the output bit-for-bit identical for any worker count,
// the same ones online.MinCapacityParallel proved out:
//
//   - scenarios are pure: each is a deterministic function of its index
//     (fixed-seed simulations, closed-form solves), so *which* worker
//     evaluates it cannot change the value;
//   - results are collected by scenario index, so assembly order never
//     depends on scheduling.
//
// Each worker owns one long-lived online.Pool: scenarios that share an arena
// and cube side replay on one warm runner via ResetEpisode (construction-
// free), while geometry changes build — and then pool — a new runner. The
// pool, and every Runner and sim.Network inside it, is confined to its
// worker goroutine; concurrency lives strictly above whole networks, per the
// DESIGN.md invariant. Offline scenario grids follow the same discipline
// through Worker.LPSolver: one warm LP (2.1) solver per worker, re-bound
// per instance.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/demand"
	"repro/internal/lpchar"
	"repro/internal/online"
)

// Config configures a sweep.
type Config struct {
	// Workers is the fan-out width. 1 evaluates scenarios inline (serial);
	// <= 0 resolves to runtime.NumCPU(). The assembled results are identical
	// for every value — determinism comes from ordering, not scheduling —
	// so callers pin a width only for reproducible wall-clock, never for
	// reproducible values.
	Workers int
}

// Worker is the per-goroutine context handed to scenario functions. It owns
// the goroutine's warm-runner pool; scenario functions that play online
// episodes should do so through Episode (or Pool().Get) to reuse runners
// instead of rebuilding the world per scenario. Offline scenario grids use
// LPSolver the same way: one warm LP solver per worker, re-bound per
// instance.
type Worker struct {
	pool *online.Pool
	lp   *lpchar.Solver
}

// Pool returns the worker's runner pool.
func (w *Worker) Pool() *online.Pool { return w.pool }

// LPSolver returns the worker's long-lived LP (2.1) solver — the offline
// counterpart of the one-runner-per-worker rule. Scenario functions Bind it
// to their instance and probe warm; rebinding reuses the solver's network
// arrays and offset index, so offline sweeps are construction-free after
// the first scenario. The solver is confined to its worker goroutine.
func (w *Worker) LPSolver() *lpchar.Solver {
	if w.lp == nil {
		w.lp = new(lpchar.Solver)
	}
	return w.lp
}

// Episode plays one online episode under opts on a pooled warm runner and
// returns its result. The result does not alias runner state that the next
// episode would overwrite, so it may be retained across the sweep.
func (w *Worker) Episode(opts online.Options, seq *demand.Sequence) (*online.Result, error) {
	r, err := w.pool.Get(opts)
	if err != nil {
		return nil, err
	}
	return r.Run(seq)
}

// Run evaluates fn for every scenario index 0..n-1 across the configured
// worker width and returns the results ordered by index. fn must be a pure
// function of its index (it may freely use the Worker's pooled runners —
// they are reset to construction state per episode). Workers claim indices
// from a shared counter, so load balances dynamically; the result slice is
// positionally assigned, so the output is identical for every width.
//
// On failure Run returns the error of the lowest-indexed failed scenario.
// Scenario evaluation stops early after a failure, so which higher-indexed
// scenarios were still evaluated (never: their results) can vary with
// scheduling.
func Run[T any](cfg Config, n int, fn func(w *Worker, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		w := &Worker{pool: online.NewPool()}
		for i := 0; i < n; i++ {
			r, err := fn(w, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{pool: online.NewPool()}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := fn(w, i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Map is Run over a slice of scenario descriptions: fn receives the item at
// each index alongside the worker and index.
func Map[S, T any](cfg Config, items []S, fn func(w *Worker, item S, i int) (T, error)) ([]T, error) {
	return Run(cfg, len(items), func(w *Worker, i int) (T, error) {
		return fn(w, items[i], i)
	})
}

// Scenario is one cell of an episode grid: the full specification of one
// online run. Scenarios sharing Opts.Arena (pointer) and cube side replay on
// one warm runner per worker.
type Scenario struct {
	Opts online.Options
	Seq  *demand.Sequence
}

// Episodes plays one online episode per scenario and returns the results
// ordered by scenario index — the declarative form of a pure episode grid
// (cmvrp.RunSweep exports it).
func Episodes(cfg Config, scenarios []Scenario) ([]*online.Result, error) {
	return Map(cfg, scenarios, func(w *Worker, s Scenario, _ int) (*online.Result, error) {
		return w.Episode(s.Opts, s.Seq)
	})
}
