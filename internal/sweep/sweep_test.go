package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/online"
)

// mixedScenarios builds a sweep that crosses geometry (two arenas, two cube
// sides), seeds, monitoring, and a failure injection — the scenario-grid
// shape the engine exists for. Workers pool runners per geometry and reset
// across everything else.
func mixedScenarios(t testing.TB) []Scenario {
	t.Helper()
	big := grid.MustNew(8, 8)
	small := grid.MustNew(6, 6)
	hotBig := make([]grid.Point, 40)
	for i := range hotBig {
		hotBig[i] = grid.P(4, 4)
	}
	hotSmall := make([]grid.Point, 30)
	for i := range hotSmall {
		hotSmall[i] = grid.P(2, 2)
	}
	var scs []Scenario
	for seed := int64(1); seed <= 3; seed++ {
		for _, monitoring := range []bool{false, true} {
			scs = append(scs,
				Scenario{
					Opts: online.Options{Arena: big, CubeSide: 8, Capacity: 24,
						Seed: seed, Monitoring: monitoring},
					Seq: demand.NewSequence(hotBig),
				},
				Scenario{
					Opts: online.Options{Arena: big, CubeSide: 4, Capacity: 24,
						Seed: seed, Monitoring: monitoring},
					Seq: demand.NewSequence(hotBig),
				},
				Scenario{
					Opts: online.Options{Arena: small, CubeSide: 6, Capacity: 14,
						Seed: seed, Monitoring: monitoring,
						FailInitiate: map[grid.Point]bool{grid.P(0, 0): true}},
					Seq: demand.NewSequence(hotSmall),
				})
		}
	}
	return scs
}

// TestEpisodesDeterministicAcrossWorkerCounts is the engine's core contract:
// the assembled result list is identical for every worker count (this test
// also runs under CI's -race over the mixed-geometry grid).
func TestEpisodesDeterministicAcrossWorkerCounts(t *testing.T) {
	scs := mixedScenarios(t)
	want, err := Episodes(Config{Workers: 1}, scs)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range want {
		if !res.OK() {
			t.Fatalf("baseline scenario failed: %+v", res.Failures[0])
		}
	}
	for _, workers := range []int{2, 4, 8, 0} {
		got, err := Episodes(Config{Workers: workers}, scs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Errorf("workers=%d scenario %d drifted:\n got %+v\nwant %+v",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestWorkerPoolReuse pins that a serial sweep over same-geometry scenarios
// builds exactly one runner and warm-resets it for every scenario after the
// first, while geometry changes rebuild.
func TestWorkerPoolReuse(t *testing.T) {
	arena := grid.MustNew(6, 6)
	jobs := make([]grid.Point, 20)
	for i := range jobs {
		jobs[i] = grid.P(2, 2)
	}
	seq := demand.NewSequence(jobs)
	var stats online.PoolStats
	sameShape := func(w *Worker, i int) (*online.Result, error) {
		res, err := w.Episode(online.Options{
			Arena: arena, CubeSide: 6, Capacity: 14, Seed: int64(i + 1),
		}, seq)
		stats = w.Pool().Stats()
		return res, err
	}
	if _, err := Run(Config{Workers: 1}, 5, sameShape); err != nil {
		t.Fatal(err)
	}
	if stats.Builds != 1 || stats.Resets != 4 {
		t.Errorf("same-shape sweep: stats = %+v, want 1 build / 4 resets", stats)
	}

	mixed := func(w *Worker, i int) (*online.Result, error) {
		res, err := w.Episode(online.Options{
			Arena: arena, CubeSide: []int{6, 3}[i%2], Capacity: 14, Seed: 1,
		}, seq)
		stats = w.Pool().Stats()
		return res, err
	}
	if _, err := Run(Config{Workers: 1}, 6, mixed); err != nil {
		t.Fatal(err)
	}
	if stats.Builds != 2 || stats.Resets != 4 {
		t.Errorf("mixed sweep: stats = %+v, want 2 builds / 4 resets", stats)
	}
}

// TestRunReportsLowestIndexedError pins the deterministic error contract for
// the serial path and that parallel sweeps surface a failure at all.
func TestRunReportsLowestIndexedError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("scenario %d failed", i) }
	fail := func(_ *Worker, i int) (int, error) {
		if i == 2 || i == 5 {
			return 0, boom(i)
		}
		return i, nil
	}
	_, err := Run(Config{Workers: 1}, 8, fail)
	if err == nil || err.Error() != "scenario 2 failed" {
		t.Errorf("serial error = %v, want scenario 2's", err)
	}
	if _, err := Run(Config{Workers: 4}, 8, fail); err == nil {
		t.Error("parallel sweep should surface the failure")
	}
}

// TestRunEmptyAndWidthClamp covers the degenerate shapes.
func TestRunEmptyAndWidthClamp(t *testing.T) {
	got, err := Run(Config{Workers: 4}, 0, func(_ *Worker, i int) (int, error) {
		return 0, errors.New("must not be called")
	})
	if err != nil || len(got) != 0 {
		t.Errorf("empty sweep: %v, %v", got, err)
	}
	// More workers than scenarios clamps rather than spawning idle workers.
	vals, err := Run(Config{Workers: 16}, 3, func(_ *Worker, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []int{0, 1, 4}) {
		t.Errorf("vals = %v", vals)
	}
}
