// Package termination implements Dijkstra-Scholten termination detection
// for arbitrary diffusing computations — the primitive thesis Section 3.1
// cites from Dijkstra & Scholten (1980) and whose specialized search form
// package diffuse uses. A single root injects application messages; any
// node receiving a message may send further messages; the detector tells
// the root when the whole computation has quiesced.
//
// Mechanics (the classic deficit/tree scheme): every application message
// must eventually be acknowledged. The first message a disengaged node
// receives engages it, recording the sender as its tree parent; that
// engaging message is acknowledged only when the node disengages — which it
// does once it is locally idle and all of its own messages have been
// acknowledged. Every other message is acknowledged immediately after
// processing. Termination has occurred exactly when the root's deficit
// drops to zero.
package termination

import (
	"fmt"

	"repro/internal/sim"
)

// KindAck is the detection acknowledgement (range 240..255 of the sim.Msg
// kind space is owned by this package). Application payloads travel as
// their own inline sim.Msg values — any kind other than KindAck and the
// reserved sim.KindInvalid is an application message — so payload kinds
// must stay outside this package's range.
const KindAck uint8 = 0xF0

// Handler is the application logic hosted on a node: it receives payloads
// and may send more through the node.
type Handler func(n *Node, ctx sim.Sender, from sim.NodeID, payload sim.Msg)

// Node hosts one participant of the diffusing computation. It implements
// sim.Process; application sends must go through Send so deficits track.
type Node struct {
	handler Handler

	engaged     bool
	parent      sim.NodeID
	outstanding int // my messages not yet acknowledged

	// Root bookkeeping: a root engages itself at Start and reports
	// termination through onTerminated.
	isRoot       bool
	onTerminated func()

	// Stats for tests and experiments.
	Received int64
	Acked    int64
	// Unknown counts messages with the reserved invalid kind (a zero
	// sim.Msg) — always a wiring bug; tests assert it stays zero.
	Unknown int64
}

var _ sim.Process = (*Node)(nil)

// NewNode creates a participant node with the given application handler.
func NewNode(handler Handler) (*Node, error) {
	if handler == nil {
		return nil, fmt.Errorf("termination: handler is required")
	}
	return &Node{handler: handler, parent: sim.None}, nil
}

// NewRoot creates the computation's root. onTerminated fires when the
// detector proves global termination.
func NewRoot(handler Handler, onTerminated func()) (*Node, error) {
	n, err := NewNode(handler)
	if err != nil {
		return nil, err
	}
	if onTerminated == nil {
		return nil, fmt.Errorf("termination: onTerminated is required for a root")
	}
	n.isRoot = true
	n.onTerminated = onTerminated
	return n, nil
}

// Send transmits an application payload with detection bookkeeping. It must
// be called only from within a handler invocation (or Start, for the root).
// The payload's kind must be neither KindAck nor sim.KindInvalid — both are
// reserved by the detection wire format; violating that is a programming
// error and panics rather than silently corrupting deficit tracking.
func (n *Node) Send(ctx sim.Sender, to sim.NodeID, payload sim.Msg) {
	if payload.Kind == KindAck || payload.Kind == sim.KindInvalid {
		panic(fmt.Sprintf("termination: payload kind %d is reserved", payload.Kind))
	}
	n.outstanding++
	ctx.Send(to, payload)
}

// Start launches the computation from the root: it engages the root and
// runs the handler once with the given payload (from = sim.None).
func (n *Node) Start(ctx sim.Sender, payload sim.Msg) error {
	if !n.isRoot {
		return fmt.Errorf("termination: Start on a non-root node")
	}
	if n.engaged {
		return fmt.Errorf("termination: root already engaged")
	}
	n.engaged = true
	n.handler(n, ctx, sim.None, payload)
	n.maybeDisengage(ctx)
	return nil
}

// Engaged reports whether the node is currently part of the computation
// tree.
func (n *Node) Engaged() bool { return n.engaged }

// OnMessage implements sim.Process.
func (n *Node) OnMessage(ctx *sim.Context, from sim.NodeID, msg sim.Msg) {
	switch msg.Kind {
	case KindAck:
		n.outstanding--
		n.maybeDisengage(ctx)
	case sim.KindInvalid:
		// Nodes in this package host only the diffusing computation, so a
		// zero message is a wiring bug; tests assert Unknown == 0.
		n.Unknown++
	default:
		n.Received++
		engaging := !n.engaged
		if engaging {
			n.engaged = true
			n.parent = from
		}
		n.handler(n, ctx, from, msg)
		if !engaging {
			// Non-engaging messages are acknowledged as soon as the local
			// processing they triggered is done.
			ctx.Send(from, sim.Msg{Kind: KindAck})
			n.Acked++
		}
		n.maybeDisengage(ctx)
	}
}

// maybeDisengage sends the deferred ack for the engaging message once the
// node is idle with zero deficit; at the root it signals termination.
func (n *Node) maybeDisengage(ctx sim.Sender) {
	if !n.engaged || n.outstanding > 0 {
		return
	}
	// Locally idle (handler returned) with zero deficit: leave the tree.
	n.engaged = false
	if n.isRoot {
		n.onTerminated()
		return
	}
	if n.parent != sim.None {
		ctx.Send(n.parent, sim.Msg{Kind: KindAck})
		n.Acked++
		n.parent = sim.None
	}
}
