package termination

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// probe is a payload that asks the receiver to fan out `ttl` more probes.
type probe struct {
	TTL    int
	Fanout int
}

// fanoutHandler forwards probes with decremented TTL to pseudo-random
// neighbors (deterministic per node via its own seeded rng).
func fanoutHandler(neighbors []sim.NodeID, seed int64) Handler {
	rng := rand.New(rand.NewSource(seed))
	return func(n *Node, ctx sim.Sender, _ sim.NodeID, payload sim.Message) {
		p, ok := payload.(probe)
		if !ok || p.TTL <= 0 || len(neighbors) == 0 {
			return
		}
		for i := 0; i < p.Fanout; i++ {
			to := neighbors[rng.Intn(len(neighbors))]
			n.Send(ctx, to, probe{TTL: p.TTL - 1, Fanout: p.Fanout})
		}
	}
}

type fakeSender struct{ sent int }

func (f *fakeSender) Self() sim.NodeID             { return 0 }
func (f *fakeSender) Send(sim.NodeID, sim.Message) { f.sent++ }

func TestValidation(t *testing.T) {
	if _, err := NewNode(nil); err == nil {
		t.Error("nil handler should fail")
	}
	h := func(*Node, sim.Sender, sim.NodeID, sim.Message) {}
	if _, err := NewRoot(h, nil); err == nil {
		t.Error("nil onTerminated should fail")
	}
	n, err := NewNode(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(&fakeSender{}, nil); err == nil {
		t.Error("Start on non-root should fail")
	}
}

func TestImmediateTermination(t *testing.T) {
	// Root handler sends nothing: termination must fire synchronously.
	fired := 0
	root, err := NewRoot(func(*Node, sim.Sender, sim.NodeID, sim.Message) {},
		func() { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Start(&fakeSender{}, "go"); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("terminated fired %d times", fired)
	}
	if root.Engaged() {
		t.Error("root still engaged")
	}
	if err := root.Start(&fakeSender{}, "again"); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Error("root must be restartable after termination")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	fired := false
	root, err := NewRoot(func(n *Node, ctx sim.Sender, _ sim.NodeID, _ sim.Message) {
		n.Send(ctx, 1, "x") // keeps the root engaged
	}, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Start(&fakeSender{}, "go"); err != nil {
		t.Fatal(err)
	}
	if err := root.Start(&fakeSender{}, "go"); err == nil {
		t.Error("second Start while engaged should fail")
	}
	if fired {
		t.Error("terminated before acks")
	}
}

// TestDetectionOnRandomComputations is the core property: over random
// fanout computations on random node sets, termination is detected exactly
// once, only after the network quiesces, with every inter-node app message
// acknowledged.
func TestDetectionOnRandomComputations(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nNodes := 3 + rng.Intn(10)
		ids := make([]sim.NodeID, nNodes)
		for i := range ids {
			ids[i] = sim.NodeID(i)
		}
		net := sim.NewNetwork(int64(trial) * 7)
		fired := 0
		nodes := make([]*Node, nNodes)
		for i := 0; i < nNodes; i++ {
			h := fanoutHandler(ids, int64(trial*100+i))
			var n *Node
			var err error
			if i == 0 {
				// The root is bootstrapped by an environment-injected
				// AppMsg (from = sim.None), so its engaging message owes
				// no acknowledgement.
				n, err = NewRoot(h, func() { fired++ })
			} else {
				n, err = NewNode(h)
			}
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = n
			if err := net.Add(ids[i], n); err != nil {
				t.Fatal(err)
			}
		}
		boot := probe{TTL: 1 + rng.Intn(4), Fanout: 1 + rng.Intn(3)}
		net.Inject(0, AppMsg{Payload: boot})
		if err := net.Run(1_000_000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fired != 1 {
			t.Fatalf("trial %d: terminated fired %d times", trial, fired)
		}
		var received, acked, unknown int64
		for _, n := range nodes {
			if n.Engaged() {
				t.Fatalf("trial %d: node still engaged after termination", trial)
			}
			received += n.Received
			acked += n.Acked
			unknown += n.Unknown
		}
		if unknown != 0 {
			t.Fatalf("trial %d: %d unknown messages", trial, unknown)
		}
		// Every app message is acked except the environment's bootstrap.
		if received != acked+1 {
			t.Fatalf("trial %d: %d received vs %d acked (+1 bootstrap)",
				trial, received, acked)
		}
	}
}

// TestDetectionNotPremature instruments a long chain: the root must not be
// notified before the farthest node has processed its message.
func TestDetectionNotPremature(t *testing.T) {
	const hops = 30
	net := sim.NewNetwork(11)
	processedLast := false
	prematureAt := false
	var nodes []*Node
	for i := 0; i < hops; i++ {
		i := i
		h := func(n *Node, ctx sim.Sender, _ sim.NodeID, payload sim.Message) {
			k, ok := payload.(int)
			if !ok {
				return
			}
			if k == 0 {
				processedLast = true
				return
			}
			n.Send(ctx, sim.NodeID(i+1), k-1)
		}
		var n *Node
		var err error
		if i == 0 {
			n, err = NewRoot(h, func() {
				if !processedLast {
					prematureAt = true
				}
			})
		} else {
			n, err = NewNode(h)
		}
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if err := net.Add(sim.NodeID(i), n); err != nil {
			t.Fatal(err)
		}
	}
	net.Inject(0, AppMsg{Payload: hops - 1})
	if err := net.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if !processedLast {
		t.Fatal("chain never completed")
	}
	if prematureAt {
		t.Fatal("termination detected before the chain finished")
	}
	for i, n := range nodes {
		if n.Engaged() {
			t.Errorf("node %d still engaged", i)
		}
	}
}
