package termination

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// Application payload kinds used by these tests (32..127 is the test range
// of the sim.Msg kind space; anything outside KindAck/KindInvalid is an app
// message to the detector).
const (
	kindProbe uint8 = iota + 50 // A: TTL, B: fanout
	kindHop                     // A: remaining hops
	kindGo                      // bare trigger with no operands
)

func probeMsg(ttl, fanout int) sim.Msg {
	return sim.Msg{Kind: kindProbe, A: uint32(ttl), B: uint32(fanout)}
}

// fanoutHandler forwards probes with decremented TTL to pseudo-random
// neighbors (deterministic per node via its own seeded rng).
func fanoutHandler(neighbors []sim.NodeID, seed int64) Handler {
	rng := rand.New(rand.NewSource(seed))
	return func(n *Node, ctx sim.Sender, _ sim.NodeID, payload sim.Msg) {
		if payload.Kind != kindProbe || payload.A == 0 || len(neighbors) == 0 {
			return
		}
		for i := uint32(0); i < payload.B; i++ {
			to := neighbors[rng.Intn(len(neighbors))]
			n.Send(ctx, to, probeMsg(int(payload.A-1), int(payload.B)))
		}
	}
}

type fakeSender struct{ sent int }

func (f *fakeSender) Self() sim.NodeID         { return 0 }
func (f *fakeSender) Send(sim.NodeID, sim.Msg) { f.sent++ }

func TestValidation(t *testing.T) {
	if _, err := NewNode(nil); err == nil {
		t.Error("nil handler should fail")
	}
	h := func(*Node, sim.Sender, sim.NodeID, sim.Msg) {}
	if _, err := NewRoot(h, nil); err == nil {
		t.Error("nil onTerminated should fail")
	}
	n, err := NewNode(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(&fakeSender{}, sim.Msg{Kind: kindGo}); err == nil {
		t.Error("Start on non-root should fail")
	}
}

// TestSendReservedKindPanics pins the wire-format guard: application
// payloads may not reuse the detector's ack kind or the reserved zero kind.
func TestSendReservedKindPanics(t *testing.T) {
	n, err := NewNode(func(*Node, sim.Sender, sim.NodeID, sim.Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []uint8{KindAck, sim.KindInvalid} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Send with reserved kind %d did not panic", kind)
				}
			}()
			n.Send(&fakeSender{}, 1, sim.Msg{Kind: kind})
		}()
	}
}

func TestImmediateTermination(t *testing.T) {
	// Root handler sends nothing: termination must fire synchronously.
	fired := 0
	root, err := NewRoot(func(*Node, sim.Sender, sim.NodeID, sim.Msg) {},
		func() { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Start(&fakeSender{}, sim.Msg{Kind: kindGo}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("terminated fired %d times", fired)
	}
	if root.Engaged() {
		t.Error("root still engaged")
	}
	if err := root.Start(&fakeSender{}, sim.Msg{Kind: kindGo}); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Error("root must be restartable after termination")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	fired := false
	root, err := NewRoot(func(n *Node, ctx sim.Sender, _ sim.NodeID, _ sim.Msg) {
		n.Send(ctx, 1, sim.Msg{Kind: kindGo}) // keeps the root engaged
	}, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Start(&fakeSender{}, sim.Msg{Kind: kindGo}); err != nil {
		t.Fatal(err)
	}
	if err := root.Start(&fakeSender{}, sim.Msg{Kind: kindGo}); err == nil {
		t.Error("second Start while engaged should fail")
	}
	if fired {
		t.Error("terminated before acks")
	}
}

// TestDetectionOnRandomComputations is the core property: over random
// fanout computations on random node sets, termination is detected exactly
// once, only after the network quiesces, with every inter-node app message
// acknowledged.
func TestDetectionOnRandomComputations(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nNodes := 3 + rng.Intn(10)
		ids := make([]sim.NodeID, nNodes)
		for i := range ids {
			ids[i] = sim.NodeID(i)
		}
		net := sim.NewNetwork(int64(trial) * 7)
		fired := 0
		nodes := make([]*Node, nNodes)
		for i := 0; i < nNodes; i++ {
			h := fanoutHandler(ids, int64(trial*100+i))
			var n *Node
			var err error
			if i == 0 {
				// The root is bootstrapped by an environment-injected probe
				// (from = sim.None), so its engaging message owes no
				// acknowledgement.
				n, err = NewRoot(h, func() { fired++ })
			} else {
				n, err = NewNode(h)
			}
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = n
			if err := net.Add(ids[i], n); err != nil {
				t.Fatal(err)
			}
		}
		net.Inject(0, probeMsg(1+rng.Intn(4), 1+rng.Intn(3)))
		if err := net.Run(1_000_000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fired != 1 {
			t.Fatalf("trial %d: terminated fired %d times", trial, fired)
		}
		var received, acked, unknown int64
		for _, n := range nodes {
			if n.Engaged() {
				t.Fatalf("trial %d: node still engaged after termination", trial)
			}
			received += n.Received
			acked += n.Acked
			unknown += n.Unknown
		}
		if unknown != 0 {
			t.Fatalf("trial %d: %d unknown messages", trial, unknown)
		}
		// Every app message is acked except the environment's bootstrap.
		if received != acked+1 {
			t.Fatalf("trial %d: %d received vs %d acked (+1 bootstrap)",
				trial, received, acked)
		}
	}
}

// TestDetectionNotPremature instruments a long chain: the root must not be
// notified before the farthest node has processed its message.
func TestDetectionNotPremature(t *testing.T) {
	const hops = 30
	net := sim.NewNetwork(11)
	processedLast := false
	prematureAt := false
	var nodes []*Node
	for i := 0; i < hops; i++ {
		i := i
		h := func(n *Node, ctx sim.Sender, _ sim.NodeID, payload sim.Msg) {
			if payload.Kind != kindHop {
				return
			}
			if payload.A == 0 {
				processedLast = true
				return
			}
			n.Send(ctx, sim.NodeID(i+1), sim.Msg{Kind: kindHop, A: payload.A - 1})
		}
		var n *Node
		var err error
		if i == 0 {
			n, err = NewRoot(h, func() {
				if !processedLast {
					prematureAt = true
				}
			})
		} else {
			n, err = NewNode(h)
		}
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if err := net.Add(sim.NodeID(i), n); err != nil {
			t.Fatal(err)
		}
	}
	net.Inject(0, sim.Msg{Kind: kindHop, A: hops - 1})
	if err := net.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if !processedLast {
		t.Fatal("chain never completed")
	}
	if prematureAt {
		t.Fatal("termination detected before the chain finished")
	}
	for i, n := range nodes {
		if n.Engaged() {
			t.Errorf("node %d still engaged", i)
		}
	}
}
