// Package transfer reproduces thesis Chapter 5: CMVRP with inter-vehicle
// energy transfers. Vehicle A may hand energy to vehicle B when co-located,
// under one of two accounting methods (fixed cost per transfer, or variable
// cost per unit transferred). The package implements:
//
//   - the decay lower bound of Theorem 5.1.1 (moving energy distance d
//     retains at most a (1-1/W)^d fraction), with the square-import budget
//     used to show Wtrans-off = Theta(Woff) when tanks equal capacity;
//   - the Section 5.2.1 convoy strategy on a line with unbounded tanks
//     (C = infinity), where one vehicle sweeps, consolidates, and
//     redistributes — achieving Wtrans-off = Theta(avg demand), an
//     arbitrarily large improvement over the no-transfer case;
//   - a step-by-step convoy simulator that cross-checks the thesis' closed
//     forms for both accounting methods.
package transfer

import (
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/grid"
)

// Accounting selects how transfers are charged (Chapter 5 intro).
type Accounting int

// Transfer accounting methods.
const (
	// FixedCost charges a1 units per transfer regardless of amount.
	FixedCost Accounting = iota + 1
	// VariableCost charges a2 units per unit of energy transferred.
	VariableCost
)

// String implements fmt.Stringer.
func (a Accounting) String() string {
	switch a {
	case FixedCost:
		return "fixed"
	case VariableCost:
		return "variable"
	default:
		return fmt.Sprintf("Accounting(%d)", int(a))
	}
}

// Retention returns the thesis' decay factor: the largest fraction of W
// units of energy that survives being moved a given distance when no tank
// can hold more than W (Theorem 5.1.1's computation).
func Retention(w float64, dist int) float64 {
	if w <= 1 || dist < 0 {
		return 0
	}
	return math.Pow(1-1/w, float64(dist))
}

// SquareImportBudget returns the Theorem 5.1.1 budget: the total energy that
// can ever be brought into (plus held inside) an s x s square when every
// vehicle starts with W, counting the geometric decay of imports:
//
//	W * (s^2 + 4W^2 + 4sW - 8W - 4s + 4)
func SquareImportBudget(w float64, s int) float64 {
	sf := float64(s)
	return w * (sf*sf + 4*w*w + 4*sf*w - 8*w - 4*sf + 4)
}

// LowerBoundSquares computes the Theorem 5.1.1 lower bound on Wtrans-off:
// the smallest W whose import budget covers every square's demand, searched
// over all squares inside the support's bounding box. By the theorem this is
// Omega(max_T omega_T) = Omega(Woff), so transfers never help by more than a
// constant factor when tanks equal the initial charge.
func LowerBoundSquares(m *demand.Map) (float64, error) {
	if m.Dim() != 2 {
		return 0, fmt.Errorf("transfer: square bound is 2-D only, got dim %d", m.Dim())
	}
	if m.Total() == 0 {
		return 0, nil
	}
	bbox, ok := m.BoundingBox()
	if !ok {
		return 0, nil
	}
	maxSide := int(bbox.Side(0))
	if s1 := int(bbox.Side(1)); s1 > maxSide {
		maxSide = s1
	}
	best := 0.0
	// For each square size, only the maximum-demand square matters (the
	// budget is independent of position).
	for s := 1; s <= maxSide; s++ {
		var maxSum int64
		for x := int(bbox.Lo[0]); x+s-1 <= int(bbox.Hi[0]); x++ {
			for y := int(bbox.Lo[1]); y+s-1 <= int(bbox.Hi[1]); y++ {
				sq, err := grid.NewBox(2, grid.P(x, y), grid.P(x+s-1, y+s-1))
				if err != nil {
					return 0, err
				}
				if v := m.SumIn(sq); v > maxSum {
					maxSum = v
				}
			}
		}
		if maxSum == 0 {
			continue
		}
		// Smallest W with SquareImportBudget(W, s) >= maxSum, by bisection
		// (the budget is increasing in W for W >= 1).
		lo, hi := 0.0, 1.0
		for SquareImportBudget(hi, s) < float64(maxSum) {
			hi *= 2
			if hi > 1e15 {
				return 0, fmt.Errorf("transfer: budget search diverged for s=%d", s)
			}
		}
		for iter := 0; iter < 80 && hi-lo > 1e-9*hi; iter++ {
			mid := (lo + hi) / 2
			if SquareImportBudget(mid, s) >= float64(maxSum) {
				hi = mid
			} else {
				lo = mid
			}
		}
		if hi > best {
			best = hi
		}
	}
	return best, nil
}

// ConvoyParams configures the Section 5.2.1 line convoy.
type ConvoyParams struct {
	// Demands lists d(x) for vertices 1..N of the line (index 0 = vertex 1).
	Demands []int64
	// Accounting selects the transfer charging model.
	Accounting Accounting
	// A1 is the per-transfer charge (FixedCost); A2 the per-unit charge
	// (VariableCost, must be < 1/2 - the thesis assumes a2 << 1).
	A1, A2 float64
}

// ConvoyResult reports both the closed form and the simulation outcome.
type ConvoyResult struct {
	// W is the minimal uniform initial energy per the thesis' closed form.
	W float64
	// EnergyTotal is the total energy the closed form says the run consumes.
	EnergyTotal float64
	// Transfers and Distance are the simulator's counts (thesis: 2N-3
	// transfers, 2N-2 distance).
	Transfers int
	Distance  int
	// Slack is the simulated leftover energy across all vehicles at the end
	// (>= 0 proves feasibility of W).
	Slack float64
}

// Convoy evaluates the Section 5.2.1 strategy: vehicle 1 sweeps right
// collecting every vehicle's energy, exchanges with vehicle N, then sweeps
// back distributing exactly what each vertex's jobs need. It returns the
// closed-form W and cross-checks it by simulating the sweep step by step
// with unbounded tanks (C = infinity).
func Convoy(p ConvoyParams) (*ConvoyResult, error) {
	n := len(p.Demands)
	if n < 3 {
		return nil, fmt.Errorf("transfer: convoy needs at least 3 vertices, got %d", n)
	}
	var sumD int64
	for i, d := range p.Demands {
		if d < 0 {
			return nil, fmt.Errorf("transfer: negative demand %d at vertex %d", d, i+1)
		}
		sumD += d
	}
	nf := float64(n)
	var w, total float64
	switch p.Accounting {
	case FixedCost:
		if p.A1 < 0 {
			return nil, fmt.Errorf("transfer: a1 %v must be >= 0", p.A1)
		}
		total = p.A1*(2*nf-3) + (2*nf - 2) + float64(sumD)
		w = total / nf
	case VariableCost:
		if p.A2 < 0 || p.A2 >= 0.5 {
			return nil, fmt.Errorf("transfer: a2 %v must be in [0, 0.5)", p.A2)
		}
		w = (2*nf - 2 + float64(sumD)) / (nf - 2*p.A2*nf + 3*p.A2)
		total = w * nf
	default:
		return nil, fmt.Errorf("transfer: unknown accounting %v", p.Accounting)
	}
	res := &ConvoyResult{W: w, EnergyTotal: total}
	if err := simulateConvoy(p, w, res); err != nil {
		return nil, err
	}
	return res, nil
}

// simulateConvoy executes the sweep with every vehicle initially holding w
// and verifies no balance goes negative, counting transfers and distance.
func simulateConvoy(p ConvoyParams, w float64, res *ConvoyResult) error {
	n := len(p.Demands)
	bal := make([]float64, n) // energy held at each vertex's vehicle
	for i := range bal {
		bal[i] = w
	}
	charge := func(amount float64) float64 {
		if p.Accounting == FixedCost {
			return p.A1
		}
		return p.A2 * amount
	}
	carrier := bal[0] // vehicle 1's tank (infinite capacity)
	pos := 0
	step := func(to int) {
		res.Distance += int(math.Abs(float64(to - pos)))
		carrier -= math.Abs(float64(to - pos))
		pos = to
	}
	// Outbound: collect from vertices 2..N-1.
	for v := 1; v <= n-2; v++ {
		step(v)
		amt := bal[v]
		carrier += amt - charge(amt)
		bal[v] = 0
		res.Transfers++
	}
	// At N: exchange so that vehicle N holds exactly its own demand. The
	// flow may go either way; the fee is on the amount moved.
	step(n - 1)
	need := float64(p.Demands[n-1])
	amt := bal[n-1] - need // positive: carrier takes; negative: carrier gives
	carrier += amt - charge(math.Abs(amt))
	bal[n-1] = need
	res.Transfers++
	// Return: distribute exact demands to N-1..2.
	for v := n - 2; v >= 1; v-- {
		step(v)
		needV := float64(p.Demands[v])
		carrier -= needV + charge(needV)
		bal[v] = needV
		res.Transfers++
	}
	step(0)
	// Vehicle 1 keeps its own demand.
	carrier -= float64(p.Demands[0])
	if carrier < -1e-6 {
		return fmt.Errorf("transfer: convoy with W=%v runs out of energy (%v short)", w, -carrier)
	}
	res.Slack = carrier
	return nil
}
