package transfer

import (
	"math"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/lpchar"
)

func TestRetention(t *testing.T) {
	if Retention(10, 0) != 1 {
		t.Error("distance 0 should retain everything")
	}
	if got, want := Retention(10, 1), 0.9; math.Abs(got-want) > 1e-12 {
		t.Errorf("Retention(10,1) = %v", got)
	}
	if Retention(1, 5) != 0 || Retention(10, -1) != 0 {
		t.Error("degenerate retention should be 0")
	}
	// Monotone decreasing in distance.
	prev := 1.0
	for d := 1; d < 50; d++ {
		r := Retention(7, d)
		if r >= prev {
			t.Fatalf("retention not decreasing at %d", d)
		}
		prev = r
	}
}

func TestSquareImportBudgetMatchesExpansion(t *testing.T) {
	// The budget is W*(s^2 + 4W^2 + 4sW - 8W - 4s + 4); spot-check the
	// algebra against a direct evaluation.
	for _, tc := range []struct {
		w float64
		s int
	}{{2, 1}, {5, 3}, {10, 8}} {
		sf := float64(tc.s)
		want := tc.w * (sf*sf + 4*tc.w*tc.w + 4*sf*tc.w - 8*tc.w - 4*sf + 4)
		if got := SquareImportBudget(tc.w, tc.s); math.Abs(got-want) > 1e-9 {
			t.Errorf("budget(%v,%d) = %v, want %v", tc.w, tc.s, got, want)
		}
	}
}

// TestTransfersDontBeatWoffByMoreThanConstant reproduces Theorem 5.1.1's
// conclusion: the transfer lower bound is Omega(omega*) — same order as Woff
// — so with tanks equal to initial charge, transfers buy at most a constant.
func TestTransfersDontBeatWoffByMoreThanConstant(t *testing.T) {
	for _, d := range []int64{100, 1000, 10000} {
		m, err := demand.PointMass(2, grid.P(0, 0), d)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := LowerBoundSquares(m)
		if err != nil {
			t.Fatal(err)
		}
		omegaStar, err := lpchar.OmegaStarFlow(m)
		if err != nil {
			t.Fatal(err)
		}
		if lb <= 0 {
			t.Fatalf("d=%d: nonpositive transfer bound", d)
		}
		ratio := omegaStar / lb
		// Theta relationship: ratio bounded both ways by modest constants.
		if ratio < 0.2 || ratio > 20 {
			t.Errorf("d=%d: omega* %v vs transfer bound %v (ratio %v) not same order",
				d, omegaStar, lb, ratio)
		}
	}
}

func TestLowerBoundSquaresValidation(t *testing.T) {
	if _, err := LowerBoundSquares(demand.NewMap(1)); err == nil {
		t.Error("non-2D should fail")
	}
	if v, err := LowerBoundSquares(demand.NewMap(2)); err != nil || v != 0 {
		t.Errorf("empty: %v %v", v, err)
	}
}

func TestConvoyValidation(t *testing.T) {
	if _, err := Convoy(ConvoyParams{Demands: []int64{1, 2}, Accounting: FixedCost}); err == nil {
		t.Error("too few vertices should fail")
	}
	if _, err := Convoy(ConvoyParams{Demands: []int64{1, -2, 3}, Accounting: FixedCost}); err == nil {
		t.Error("negative demand should fail")
	}
	if _, err := Convoy(ConvoyParams{Demands: []int64{1, 2, 3}, Accounting: FixedCost, A1: -1}); err == nil {
		t.Error("negative a1 should fail")
	}
	if _, err := Convoy(ConvoyParams{Demands: []int64{1, 2, 3}, Accounting: VariableCost, A2: 0.7}); err == nil {
		t.Error("a2 >= 0.5 should fail")
	}
	if _, err := Convoy(ConvoyParams{Demands: []int64{1, 2, 3}, Accounting: Accounting(9)}); err == nil {
		t.Error("unknown accounting should fail")
	}
}

func TestConvoyFixedCostMatchesThesisFormula(t *testing.T) {
	n := 50
	demands := make([]int64, n)
	for i := range demands {
		demands[i] = int64(3 + i%5)
	}
	var sumD int64
	for _, d := range demands {
		sumD += d
	}
	res, err := Convoy(ConvoyParams{Demands: demands, Accounting: FixedCost, A1: 2})
	if err != nil {
		t.Fatal(err)
	}
	nf := float64(n)
	wantW := (2*(2*nf-3) + (2*nf - 2) + float64(sumD)) / nf
	if math.Abs(res.W-wantW) > 1e-9 {
		t.Errorf("W = %v, thesis formula %v", res.W, wantW)
	}
	if res.Transfers != 2*n-3 {
		t.Errorf("transfers %d, thesis says %d", res.Transfers, 2*n-3)
	}
	if res.Distance != 2*n-2 {
		t.Errorf("distance %d, thesis says %d", res.Distance, 2*n-2)
	}
	// Fixed-cost accounting is exact: the simulation should end with ~zero
	// slack (every joule of N*W accounted for).
	if math.Abs(res.Slack) > 1e-6 {
		t.Errorf("slack %v, want ~0 for the exact fixed-cost formula", res.Slack)
	}
}

func TestConvoyVariableCostFeasibleWithSlack(t *testing.T) {
	n := 40
	demands := make([]int64, n)
	for i := range demands {
		demands[i] = 5
	}
	res, err := Convoy(ConvoyParams{Demands: demands, Accounting: VariableCost, A2: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// The thesis charges every transfer as if it moved W units; actual
	// distribution transfers move only d(x) <= W, so the formula's W is
	// feasible with nonnegative slack.
	if res.Slack < -1e-6 {
		t.Errorf("variable-cost convoy infeasible: slack %v", res.Slack)
	}
	if res.Transfers != 2*n-3 || res.Distance != 2*n-2 {
		t.Errorf("transfers=%d distance=%d", res.Transfers, res.Distance)
	}
}

// TestConvoyIsThetaAvgDemand is the Section 5.2.1 headline: with C =
// infinity the required initial charge is Theta(avg demand) — it converges
// to the thesis' exact limits as N grows: 2*a1 + 2 + avg for fixed-cost
// accounting and (2 + avg)/(1 - 2*a2) for variable-cost.
func TestConvoyIsThetaAvgDemand(t *testing.T) {
	const (
		avg = int64(20)
		a1  = 1.0
		a2  = 0.01
	)
	limits := map[Accounting]float64{
		FixedCost:    2*a1 + 2 + float64(avg),
		VariableCost: (2 + float64(avg)) / (1 - 2*a2),
	}
	for _, acct := range []Accounting{FixedCost, VariableCost} {
		prevGap := math.Inf(1)
		for _, n := range []int{10, 100, 1000} {
			demands := make([]int64, n)
			for i := range demands {
				demands[i] = avg
			}
			res, err := Convoy(ConvoyParams{
				Demands: demands, Accounting: acct, A1: a1, A2: a2,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Theta(avg): within a small constant factor of avg throughout.
			if res.W < float64(avg) || res.W > 3*float64(avg) {
				t.Errorf("%v n=%d: W=%v not Theta(avg=%d)", acct, n, res.W, avg)
			}
			gap := math.Abs(res.W - limits[acct])
			if gap >= prevGap {
				t.Errorf("%v n=%d: |W-limit| = %v did not shrink (prev %v)",
					acct, n, gap, prevGap)
			}
			prevGap = gap
		}
		if prevGap > 0.2 {
			t.Errorf("%v: W=%v does not converge to the thesis limit %v",
				acct, prevGap+limits[acct], limits[acct])
		}
	}
}

func TestConvoyCarrierGivesToVehicleN(t *testing.T) {
	// Vehicle N demands more than its own initial charge: the exchange must
	// flow from the carrier to N, not fail.
	demands := []int64{0, 0, 0, 0, 100}
	res, err := Convoy(ConvoyParams{Demands: demands, Accounting: FixedCost, A1: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slack < -1e-6 {
		t.Errorf("slack %v", res.Slack)
	}
}

func TestAccountingString(t *testing.T) {
	for _, a := range []Accounting{FixedCost, VariableCost, Accounting(7)} {
		if a.String() == "" {
			t.Errorf("empty string for %d", int(a))
		}
	}
}
