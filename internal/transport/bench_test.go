package transport

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
)

func BenchmarkEMD(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	box, err := grid.NewBox(2, grid.P(0, 0), grid.P(15, 15))
	if err != nil {
		b.Fatal(err)
	}
	x, err := demand.Uniform(rng, box, 200)
	if err != nil {
		b.Fatal(err)
	}
	y, err := demand.Uniform(rng, box, 200)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EMD(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
