package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/demand"
	"repro/internal/grid"
)

// TestQuickEMDTriangleInequality property-checks the metric axiom that
// makes the Earthmover Distance a distance: EMD(a,c) <= EMD(a,b) + EMD(b,c)
// over random equal-mass distributions.
func TestQuickEMDTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		box, err := grid.NewBox(2, grid.P(0, 0), grid.P(4, 4))
		if err != nil {
			return false
		}
		const mass = 8
		mk := func() *demand.Map {
			m, err := demand.Uniform(rng, box, mass)
			if err != nil {
				return nil
			}
			return m
		}
		a, b, c := mk(), mk(), mk()
		if a == nil || b == nil || c == nil {
			return false
		}
		ab, err := EMD(a, b)
		if err != nil {
			return false
		}
		bc, err := EMD(b, c)
		if err != nil {
			return false
		}
		ac, err := EMD(a, c)
		if err != nil {
			return false
		}
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSolveNeverOverspendsSupply property-checks flow conservation at
// the supply side: no plan ships more from a point than it holds.
func TestQuickSolveNeverOverspendsSupply(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := demand.NewMap(2)
		dem := demand.NewMap(2)
		var supTotal int64
		for i := 0; i < 4; i++ {
			q := rng.Int63n(6) + 1
			supTotal += q
			if err := sup.Add(grid.P(rng.Intn(5), rng.Intn(5)), q); err != nil {
				return false
			}
		}
		remaining := supTotal
		for i := 0; i < 3 && remaining > 0; i++ {
			q := rng.Int63n(remaining) + 1
			remaining -= q
			if err := dem.Add(grid.P(rng.Intn(5), rng.Intn(5)), q); err != nil {
				return false
			}
		}
		sol, err := Solve(Instance{Supply: sup, Demand: dem})
		if err != nil {
			return false
		}
		shipped := make(map[grid.Point]float64)
		for _, p := range sol.Plans {
			shipped[p.From] += p.Amount
			if p.Amount <= 0 {
				return false
			}
		}
		for p, s := range shipped {
			if s > float64(sup.At(p))+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
