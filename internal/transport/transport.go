// Package transport solves the classical Transportation Problem that thesis
// Section 2.2 contrasts with LP (2.1): both the supply distribution (energy
// per vehicle) and the demand distribution are *given*, and the objective is
// the minimal total movement cost — the Earthmover Distance under the
// Manhattan metric. In the thesis' LP the supply level is the variable
// being minimized and transports are radius-limited; here neither holds.
// The package exists both as the natural baseline formulation and to
// demonstrate that difference executably (see the tests and the
// EMDSupplyGap example).
package transport

import (
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/mincost"
)

// Instance is a transportation problem: supplies and demands over lattice
// points, cost = Manhattan distance per unit shipped.
type Instance struct {
	Supply *demand.Map
	Demand *demand.Map
}

// Plan is one shipment of a solved instance.
type Plan struct {
	From, To grid.Point
	Amount   float64
}

// Solution reports the optimal transport.
type Solution struct {
	// Cost is the minimal total unit-distance cost (the Earthmover
	// Distance when total supply equals total demand).
	Cost float64
	// Shipped is the amount delivered (= total demand when feasible).
	Shipped float64
	// Plans lists the nonzero shipments.
	Plans []Plan
}

// Solve computes the optimal transportation plan. Total supply must cover
// total demand.
func Solve(inst Instance) (*Solution, error) {
	if inst.Supply == nil || inst.Demand == nil {
		return nil, fmt.Errorf("transport: supply and demand are required")
	}
	if inst.Supply.Dim() != inst.Demand.Dim() {
		return nil, fmt.Errorf("transport: dimension mismatch %d vs %d",
			inst.Supply.Dim(), inst.Demand.Dim())
	}
	if inst.Supply.Total() < inst.Demand.Total() {
		return nil, fmt.Errorf("transport: supply %d cannot cover demand %d",
			inst.Supply.Total(), inst.Demand.Total())
	}
	if inst.Demand.Total() == 0 {
		return &Solution{}, nil
	}
	sup := inst.Supply.Support()
	dem := inst.Demand.Support()
	n := 2 + len(sup) + len(dem)
	nw, err := mincost.NewNetwork(n)
	if err != nil {
		return nil, err
	}
	src, sink := 0, n-1
	type arc struct {
		id   int
		from grid.Point
		to   grid.Point
	}
	var arcs []arc
	for i, p := range sup {
		if _, err := nw.AddEdge(src, 1+i, float64(inst.Supply.At(p)), 0); err != nil {
			return nil, err
		}
		for j, q := range dem {
			id, err := nw.AddEdge(1+i, 1+len(sup)+j, math.Inf(1),
				float64(grid.Manhattan(p, q)))
			if err != nil {
				return nil, err
			}
			arcs = append(arcs, arc{id: id, from: p, to: q})
		}
	}
	for j, q := range dem {
		if _, err := nw.AddEdge(1+len(sup)+j, sink, float64(inst.Demand.At(q)), 0); err != nil {
			return nil, err
		}
	}
	res, err := nw.MinCostFlow(src, sink, float64(inst.Demand.Total()))
	if err != nil {
		return nil, err
	}
	if res.Flow < float64(inst.Demand.Total())-1e-6 {
		return nil, fmt.Errorf("transport: internal: shipped %v of %d", res.Flow, inst.Demand.Total())
	}
	sol := &Solution{Cost: res.Cost, Shipped: res.Flow}
	for _, a := range arcs {
		if f := nw.Flow(a.id); f > 1e-9 {
			sol.Plans = append(sol.Plans, Plan{From: a.from, To: a.to, Amount: f})
		}
	}
	return sol, nil
}

// EMD computes the Earthmover Distance between two equal-mass distributions
// under the Manhattan metric.
func EMD(a, b *demand.Map) (float64, error) {
	if a.Total() != b.Total() {
		return 0, fmt.Errorf("transport: EMD needs equal masses, got %d and %d",
			a.Total(), b.Total())
	}
	sol, err := Solve(Instance{Supply: a, Demand: b})
	if err != nil {
		return 0, err
	}
	return sol.Cost, nil
}

// UniformSupplyCost is the bridge to the thesis' setting: every lattice
// point within radius r of the demand support holds `perVehicle` units, and
// the function returns the minimal transport cost of covering the demand —
// or an error when the pooled supply is insufficient. Unlike LP (2.1) the
// per-vehicle level is an input here, which is exactly the distinction the
// thesis draws in Section 2.2.
func UniformSupplyCost(m *demand.Map, r int, perVehicle int64) (*Solution, error) {
	if perVehicle <= 0 {
		return nil, fmt.Errorf("transport: per-vehicle supply %d must be positive", perVehicle)
	}
	sup := demand.NewMap(m.Dim())
	seen := make(map[grid.Point]bool)
	for _, s := range m.Support() {
		b, err := grid.NewBox(m.Dim(), s, s)
		if err != nil {
			return nil, err
		}
		for _, p := range grid.NeighborhoodPoints(b, r) {
			if !seen[p] {
				seen[p] = true
				if err := sup.Add(p, perVehicle); err != nil {
					return nil, err
				}
			}
		}
	}
	return Solve(Instance{Supply: sup, Demand: m})
}
