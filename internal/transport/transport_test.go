package transport

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/grid"
	"repro/internal/lpchar"
)

func mkMap(t *testing.T, dim int, entries map[grid.Point]int64) *demand.Map {
	t.Helper()
	m := demand.NewMap(dim)
	for p, v := range entries {
		if err := m.Add(p, v); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(Instance{}); err == nil {
		t.Error("nil maps should fail")
	}
	a := mkMap(t, 2, map[grid.Point]int64{grid.P(0, 0): 1})
	b := mkMap(t, 1, map[grid.Point]int64{grid.P(0): 1})
	if _, err := Solve(Instance{Supply: a, Demand: b}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	small := mkMap(t, 2, map[grid.Point]int64{grid.P(0, 0): 1})
	big := mkMap(t, 2, map[grid.Point]int64{grid.P(0, 0): 5})
	if _, err := Solve(Instance{Supply: small, Demand: big}); err == nil {
		t.Error("insufficient supply should fail")
	}
}

func TestSolveTrivial(t *testing.T) {
	sup := mkMap(t, 2, map[grid.Point]int64{grid.P(0, 0): 5})
	sol, err := Solve(Instance{Supply: sup, Demand: demand.NewMap(2)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 || sol.Shipped != 0 {
		t.Fatalf("empty demand: %+v", sol)
	}
}

func TestSolveKnownOptimal(t *testing.T) {
	// Supply 3 at origin and 2 at (4,0); demand 2 at (1,0) and 3 at (3,0).
	// Optimal: origin->(1,0) x2 (cost 2), (4,0)->(3,0) x2 (cost 2),
	// origin->(3,0) x1 (cost 3): total 7.
	sup := mkMap(t, 2, map[grid.Point]int64{grid.P(0, 0): 3, grid.P(4, 0): 2})
	dem := mkMap(t, 2, map[grid.Point]int64{grid.P(1, 0): 2, grid.P(3, 0): 3})
	sol, err := Solve(Instance{Supply: sup, Demand: dem})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cost-7) > 1e-9 || math.Abs(sol.Shipped-5) > 1e-9 {
		t.Fatalf("cost %v shipped %v, want 7 / 5", sol.Cost, sol.Shipped)
	}
	var delivered float64
	for _, p := range sol.Plans {
		delivered += p.Amount
	}
	if math.Abs(delivered-5) > 1e-9 {
		t.Errorf("plans deliver %v", delivered)
	}
}

func TestEMDProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	box, err := grid.NewBox(2, grid.P(0, 0), grid.P(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 15; trial++ {
		a, err := demand.Uniform(rng, box, 20)
		if err != nil {
			t.Fatal(err)
		}
		b, err := demand.Uniform(rng, box, 20)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := EMD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := EMD(b, a)
		if err != nil {
			t.Fatal(err)
		}
		// Metric properties: symmetry, identity, nonnegativity.
		if math.Abs(ab-ba) > 1e-6 {
			t.Fatalf("EMD not symmetric: %v vs %v", ab, ba)
		}
		if ab < 0 {
			t.Fatalf("EMD negative: %v", ab)
		}
		self, err := EMD(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if self > 1e-9 {
			t.Fatalf("EMD(a,a) = %v", self)
		}
	}
	one := mkMap(t, 2, map[grid.Point]int64{grid.P(0, 0): 1})
	two := mkMap(t, 2, map[grid.Point]int64{grid.P(0, 0): 2})
	if _, err := EMD(one, two); err == nil {
		t.Error("unequal masses should fail")
	}
}

func TestEMDTranslationCost(t *testing.T) {
	// Shifting a unit mass by (dx,dy) costs exactly |dx|+|dy| per unit.
	a := mkMap(t, 2, map[grid.Point]int64{grid.P(0, 0): 7})
	b := mkMap(t, 2, map[grid.Point]int64{grid.P(3, 4): 7})
	got, err := EMD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-49) > 1e-9 {
		t.Errorf("EMD = %v, want 7*7 = 49", got)
	}
}

// TestSupplyGapVsLP21 demonstrates executably the distinction Section 2.2
// draws: the classical transportation problem takes the per-vehicle supply
// as *input* (cost can be probed at any level), while LP (2.1) finds the
// minimal level. At the LP's optimal omega the transportation instance is
// exactly feasible; below it, infeasible.
func TestSupplyGapVsLP21(t *testing.T) {
	m := mkMap(t, 2, map[grid.Point]int64{grid.P(0, 0): 9, grid.P(2, 0): 3})
	r := 1
	omega, err := lpchar.FlowValue(m, r)
	if err != nil {
		t.Fatal(err)
	}
	// Ceil(omega) per vehicle must be enough for radius-r coverage... but
	// note the transportation solver has no radius cap, so use supply only
	// from N_r and check pooled totals match the LP's feasibility notion.
	per := int64(math.Ceil(omega))
	sol, err := UniformSupplyCost(m, r, per)
	if err != nil {
		t.Fatalf("at ceil(omega)=%d: %v", per, err)
	}
	if sol.Shipped != float64(m.Total()) {
		t.Errorf("shipped %v of %d", sol.Shipped, m.Total())
	}
	// Starve the pool: with far less than omega per vehicle the pooled
	// supply in the neighborhood cannot cover the demand.
	if _, err := UniformSupplyCost(m, r, 1); err == nil && omega > 2 {
		t.Error("supply of 1 per vehicle should be infeasible for this instance")
	}
	if _, err := UniformSupplyCost(m, r, 0); err == nil {
		t.Error("zero per-vehicle supply must fail")
	}
}

func TestUniformSupplyCostRadiusZero(t *testing.T) {
	// Radius 0: every demand point serves itself; cost must be 0.
	m := mkMap(t, 2, map[grid.Point]int64{grid.P(1, 1): 4, grid.P(3, 3): 2})
	sol, err := UniformSupplyCost(m, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Errorf("radius-0 cost %v, want 0", sol.Cost)
	}
}
